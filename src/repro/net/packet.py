"""Datagrams exchanged over the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Fixed protocol overhead per datagram: Ethernet (14) + IP (20) + UDP (8).
HEADER_OVERHEAD_BYTES = 42

_packet_ids = itertools.count()


@dataclass(frozen=True)
class Packet:
    """A UDP-style datagram.

    ``payload`` carries an encoded protocol message (see
    :mod:`repro.core.protocol`); ``kind`` is a human-readable label used
    by traces and tests.
    """

    source: str
    destination: str
    payload: bytes
    kind: str = "data"
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hop_count: int = 0

    @property
    def size_bytes(self) -> int:
        """On-the-wire size including protocol headers."""
        return len(self.payload) + HEADER_OVERHEAD_BYTES

    def forwarded(self, new_destination: str) -> "Packet":
        """Copy of the packet re-addressed for the next hop."""
        return Packet(source=self.source, destination=new_destination,
                      payload=self.payload, kind=self.kind,
                      hop_count=self.hop_count + 1)
