"""Benchmark: the Figure 1 / QoA mobile-malware detection sweep."""

from repro.experiments import qoa_detection

_HORIZON = 2 * 24 * 3600.0
_FRACTIONS = (0.25, 1.0, 2.0)


def test_qoa_detection_sweep(benchmark):
    rows = benchmark(qoa_detection.run, horizon=_HORIZON,
                     dwell_fractions=_FRACTIONS)
    # ERASMUS detects mobile malware that on-demand RA misses.
    for row in rows:
        assert row["erasmus_detection_rate"] >= row["ondemand_detection_rate"]
    assert qoa_detection.detection_advantage(rows) > 0.2
    # Detection improves as dwell time grows relative to T_M.
    rates = [row["erasmus_detection_rate"] for row in rows]
    assert rates[0] < rates[-1]
