"""Table 1 — size of the attestation executable.

Paper values (KB):

===============  ==================  =================  =================  ================
MAC              SMART+ on-demand    SMART+ ERASMUS     HYDRA on-demand    HYDRA ERASMUS
===============  ==================  =================  =================  ================
HMAC-SHA1        4.9                 4.7                —                  —
HMAC-SHA256      5.1                 4.9                231.96             233.84
Keyed BLAKE2s    28.9                28.7               239.29             241.17
===============  ==================  =================  =================  ================

Qualitative findings to preserve: ERASMUS needs slightly *less* ROM than
on-demand attestation on SMART+ (no verifier-request authentication) and
about 1 % *more* on HYDRA (extra timer driver).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.codesize import CodeSizeModel

#: The paper's Table 1, for side-by-side comparison in EXPERIMENTS.md.
PAPER_TABLE1_KB: Dict[str, Dict[str, Optional[float]]] = {
    "hmac-sha1": {"smart+/on-demand": 4.9, "smart+/erasmus": 4.7,
                  "hydra/on-demand": None, "hydra/erasmus": None},
    "hmac-sha256": {"smart+/on-demand": 5.1, "smart+/erasmus": 4.9,
                    "hydra/on-demand": 231.96, "hydra/erasmus": 233.84},
    "keyed-blake2s": {"smart+/on-demand": 28.9, "smart+/erasmus": 28.7,
                      "hydra/on-demand": 239.29, "hydra/erasmus": 241.17},
}

_COLUMNS = ("smart+/on-demand", "smart+/erasmus",
            "hydra/on-demand", "hydra/erasmus")


def run(model: CodeSizeModel | None = None) -> List[Dict[str, object]]:
    """Regenerate Table 1 from the code-size model.

    Returns one row per MAC with the four size columns plus the paper's
    values for comparison.
    """
    model = model if model is not None else CodeSizeModel()
    table = model.table1()
    rows: List[Dict[str, object]] = []
    for mac_name, cells in table.items():
        row: Dict[str, object] = {"mac": mac_name}
        for column in _COLUMNS:
            row[column] = cells[column]
            row[f"paper:{column}"] = PAPER_TABLE1_KB[mac_name][column]
        rows.append(row)
    return rows


def matches_paper(rows: List[Dict[str, object]],
                  tolerance_kb: float = 0.05) -> bool:
    """True when every reproduced cell is within ``tolerance_kb`` of the paper."""
    for row in rows:
        for column in _COLUMNS:
            measured = row[column]
            expected = row[f"paper:{column}"]
            if (measured is None) != (expected is None):
                return False
            if measured is not None and expected is not None and \
                    abs(float(measured) - float(expected)) > tolerance_kb:
                return False
    return True


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the rows as a text table shaped like the paper's Table 1."""
    lines = ["Table 1: Size of Attestation Executable (KB)"]
    header = f"{'MAC':<16}" + "".join(f"{column:>20}" for column in _COLUMNS)
    lines.append(header)
    for row in rows:
        cells = []
        for column in _COLUMNS:
            value = row[column]
            cells.append(f"{value:>20.2f}" if value is not None
                         else f"{'-':>20}")
        lines.append(f"{row['mac']:<16}" + "".join(cells))
    return "\n".join(lines)


def main() -> None:
    """Print the reproduced Table 1."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
