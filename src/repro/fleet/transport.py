"""Transports: how collection requests reach provers and responses return.

Every transport speaks the canonical wire encoding from
:mod:`repro.core.protocol`, so the *same* fleet-collection code runs:

* in-process (:class:`InProcessTransport`) — direct request/response
  exchange for fast experiments and unit tests;
* over the simulated packet network (:class:`SimulatedNetworkTransport`)
  — every device hangs off the verifier in a star of lossy, latency-
  bearing UDP links, delivery driven by the event engine;
* over a swarm relay tree (:class:`SwarmRelayTransport`) — devices
  forward each other's traffic towards a gateway, LISA-α style
  (Section 6), so most devices are several hops from the verifier;
* over real operating-system sockets (:class:`SocketTransport`) —
  requests and responses travel as UDP datagrams on the loopback
  interface through a background :mod:`asyncio` event loop, with a TCP
  fallback for responses too large for one datagram, so collection
  exercises genuine kernel I/O rather than an in-process call.

The contract is deliberately tiny: ``register`` a provisioned device,
then ``exchange_many`` a batch of encoded requests for encoded
responses (``None`` marks a device that never answered — lost packets,
partitions, or a dead device).

Collection is async-first: the awaitable :class:`AsyncTransport`
contract is what :meth:`repro.fleet.FleetVerifier.collect_all_async`
drives, so wire exchange for one shard can overlap verification of
another.  Synchronous transports keep working unchanged behind
:class:`SyncTransportAdapter`; the simulated network additionally
offers a *native* awaitable exchange whose delivery is event-driven
(per-round packet-settlement accounting), so any number of collection
rounds can be in flight over one simulated network at once, each
overlapping simulation progress.  :func:`as_async_transport` picks the
best available view automatically.
"""

from __future__ import annotations

import abc
import asyncio
import itertools
import socket
import struct
import threading
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.protocol import (
    CollectRequest,
    OnDemandRequest,
    ProtocolDecodeError,
    decode_request,
)
from repro.core.prover import ErasmusProver
from repro.fleet.profiles import ProvisionedDevice
from repro.net.link import Link
from repro.net.mobility import MobilityModel
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.sim.engine import SimulationEngine


def serve_request(prover: ErasmusProver, payload: bytes,
                  time: Optional[float] = None) -> bytes:
    """Decode one request, serve it on the prover, encode the response.

    This is the prover-side dispatch shared by every transport: plain
    collections go to :meth:`ErasmusProver.handle_collect`, ERASMUS+OD
    requests to :meth:`ErasmusProver.handle_ondemand`.
    """
    request = decode_request(payload)
    if isinstance(request, CollectRequest):
        return prover.handle_collect(request).encode()
    assert isinstance(request, OnDemandRequest)
    return prover.handle_ondemand(request, time=time).encode()


class Transport(abc.ABC):
    """Bidirectional request/response channel between verifier and fleet."""

    #: Short name used in experiment tables and traces.
    name = "abstract"

    #: True when concurrent ``exchange_many`` calls from multiple
    #: threads are safe (sharded verifiers fan shards out to thread
    #: workers).  Transports built on a shared single-threaded engine
    #: must leave this False.
    concurrent_collections = False

    @abc.abstractmethod
    def register(self, device: ProvisionedDevice) -> None:
        """Attach one provisioned device to this transport."""

    @abc.abstractmethod
    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        """Send one encoded request; return the encoded response or ``None``."""

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        """Exchange a batch of requests (default: sequential round-trips).

        Transports with real in-flight concurrency (the packet network)
        override this to launch every request before waiting for any
        response.
        """
        return {device_id: self.exchange(device_id, payload)
                for device_id, payload in requests.items()}


class AsyncTransport(abc.ABC):
    """Awaitable request/response channel: the collection pipeline seam.

    The contract mirrors :class:`Transport` with an ``async``
    ``exchange_many``: awaiting it yields control while responses are
    outstanding, so a collection pipeline can verify one shard while
    another shard's packets are still on the wire.  Synchronous
    transports are adapted with :class:`SyncTransportAdapter`; use
    :func:`as_async_transport` rather than wrapping by hand.
    """

    #: Short name used in experiment tables and traces.
    name = "abstract-async"

    #: Engine whose clock stamps collection times (``None`` when the
    #: transport has no virtual clock).
    engine: Optional[SimulationEngine] = None

    #: See :attr:`Transport.concurrent_collections`.
    concurrent_collections = False

    @abc.abstractmethod
    def register(self, device: ProvisionedDevice) -> None:
        """Attach one provisioned device to this transport."""

    @abc.abstractmethod
    async def exchange_many(self, requests: Mapping[str, bytes]
                            ) -> Dict[str, Optional[bytes]]:
        """Exchange a batch of requests; resolve when the round settles."""

    async def exchange(self, device_id: str, payload: bytes
                       ) -> Optional[bytes]:
        """Send one encoded request; return the encoded response or ``None``."""
        responses = await self.exchange_many({device_id: payload})
        return responses[device_id]


class SyncTransportAdapter(AsyncTransport):
    """Awaitable view over a synchronous transport.

    The wrapped exchange runs inline on the event loop: synchronous
    transports either answer immediately (in-process) or drive a
    single-threaded engine that must not be stepped from two places at
    once, so handing them to a worker thread would be unsound, not
    faster.  Overlap across shards comes from transports with native
    awaitable exchanges (see
    :meth:`SimulatedNetworkTransport.exchange_many_async`).

    Duck-typed on purpose: anything with ``register`` / ``exchange_many``
    (e.g. test doubles) adapts, matching what the synchronous
    ``collect_all`` accepted historically.
    """

    def __init__(self, inner) -> None:
        self.inner = inner

    @property
    def name(self) -> str:  # type: ignore[override]
        return getattr(self.inner, "name", "sync")

    @property
    def engine(self):  # type: ignore[override]
        return getattr(self.inner, "engine", None)

    @property
    def concurrent_collections(self) -> bool:  # type: ignore[override]
        return getattr(self.inner, "concurrent_collections", False)

    @property
    def stale_responses_rejected(self) -> int:
        """Stale-response counter of the wrapped transport (0 if none)."""
        return getattr(self.inner, "stale_responses_rejected", 0)

    def register(self, device: ProvisionedDevice) -> None:
        self.inner.register(device)

    async def exchange_many(self, requests: Mapping[str, bytes]
                            ) -> Dict[str, Optional[bytes]]:
        return self.inner.exchange_many(requests)


class _NativeAsyncAdapter(SyncTransportAdapter):
    """Awaitable view bound to a transport's native async exchange."""

    async def exchange_many(self, requests: Mapping[str, bytes]
                            ) -> Dict[str, Optional[bytes]]:
        return await self.inner.exchange_many_async(requests)


def as_async_transport(transport) -> AsyncTransport:
    """The awaitable view of any transport.

    Already-async transports pass through; transports exposing a native
    ``exchange_many_async`` (the simulated network) get an adapter bound
    to it; plain synchronous transports get the inline
    :class:`SyncTransportAdapter`.
    """
    if isinstance(transport, AsyncTransport):
        return transport
    if callable(getattr(transport, "exchange_many_async", None)):
        return _NativeAsyncAdapter(transport)
    return SyncTransportAdapter(transport)


class InProcessTransport(Transport):
    """Zero-latency transport calling provers directly (through the codec).

    Requests and responses still pass through the canonical byte
    encoding, so anything that works here works unchanged over the
    simulated network.
    """

    name = "in-process"

    #: Direct calls on per-device provers: concurrent batches from
    #: sharded verifier workers touch disjoint devices and never step
    #: the engine, so parallel exchange is safe.
    concurrent_collections = True

    def __init__(self, engine: Optional[SimulationEngine] = None) -> None:
        self.engine = engine
        self._provers: Dict[str, ErasmusProver] = {}

    def register(self, device: ProvisionedDevice) -> None:
        if device.device_id in self._provers:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self._provers[device.device_id] = device.prover

    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        try:
            prover = self._provers[device_id]
        except KeyError as exc:
            raise KeyError(f"device {device_id!r} is not registered") from exc
        time = self.engine.now if self.engine is not None else None
        try:
            return serve_request(prover, payload, time=time)
        except ProtocolDecodeError:
            # A prover keeps silence on garbage rather than crashing the
            # collection round; the verifier reports the device NO_DATA.
            return None


#: Node name the verifier end of a networked transport uses.
VERIFIER_NODE = "verifier"


class _PendingRound:
    """In-flight state of one collection round over the packet network.

    A round is *settled* once every expected response has arrived or
    once none of its packets is on the wire anymore (lost packets are
    not retransmitted, so a missing response can then never arrive).
    ``outstanding`` counts this round's admitted-but-unsettled packets,
    maintained from the network's packet-settlement events — which is
    what lets any number of rounds share one network without waiting on
    each other's traffic.
    """

    __slots__ = ("round_id", "expected", "responses", "deadline",
                 "outstanding", "launched")

    def __init__(self, round_id: str, expected, deadline: float) -> None:
        self.round_id = round_id
        self.expected = expected
        self.responses: Dict[str, bytes] = {}
        self.deadline = deadline
        self.outstanding = 0
        #: Guards settlement checks until every request has been sent
        #: (``outstanding`` is transiently 0 mid-launch).
        self.launched = False

    @property
    def settled(self) -> bool:
        if not self.launched:
            return False
        return len(self.responses) >= len(self.expected) or \
            self.outstanding == 0


class SimulatedNetworkTransport(Transport):
    """Collections over the :mod:`repro.net` packet network.

    Devices are joined to the verifier in a star topology of UDP-style
    links; requests and responses travel as packets through the event
    engine, accumulating latency, serialization delay and (optionally)
    loss.  ``exchange_many`` launches the whole batch before draining
    the engine, so per-device round-trips overlap exactly as they would
    on a real network.

    Delivery is event-driven per round: every launched round tracks its
    own outstanding packets through the network's settlement events, so
    several rounds can be in flight at once — the awaitable
    :meth:`exchange_many_async` exploits that to overlap collection
    rounds with each other and with simulation progress, while the
    synchronous :meth:`exchange_many` simply drives its single round to
    settlement.  Responses are round-tagged; an answer that straggles
    in after its round timed out is rejected and counted in
    :attr:`stale_responses_rejected`, never credited to a later round.
    """

    name = "simulated-network"

    def __init__(self, engine: SimulationEngine, latency: float = 0.005,
                 bandwidth_bps: float = 10_000_000.0,
                 loss_probability: float = 0.0,
                 round_timeout: float = 30.0, seed: int = 0) -> None:
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.engine = engine
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_probability = loss_probability
        self.round_timeout = round_timeout
        self.network = Network(engine, seed=seed)
        self.network.add_node(
            NetworkNode(VERIFIER_NODE, on_receive=self._verifier_receives))
        self.network.on_packet_admitted.append(self._packet_admitted)
        self.network.on_packet_settled.append(self._packet_settled)
        self._provers: Dict[str, ErasmusProver] = {}
        # Monotonic round counter carried in the packet kind so that a
        # response still in flight when a round times out cannot be
        # mistaken for an answer to a *later* round's request.
        self._round = 0
        self._pending: Dict[str, _PendingRound] = {}
        #: Responses that arrived after their round had already settled
        #: or timed out; rejected rather than misattributed.
        self.stale_responses_rejected = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _attachment_point(self, device_id: str) -> Optional[str]:
        """Node the new device links to (the verifier, in a star).

        A pure query: implementations must not mutate transport state —
        commit bookkeeping belongs in :meth:`_registered`, which only
        runs once the registration has fully succeeded.  ``None`` means
        the device gets no static link (mobility-driven topologies wire
        links per round instead).
        """
        del device_id
        return VERIFIER_NODE

    def _registered(self, device_id: str) -> None:
        """Commit hook: the device is fully registered (base: nothing)."""

    def register(self, device: ProvisionedDevice) -> None:
        """Attach one device: node, static link (if any), prover dispatch.

        Transactional: every fallible step runs before any transport
        state is committed, and a failure rolls the added node back, so
        a failed registration leaves the topology — and the parent
        slots of every later registration — exactly as they were.
        """
        device_id = device.device_id
        if device_id in self._provers:
            raise ValueError(f"duplicate device id {device_id!r}")
        attachment = self._attachment_point(device_id)
        self.network.add_node(
            NetworkNode(device_id, on_receive=self._prover_receives))
        if attachment is not None:
            try:
                self.network.add_link(Link(
                    attachment, device_id,
                    latency=self.latency, bandwidth_bps=self.bandwidth_bps,
                    loss_probability=self.loss_probability))
            except BaseException:
                self.network.remove_node(device_id)
                raise
        self._provers[device_id] = device.prover
        self._registered(device_id)

    # ------------------------------------------------------------------
    # Packet handlers
    # ------------------------------------------------------------------
    def _prover_receives(self, node: NetworkNode, packet, time: float) -> None:
        prover = self._provers[node.name]
        try:
            response = serve_request(prover, packet.payload, time=time)
        except ProtocolDecodeError:
            return
        # Echo the request's round tag so the verifier can discard
        # responses that arrive after their round already timed out.
        round_tag = packet.kind.rpartition("/")[2]
        node.send(VERIFIER_NODE, response,
                  kind=f"attestation-response/{round_tag}")

    def _verifier_receives(self, _node: NetworkNode, packet,
                           time: float) -> None:
        pending = self._pending.get(packet.kind.rpartition("/")[2])
        if pending is None or time > pending.deadline:
            # The response's round already settled or timed out; with
            # overlapping rounds, crediting it anywhere would hand one
            # round another round's (older) history.  The deadline
            # check matters when a *concurrent* driver (another round,
            # an engine drain) steps a late delivery while this round
            # is still registered: the synchronous drive would have
            # stopped before ever stepping it, and the async path must
            # reject it the same way.
            self.stale_responses_rejected += 1
            return
        pending.responses[packet.source] = packet.payload

    def _packet_admitted(self, packet) -> None:
        pending = self._pending.get(packet.kind.rpartition("/")[2])
        if pending is not None:
            pending.outstanding += 1

    def _packet_settled(self, packet, _outcome: str) -> None:
        pending = self._pending.get(packet.kind.rpartition("/")[2])
        if pending is not None:
            pending.outstanding -= 1

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def _prepare_round(self) -> None:
        """Hook before a round launches (mobility rewires the topology)."""

    def _begin_round(self, requests: Mapping[str, bytes]) -> _PendingRound:
        """Validate, launch every request, and register the round."""
        for device_id in requests:
            if device_id not in self._provers:
                raise KeyError(f"device {device_id!r} is not registered")
        self._prepare_round()
        self._round += 1
        pending = _PendingRound(str(self._round), tuple(requests),
                                deadline=self.engine.now + self.round_timeout)
        # Registered before the first send so the admission/settlement
        # hooks attribute the request packets to this round.
        self._pending[pending.round_id] = pending
        verifier_node = self.network.node(VERIFIER_NODE)
        kind = f"attestation-request/{pending.round_id}"
        for device_id, payload in requests.items():
            verifier_node.send(device_id, payload, kind=kind)
        pending.launched = True
        return pending

    def _finish_round(self, pending: _PendingRound
                      ) -> Dict[str, Optional[bytes]]:
        """Deregister the round; anything still in flight is now stale."""
        del self._pending[pending.round_id]
        return {device_id: pending.responses.get(device_id)
                for device_id in pending.expected}

    def _drive(self, pending: _PendingRound, max_events: int) -> bool:
        """Step the engine for this round; False once it cannot progress.

        The virtual clock stops at the last relevant delivery instead of
        jumping to the timeout: once the round's own packets have all
        settled, a missing response can never arrive (lost packets are
        not retransmitted), and events past the round's deadline belong
        to whoever waits for them.
        """
        for _ in range(max_events):
            if pending.settled:
                return False
            next_time = self.engine.peek_time()
            if next_time is None or next_time > pending.deadline:
                return False
            self.engine.step()
        return True

    # ------------------------------------------------------------------
    # Exchange
    # ------------------------------------------------------------------
    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        return self.exchange_many({device_id: payload})[device_id]

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        pending = self._begin_round(requests)
        try:
            while self._drive(pending, max_events=1024):
                pass
        finally:
            # Deregister even when a stepped event handler raises:
            # a leaked round would swallow late responses forever
            # (crediting them to a dead round instead of counting them
            # stale) and pin their payloads in memory.
            responses = self._finish_round(pending)
        return responses

    async def exchange_many_async(self, requests: Mapping[str, bytes]
                                  ) -> Dict[str, Optional[bytes]]:
        """Awaitable exchange: lets rounds overlap on one network.

        Any number of these coroutines can be in flight concurrently
        (plus an :meth:`SimulationEngine.run_async` drain): one of them
        drives the engine a few events at a time while the others yield,
        each resolving as soon as *its own* packets settle or its
        deadline passes — rounds never barrier on each other's traffic.
        """
        pending = self._begin_round(requests)
        try:
            # Yield once between launch and drive: concurrent rounds
            # launched in the same wall-clock instant then inject their
            # requests at the same *virtual* instant too, before any of
            # them starts draining the engine — the async equivalent of
            # "launch the whole batch, then wait".
            await asyncio.sleep(0)
            while not pending.settled:
                if self.engine.now > pending.deadline:
                    break  # another driver ran the clock past our timeout
                # Concurrent rounds simply take turns driving: the
                # engine pops each event exactly once, and whoever
                # steps delivers everyone's packets.
                progressed = self._drive(pending, max_events=16)
                if not progressed and not pending.settled:
                    # The next event (if any) lies beyond our deadline,
                    # and the earliest event is the earliest *anything*
                    # — including our responses — can happen: timed out.
                    break
                await asyncio.sleep(0)
        finally:
            responses = self._finish_round(pending)
        return responses


class SwarmRelayTransport(SimulatedNetworkTransport):
    """Collections relayed hop by hop through a swarm (Section 6).

    Without a mobility model, devices attach to the gateway in a
    ``fanout``-ary tree in registration order; packets to and from deep
    devices are forwarded by the intermediate devices.  Because an
    ERASMUS collection is just a buffer read, the extra hops add only
    network delay — the property that keeps collections viable in
    swarms where on-demand attestation already fails.

    With ``mobility`` set, the relay topology is no longer a fixed
    tree: before every collection round the transport samples
    ``mobility.links_at(engine.now)`` and rewires the network to the
    geometric graph the devices actually form at that instant, with the
    verifier pinned as a gateway inside the mobility area — into a
    private fork of the model when pinning is needed, so the caller's
    instance is never mutated (see :attr:`mobility` for the model the
    transport actually samples).  Devices
    outside the gateway's connected component at round time simply
    never answer — they surface as lost responses in the round's
    :class:`~repro.fleet.sinks.RoundStats`, not as errors — and
    :meth:`depth_of` / :meth:`is_reachable` become time-dependent
    queries against the topology of the *latest* rewire.  At
    ``speed=0`` the model degenerates to a static random geometric
    graph, so every round sees the same topology and the same coverage.

    ``rewire_interval`` additionally re-samples the topology on a
    periodic engine timer while rounds are in flight, so multi-hop
    responses can lose their path mid-round — the regime where
    on-demand swarm protocols fall apart while the near-instant
    ERASMUS collection survives.

    Mobile links inherit their latency and bandwidth from the mobility
    model (``link_latency`` / ``link_bandwidth_bps`` on
    :class:`~repro.net.mobility.RandomWaypointMobility`); the
    transport's ``hop_latency`` only shapes the static fanout tree,
    while its ``loss_probability`` applies to both.
    """

    name = "swarm-relay"

    def __init__(self, engine: SimulationEngine, fanout: int = 4,
                 hop_latency: float = 0.01,
                 bandwidth_bps: float = 10_000_000.0,
                 loss_probability: float = 0.0,
                 round_timeout: float = 60.0, seed: int = 0,
                 mobility: Optional[MobilityModel] = None,
                 gateway_position: Optional[Tuple[float, float]] = None,
                 rewire_interval: Optional[float] = None) -> None:
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        if rewire_interval is not None and rewire_interval <= 0:
            raise ValueError("rewire interval must be positive")
        if rewire_interval is not None and mobility is None:
            raise ValueError("rewire_interval requires a mobility model")
        if gateway_position is not None and mobility is None:
            raise ValueError("gateway_position requires a mobility model")
        super().__init__(engine, latency=hop_latency,
                         bandwidth_bps=bandwidth_bps,
                         loss_probability=loss_probability,
                         round_timeout=round_timeout, seed=seed)
        self.fanout = fanout
        self.mobility = mobility
        self.rewire_interval = rewire_interval
        #: Number of topology rewires sampled from the mobility model.
        self.rewires = 0
        self._rewire_timer_armed = False
        self._ordered_ids: list[str] = []
        if mobility is not None:
            self.mobility = self._adopt_mobility(mobility, gateway_position)
            self._mobile_names = set(mobility.device_names())
        else:
            self._mobile_names = set()

    @staticmethod
    def _adopt_mobility(mobility: MobilityModel,
                        gateway_position: Optional[Tuple[float, float]]
                        ) -> MobilityModel:
        """The model this transport samples, gateway included.

        A model that already accounts for the gateway — the verifier is
        one of its :meth:`~repro.net.mobility.MobilityModel.
        device_names` or it is pinned — is adopted as-is (and stays
        shared with the caller).  Otherwise the model must expose
        ``pin()`` (see :class:`~repro.net.mobility.
        RandomWaypointMobility`) and the gateway is anchored at
        ``gateway_position`` (default: the center of the model's area)
        — into a private :meth:`~repro.net.mobility.
        RandomWaypointMobility.fork` when the model supports forking,
        so the caller's model is never mutated and keeps producing the
        gateway-free swarm it was built for (e.g. for a cost-model
        comparison run over the same parameters).
        """
        pinned = getattr(mobility, "pinned_names", None)
        already_covered = VERIFIER_NODE in mobility.device_names() or \
            (callable(pinned) and VERIFIER_NODE in pinned())
        if already_covered:
            if gateway_position is not None:
                raise ValueError(
                    f"{VERIFIER_NODE!r} is already part of the mobility "
                    f"model; gateway_position cannot move it")
            return mobility
        pin = getattr(mobility, "pin", None)
        if not callable(pin):
            raise TypeError(
                f"mobility model {type(mobility).__name__} does not cover "
                f"the {VERIFIER_NODE!r} gateway: include it in "
                f"device_names() (emitting its links from links_at), or "
                f"provide a pin() method for the transport to anchor it")
        if gateway_position is None:
            area = getattr(mobility, "area_size", None)
            if area is None:
                raise ValueError(
                    "gateway_position is required for mobility models "
                    "without an area_size")
            gateway_position = (area / 2.0, area / 2.0)
        fork = getattr(mobility, "fork", None)
        if callable(fork):
            mobility = fork()
        mobility.pin(VERIFIER_NODE, *gateway_position)
        return mobility

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _attachment_point(self, device_id: str) -> Optional[str]:
        if self.mobility is not None:
            # Mobile swarms get no static link: the geometric graph is
            # wired per round by `rewire`.
            if device_id not in self._mobile_names:
                raise ValueError(
                    f"device {device_id!r} is not part of the mobility "
                    f"model; known devices: {len(self._mobile_names)}")
            return None
        # The first `fanout` devices parent to the gateway; device i
        # then parents to device (i // fanout) - 1, giving every relay
        # exactly `fanout` children.
        index = len(self._ordered_ids)
        if index < self.fanout:
            return VERIFIER_NODE
        return self._ordered_ids[(index // self.fanout) - 1]

    def _registered(self, device_id: str) -> None:
        self._ordered_ids.append(device_id)

    def rewire(self, time: Optional[float] = None) -> int:
        """Re-sample the topology from the mobility model; return link count.

        Samples ``mobility.links_at(time)`` (default: the engine clock)
        and replaces the network's links with the geometric graph,
        keeping only links between nodes that are actually registered
        (the mobility model may know devices that never enrolled).  The
        transport's ``loss_probability`` applies to every rewired link.
        Packets already in flight keep travelling where their next hop
        survived and are dropped — settled exactly once — where it did
        not (see :meth:`repro.net.Network.set_links`).
        """
        if self.mobility is None:
            raise RuntimeError("rewire requires a mobility model")
        if time is None:
            time = self.engine.now
        known = self.network.graph.nodes
        links = [Link(link.node_a, link.node_b, latency=link.latency,
                      bandwidth_bps=link.bandwidth_bps,
                      loss_probability=self.loss_probability)
                 for link in self.mobility.links_at(time)
                 if link.node_a in known and link.node_b in known]
        self.network.set_links(links)
        self.rewires += 1
        return len(links)

    def _prepare_round(self) -> None:
        if self.mobility is None:
            return
        self.rewire()
        if self.rewire_interval is not None:
            self._arm_rewire_timer()

    def _arm_rewire_timer(self) -> None:
        """Keep re-sampling the topology while any round is in flight."""
        if self._rewire_timer_armed:
            return
        self._rewire_timer_armed = True
        self.engine.schedule_in(self.rewire_interval, self._rewire_tick)

    def _rewire_tick(self, _event) -> None:
        self._rewire_timer_armed = False
        if not self._pending:
            # No round in flight: stop ticking until the next round.
            return
        self.rewire()
        self._arm_rewire_timer()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth_of(self, device_id: str) -> int:
        """Number of hops between the device and the gateway.

        With a mobility model this is a time-dependent query: it
        reflects the topology of the latest :meth:`rewire` and raises
        :class:`KeyError` for a device currently outside the gateway's
        connected component (check :meth:`is_reachable` first).
        """
        path = self.network.path(VERIFIER_NODE, device_id)
        if path is None:
            raise KeyError(f"device {device_id!r} is not reachable")
        return len(path) - 1

    def is_reachable(self, device_id: str) -> bool:
        """True when the gateway currently has a route to the device."""
        return self.network.path(VERIFIER_NODE, device_id) is not None

    def reachable_ids(self) -> list[str]:
        """Registered devices currently routable from the gateway."""
        return [device_id for device_id in self._provers
                if self.is_reachable(device_id)]


#: Frame magic shared by both datagram directions of the socket
#: transport; anything else on the port is dropped, not crashed on.
_SOCKET_MAGIC = b"EA"
#: Request datagram: magic, request id, device-id length (id + encoded
#: request payload follow).
_SOCKET_REQUEST = struct.Struct(">2sQH")
#: Response datagram: magic, request id, disposition flag (payload
#: follows inline for ``_INLINE``).
_SOCKET_RESPONSE = struct.Struct(">2sQB")
#: TCP fallback exchange: the client sends the request id, the server
#: answers with a length-prefixed payload.
_SOCKET_FETCH = struct.Struct(">Q")
_SOCKET_LENGTH = struct.Struct(">I")

#: Response dispositions.
_INLINE = 0        # payload follows in this datagram
_OVERSIZED = 1     # payload exceeds max_datagram: fetch it over TCP
_NO_RESPONSE = 2   # prover kept silence (undecodable request)


class _SocketServerProtocol(asyncio.DatagramProtocol):
    """Prover-side endpoint: serve each request datagram on arrival."""

    def __init__(self, transport: "SocketTransport") -> None:
        self.owner = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._serve_datagram(data, addr)


class _SocketClientProtocol(asyncio.DatagramProtocol):
    """Verifier-side endpoint: resolve pending futures from responses."""

    def __init__(self, transport: "SocketTransport") -> None:
        self.owner = transport

    def datagram_received(self, data: bytes, addr) -> None:
        del addr
        self.owner._response_datagram(data)


class SocketTransport(Transport):
    """Collections over real loopback sockets through an asyncio loop.

    Both ends of the exchange live in this process — the fleet's provers
    answer behind a shared UDP server endpoint — but every request and
    response crosses the kernel as a real datagram, so collection pays
    genuine socket I/O, scheduling and copy costs instead of a Python
    function call.  Responses larger than ``max_datagram`` (history-heavy
    collections) are fetched over a TCP fallback connection, mirroring
    how constrained deployments page large attestation histories.

    All sockets live on one background event loop in a daemon thread:
    ``exchange_many`` calls from any thread (or shard coroutine, via
    :func:`as_async_transport` binding to :meth:`exchange_many_async`)
    are marshalled onto that loop, so concurrent collection rounds
    interleave their datagrams on the same endpoints without locking.
    Responses are correlated by a per-request id; an answer arriving
    after its round timed out is counted in
    :attr:`stale_responses_rejected` and never credited elsewhere.
    """

    name = "socket"

    #: Every exchange is marshalled onto the one background loop, so
    #: any number of threads/shards may collect concurrently.
    concurrent_collections = True

    def __init__(self, engine: Optional[SimulationEngine] = None,
                 host: str = "127.0.0.1", max_datagram: int = 1400,
                 round_timeout: float = 10.0) -> None:
        if max_datagram <= _SOCKET_RESPONSE.size:
            raise ValueError("max_datagram must exceed the response header")
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.engine = engine
        self.host = host
        self.max_datagram = max_datagram
        self.round_timeout = round_timeout
        self._provers: Dict[str, ErasmusProver] = {}
        #: Loop-confined state (only ever touched on the background
        #: loop, so no locks): pending futures by request id, stashed
        #: oversized payloads awaiting their TCP fetch.
        self._pending: Dict[int, asyncio.Future] = {}
        self._oversized: Dict[int, bytes] = {}
        self._rids = itertools.count(1)
        #: Responses whose round already finished (or that carried an
        #: unknown request id); rejected rather than misattributed.
        self.stale_responses_rejected = 0
        #: Responses that took the TCP fallback path.
        self.tcp_fallbacks = 0
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="socket-transport",
            daemon=True)
        self._thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                self._open(), self._loop).result(timeout=30)
        except BaseException:
            self.close()
            raise

    def _bound_udp_socket(self):
        """A loopback UDP socket with deep kernel buffers.

        A collection round legitimately bursts thousands of datagrams
        through one socket pair; the default receive buffer (~200 KiB)
        overflows long before the event loop gets a turn to drain it,
        and every overflow costs a round-timeout wait.  The kernel caps
        the request at its own maximum, so this is best-effort.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for option in (socket.SO_RCVBUF, socket.SO_SNDBUF):
            try:
                sock.setsockopt(socket.SOL_SOCKET, option, 1 << 22)
            except OSError:
                pass
        sock.bind((self.host, 0))
        return sock

    async def _open(self) -> None:
        loop = asyncio.get_running_loop()
        self._server_socket, _ = await loop.create_datagram_endpoint(
            lambda: _SocketServerProtocol(self),
            sock=self._bound_udp_socket())
        self.server_address = self._server_socket.get_extra_info("sockname")
        self._client_socket, _ = await loop.create_datagram_endpoint(
            lambda: _SocketClientProtocol(self),
            sock=self._bound_udp_socket())
        self._tcp_server = await asyncio.start_server(
            self._serve_fetch, self.host, 0)
        self.tcp_address = self._tcp_server.sockets[0].getsockname()

    # ------------------------------------------------------------------
    # Server side (runs on the background loop)
    # ------------------------------------------------------------------
    def _serve_datagram(self, data: bytes, addr) -> None:
        if len(data) < _SOCKET_REQUEST.size or \
                not data.startswith(_SOCKET_MAGIC):
            return
        _magic, rid, id_length = _SOCKET_REQUEST.unpack_from(data)
        body = memoryview(data)[_SOCKET_REQUEST.size:]
        if len(body) < id_length:
            return
        try:
            device_id = str(body[:id_length], "utf-8")
        except UnicodeDecodeError:
            return
        prover = self._provers.get(device_id)
        if prover is None:
            return
        time = self.engine.now if self.engine is not None else None
        try:
            response = serve_request(prover, body[id_length:], time=time)
        except ProtocolDecodeError:
            # A prover keeps silence on garbage; tell the client side
            # explicitly so the round resolves None without waiting out
            # its timeout.
            self._server_socket.sendto(
                _SOCKET_RESPONSE.pack(_SOCKET_MAGIC, rid, _NO_RESPONSE),
                addr)
            return
        header = _SOCKET_RESPONSE.pack(_SOCKET_MAGIC, rid, _INLINE)
        if len(header) + len(response) <= self.max_datagram:
            self._server_socket.sendto(header + response, addr)
        else:
            self._oversized[rid] = response
            self._server_socket.sendto(
                _SOCKET_RESPONSE.pack(_SOCKET_MAGIC, rid, _OVERSIZED), addr)

    async def _serve_fetch(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            (rid,) = _SOCKET_FETCH.unpack(
                await reader.readexactly(_SOCKET_FETCH.size))
            payload = self._oversized.pop(rid, b"")
            writer.write(_SOCKET_LENGTH.pack(len(payload)))
            writer.write(payload)
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # Client side (runs on the background loop)
    # ------------------------------------------------------------------
    def _response_datagram(self, data: bytes) -> None:
        if len(data) < _SOCKET_RESPONSE.size or \
                not data.startswith(_SOCKET_MAGIC):
            return
        _magic, rid, flag = _SOCKET_RESPONSE.unpack_from(data)
        future = self._pending.pop(rid, None)
        if future is None or future.done():
            self.stale_responses_rejected += 1
            return
        if flag == _INLINE:
            future.set_result(data[_SOCKET_RESPONSE.size:])
        elif flag == _OVERSIZED:
            self.tcp_fallbacks += 1
            task = self._loop.create_task(self._fetch_oversized(rid))
            task.add_done_callback(
                lambda t, f=future: self._finish_fetch(t, f))
        else:  # _NO_RESPONSE (or unknown flag): the prover kept silence
            future.set_result(None)

    async def _fetch_oversized(self, rid: int) -> Optional[bytes]:
        reader, writer = await asyncio.open_connection(*self.tcp_address)
        try:
            writer.write(_SOCKET_FETCH.pack(rid))
            await writer.drain()
            (length,) = _SOCKET_LENGTH.unpack(
                await reader.readexactly(_SOCKET_LENGTH.size))
            if length == 0:
                return None
            return await reader.readexactly(length)
        finally:
            writer.close()

    @staticmethod
    def _finish_fetch(task: "asyncio.Task", future: asyncio.Future) -> None:
        if future.done():
            return
        if task.cancelled() or task.exception() is not None:
            future.set_result(None)
        else:
            future.set_result(task.result())

    async def _exchange(self, requests: Dict[str, bytes]
                        ) -> Dict[str, Optional[bytes]]:
        loop = asyncio.get_running_loop()
        pending: Dict[str, tuple] = {}
        for device_id, payload in requests.items():
            rid = next(self._rids)
            future = loop.create_future()
            self._pending[rid] = future
            pending[device_id] = (rid, future)
            id_bytes = device_id.encode("utf-8")
            self._client_socket.sendto(
                _SOCKET_REQUEST.pack(_SOCKET_MAGIC, rid, len(id_bytes)) +
                id_bytes + payload,
                self.server_address)
        try:
            await asyncio.wait({future for _, future in pending.values()},
                               timeout=self.round_timeout)
        finally:
            responses: Dict[str, Optional[bytes]] = {}
            for device_id, (rid, future) in pending.items():
                if future.done() and not future.cancelled():
                    responses[device_id] = future.result()
                else:
                    # Timed out: deregister so a straggler counts stale,
                    # and drop any stashed oversized payload it left.
                    future.cancel()
                    self._pending.pop(rid, None)
                    self._oversized.pop(rid, None)
                    responses[device_id] = None
        return responses

    # ------------------------------------------------------------------
    # Public contract (any thread)
    # ------------------------------------------------------------------
    def register(self, device: ProvisionedDevice) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        if device.device_id in self._provers:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self._provers[device.device_id] = device.prover

    def _check_requests(self, requests: Mapping[str, bytes]) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        for device_id in requests:
            if device_id not in self._provers:
                raise KeyError(f"device {device_id!r} is not registered")

    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        return self.exchange_many({device_id: payload})[device_id]

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        self._check_requests(requests)
        if not requests:
            return {}
        return asyncio.run_coroutine_threadsafe(
            self._exchange(dict(requests)), self._loop).result()

    async def exchange_many_async(self, requests: Mapping[str, bytes]
                                  ) -> Dict[str, Optional[bytes]]:
        """Awaitable exchange from any event loop.

        The socket work still happens on the transport's own background
        loop; the caller's loop just awaits the hand-off, so any number
        of shard coroutines overlap their rounds on the same sockets.
        """
        self._check_requests(requests)
        if not requests:
            return {}
        return await asyncio.wrap_future(asyncio.run_coroutine_threadsafe(
            self._exchange(dict(requests)), self._loop))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down sockets and the background loop (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop).result(timeout=30)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    async def _shutdown(self) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_result(None)
        self._pending.clear()
        self._oversized.clear()
        for socket_transport in (getattr(self, "_server_socket", None),
                                 getattr(self, "_client_socket", None)):
            if socket_transport is not None:
                socket_transport.close()
        server = getattr(self, "_tcp_server", None)
        if server is not None:
            server.close()
            await server.wait_closed()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
