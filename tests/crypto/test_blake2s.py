"""Tests for the from-scratch BLAKE2s implementation."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blake2s import Blake2s, blake2s_digest, keyed_blake2s


def test_rfc7693_abc_vector():
    # Appendix B of RFC 7693.
    expected = ("508c5e8c327c14e2e1a72ba34eeb452f"
                "37458b209ed63a294d999b4c86675982")
    assert blake2s_digest(b"abc").hex() == expected


def test_empty_message_matches_hashlib():
    assert blake2s_digest(b"") == hashlib.blake2s(b"").digest()


def test_keyed_mac_matches_hashlib():
    key = b"\x01" * 32
    data = b"measurement payload"
    assert keyed_blake2s(key, data) == hashlib.blake2s(data, key=key).digest()


def test_keyed_mac_differs_from_unkeyed():
    assert keyed_blake2s(b"k", b"data") != blake2s_digest(b"data")


def test_different_keys_give_different_macs():
    assert keyed_blake2s(b"key-one", b"data") != keyed_blake2s(b"key-two",
                                                               b"data")


def test_truncated_digest_sizes():
    for size in (1, 16, 20, 32):
        digest = blake2s_digest(b"payload", digest_size=size)
        assert len(digest) == size
        assert digest == hashlib.blake2s(b"payload",
                                         digest_size=size).digest()


def test_rejects_invalid_digest_size():
    with pytest.raises(ValueError):
        Blake2s(digest_size=0)
    with pytest.raises(ValueError):
        Blake2s(digest_size=33)


def test_rejects_oversized_key():
    with pytest.raises(ValueError):
        Blake2s(key=b"\x00" * 33)


def test_streaming_equals_one_shot():
    hasher = Blake2s()
    hasher.update(b"chunk one ")
    hasher.update(b"chunk two")
    assert hasher.digest() == blake2s_digest(b"chunk one chunk two")


def test_update_after_digest_raises():
    hasher = Blake2s(b"data")
    hasher.digest()
    with pytest.raises(ValueError):
        hasher.update(b"more")


def test_copy_preserves_state():
    hasher = Blake2s(b"prefix", key=b"k")
    clone = hasher.copy()
    clone.update(b"-suffix")
    assert hasher.digest() == keyed_blake2s(b"k", b"prefix")
    assert clone.digest() == keyed_blake2s(b"k", b"prefix-suffix")


def test_exact_block_boundary():
    # 64- and 128-byte messages exercise the "keep one block buffered" rule.
    for size in (63, 64, 65, 128, 129):
        data = bytes(range(256))[:size] * 1
        assert blake2s_digest(data[:size]) == \
            hashlib.blake2s(data[:size]).digest()


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=2000),
       st.binary(min_size=0, max_size=32))
def test_matches_hashlib_keyed_and_unkeyed(data, key):
    if key:
        assert keyed_blake2s(key, data) == \
            hashlib.blake2s(data, key=key).digest()
    else:
        assert blake2s_digest(data) == hashlib.blake2s(data).digest()
