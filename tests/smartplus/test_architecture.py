"""Tests for the SMART+ architecture model."""

import pytest

from repro.arch.base import ArchitectureError
from repro.hw.memory import AccessContext, AccessViolation
from repro.smartplus import build_rom_image, build_smartplus_architecture
from repro.smartplus.architecture import (
    APPLICATION_REGION,
    MEASUREMENT_BUFFER_REGION,
    ROM_CODE_REGION,
    ROM_KEY_REGION,
)


def test_memory_map_has_figure5_regions(smartplus_arch):
    names = {region.name for region in smartplus_arch.memory.regions()}
    assert {ROM_CODE_REGION, ROM_KEY_REGION, APPLICATION_REGION,
            MEASUREMENT_BUFFER_REGION} <= names


def test_rom_code_size_follows_table1(key):
    architecture = build_smartplus_architecture(
        key, mac_name="hmac-sha256", variant="erasmus")
    rom = architecture.memory.region(ROM_CODE_REGION)
    assert rom.size == int(round(4.9 * 1024))


def test_key_region_unreadable_from_normal_world(smartplus_arch):
    with pytest.raises(AccessViolation):
        smartplus_arch.memory.read_region(ROM_KEY_REGION, AccessContext.NORMAL)


def test_rom_code_immutable(smartplus_arch):
    with pytest.raises(AccessViolation):
        smartplus_arch.memory.write_region(ROM_CODE_REGION, b"patched",
                                           context=AccessContext.NORMAL)


def test_measurement_buffer_is_open_to_normal_world(smartplus_arch):
    smartplus_arch.memory.write_region(MEASUREMENT_BUFFER_REGION, b"anything",
                                       context=AccessContext.NORMAL)
    content = smartplus_arch.memory.read_region(MEASUREMENT_BUFFER_REGION,
                                                AccessContext.NORMAL)
    assert content.startswith(b"anything")


def test_interrupts_blocked_during_attestation(smartplus_arch):
    # Outside attestation, interrupts are delivered.
    assert smartplus_arch.request_interrupt()
    # The protected-execution context manager disables them.
    with smartplus_arch._protected_execution():
        assert smartplus_arch.in_attestation
        assert not smartplus_arch.request_interrupt()
    assert smartplus_arch.interrupts_blocked == 1
    assert not smartplus_arch.in_attestation


def test_nested_attestation_entry_rejected(smartplus_arch):
    with smartplus_arch._protected_execution():
        with pytest.raises(ArchitectureError, match="atomic"):
            with smartplus_arch._protected_execution():
                pass


def test_load_application_rejects_oversized_image(smartplus_arch):
    with pytest.raises(ValueError):
        smartplus_arch.load_application(bytes(100 * 1024))


def test_load_application_pads_and_changes_digest(smartplus_arch):
    before = smartplus_arch.read_measured_memory()
    smartplus_arch.load_application(b"new image")
    after = smartplus_arch.read_measured_memory()
    assert len(before) == len(after) == 512
    assert before != after


def test_clock_is_driven_by_advance_clock(smartplus_arch):
    smartplus_arch.advance_clock(123.0)
    assert smartplus_arch.read_clock() == pytest.approx(123.0)


def test_invalid_application_size_rejected(key):
    rom = build_rom_image(key)
    with pytest.raises(ValueError):
        build_smartplus_architecture(key, application_size=0)
    del rom


def test_measurements_update_counter(smartplus_arch):
    smartplus_arch.advance_clock(5.0)
    smartplus_arch.perform_measurement()
    smartplus_arch.advance_clock(10.0)
    smartplus_arch.perform_measurement()
    assert smartplus_arch.measurements_performed == 2
