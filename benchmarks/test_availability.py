"""Benchmark: Section 5 availability under strict vs lenient scheduling."""

from repro.experiments import availability

_FACTORS = (1.0, 1.5, 2.0)


def test_availability_sweep(benchmark):
    rows = benchmark(availability.run, window_factors=_FACTORS,
                     horizon=24 * 3600.0)
    by_factor = {row["window_factor"]: row for row in rows}
    strict = by_factor[1.0]
    lenient = by_factor[2.0]
    # Collisions with the critical task do not depend on the policy...
    assert strict["collisions"] == lenient["collisions"] > 0
    # ...but lenient windows recover almost all aborted measurements.
    assert strict["loss_rate"] > 0.2
    assert lenient["loss_rate"] < 0.05
    assert lenient["recovered"] > 0
