"""Benchmark: campaign engine — Figure 1 on real fleets, at fleet scale.

Two pins, per the campaign-engine acceptance bar:

* the ERASMUS-vs-on-demand dwell sweep, run as *end-to-end campaigns*
  on real provisioned fleets, must keep Figure 1's shape: detection
  tracks ``min(1, dwell / T_M)`` within tolerance, saturates at 1 once
  the dwell exceeds ``T_M``, and the on-demand baseline stays near
  zero for short dwells;
* the flagship cell — 1,000 devices on the swarm-relay transport
  under partition-and-merge mobility with a store crash injected
  mid-round — must run end to end, recover through the durable
  verifier, and still detect a majority of the long-dwell infections.

The whole campaign (sweep + flagship) is serialized to one JSON
artifact (``CAMPAIGN_ARTIFACT`` env var, default
``campaign_detection.json``) that CI uploads, and the campaign
engine's orchestration overhead is recorded against a clean
manually-driven fleet round of the same size.
"""

import json
import os
import time

from repro.campaign import CampaignRunner, Scenario, run_scenario
from repro.core.qoa import detection_probability
from repro.experiments import campaign_detection
from repro.fleet import DeviceProfile, Fleet

_DEVICES = 120
_HORIZON = 4 * 3600.0
_FRACTIONS = (0.25, 0.5, 1.0, 2.0)
_TOLERANCE = 0.15
ARTIFACT_PATH = os.environ.get("CAMPAIGN_ARTIFACT",
                               "campaign_detection.json")


def test_campaign_dwell_sweep_matches_analytic_curve(benchmark):
    rows = benchmark.pedantic(
        campaign_detection.run,
        kwargs=dict(devices=_DEVICES, horizon=_HORIZON,
                    dwell_fractions=_FRACTIONS, max_workers=4),
        rounds=1, iterations=1)
    for row in rows:
        # Enough infections per cell for the rate to be meaningful.
        assert row["erasmus_infections"] > 100
        analytic = detection_probability(row["dwell_s"], 60.0)
        assert abs(row["erasmus_detection_rate"] - analytic) < _TOLERANCE, \
            f"dwell {row['dwell_s']}: rate {row['erasmus_detection_rate']}" \
            f" vs analytic {analytic}"
    by_fraction = {row["dwell_over_tm"]: row for row in rows}
    # Figure 1's shape: ERASMUS saturates once dwell > T_M ...
    assert by_fraction[2.0]["erasmus_detection_rate"] > 0.95
    assert by_fraction[1.0]["erasmus_detection_rate"] > 0.85
    # ... while on-demand RA stays near zero for short dwells.
    assert by_fraction[0.25]["ondemand_detection_rate"] < 0.15
    assert by_fraction[0.5]["ondemand_detection_rate"] < 0.15
    # And ERASMUS dominates the baseline everywhere.
    for row in rows:
        assert row["erasmus_detection_rate"] > \
            row["ondemand_detection_rate"]
    benchmark.extra_info["erasmus_rates"] = [
        row["erasmus_detection_rate"] for row in rows]
    benchmark.extra_info["ondemand_rates"] = [
        row["ondemand_detection_rate"] for row in rows]


def test_flagship_1k_campaign_with_faults(benchmark):
    scenario = campaign_detection.flagship(devices=1000, horizon=3600.0)
    result = benchmark.pedantic(run_scenario, args=(scenario,),
                                rounds=1, iterations=1)
    row = result.to_row()
    # The cell really ran at fleet scale with the whole stack engaged:
    assert result.scenario.devices == 1000
    assert result.detection.total_infections > 200
    assert result.recovered_rounds == 1          # store crash + recovery
    lost = sum(stats.responses_lost for stats in result.rounds)
    assert lost > 0                              # partitions really bit
    # Dwell 2x T_M: despite partitions the majority is still caught.
    assert result.detection.detection_rate > 0.4
    benchmark.extra_info["detection_rate"] = \
        result.detection.detection_rate
    benchmark.extra_info["infections"] = result.detection.total_infections
    benchmark.extra_info["responses_lost"] = lost

    # One artifact for CI: the flagship cell plus a compact sweep.
    sweep = CampaignRunner(
        campaign_detection.build_grid(devices=60, horizon=2 * 3600.0,
                                      dwell_fractions=_FRACTIONS),
        name="campaign-detection", max_workers=4)
    sweep.run()
    sweep.results.append(result)
    sweep.write_artifact(ARTIFACT_PATH)
    assert json.load(open(ARTIFACT_PATH))["cell_count"] == \
        2 * len(_FRACTIONS) + 1


def test_campaign_engine_overhead_vs_clean_round(benchmark):
    """The runner's orchestration must stay cheap next to the fleet work."""
    devices, horizon = 200, 1800.0

    def clean_fleet_round() -> float:
        profile = DeviceProfile.smartplus(
            application_size=256, measurement_interval=60.0,
            collection_interval=600.0, buffer_slots=12)
        started = time.perf_counter()
        with Fleet.provision(profile, devices,
                             master_secret=b"overhead-baseline") as fleet:
            for collection_time in (600.0, 1200.0, 1800.0):
                fleet.run_until(collection_time)
                fleet.collect_all()
        return time.perf_counter() - started

    baseline = min(clean_fleet_round() for _ in range(3))
    scenario = Scenario(name="overhead", devices=devices, horizon=horizon,
                        malware="none", dwell=None, seed=1)
    result = benchmark.pedantic(run_scenario, args=(scenario,),
                                rounds=1, iterations=1)
    assert result.detection.total_infections == 0
    overhead = result.wall_seconds / baseline
    benchmark.extra_info["clean_round_seconds"] = baseline
    benchmark.extra_info["campaign_cell_seconds"] = result.wall_seconds
    benchmark.extra_info["overhead_ratio"] = overhead
    # Identical fleet work, so the engine may add bookkeeping only —
    # generous bound so loaded CI machines never flake.
    assert overhead < 3.0
