"""Property-based invariants of the campaign engine.

Two promises the artifact format leans on:

* a scenario cell is a pure function of its parameters — the same
  ``Scenario`` always serializes to byte-identical JSON rows, however
  many times (or in whatever process) it runs;
* an adversary's ground truth is physically consistent — no device is
  infected by two overlapping visits.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import FleetMobileMalware, FleetScheduleAwareMalware
from repro.campaign import Scenario, run_scenario
from repro.fleet import Fleet
from repro.sim import SimulationEngine
from tests.fleet.helpers import small_profile

scenario_parameters = st.fixed_dictionaries({
    "devices": st.integers(min_value=2, max_value=10),
    "dwell": st.floats(min_value=10.0, max_value=200.0,
                       allow_nan=False, allow_infinity=False),
    "victim_fraction": st.floats(min_value=0.2, max_value=1.0),
    "protocol": st.sampled_from(["erasmus", "on-demand"]),
    "malware": st.sampled_from(["mobile", "persistent", "tampering"]),
    "seed": st.integers(min_value=0, max_value=2 ** 16),
})


@settings(max_examples=10, deadline=None)
@given(scenario_parameters)
def test_same_scenario_same_seed_byte_identical_rows(parameters):
    """Rerunning a cell reproduces its JSON row byte for byte."""
    scenario = Scenario(horizon=1200.0, measurement_interval=60.0,
                        collection_interval=600.0,
                        arrival_rate=1 / 400.0, **parameters)
    rows = [json.dumps(run_scenario(scenario).to_row(), sort_keys=True)
            for _ in range(2)]
    assert rows[0] == rows[1]


def _assert_no_overlaps(ground_truth):
    for device_id, infections in ground_truth.items():
        intervals = sorted(
            (infection.start,
             infection.end if infection.end is not None else float("inf"))
            for infection in infections)
        for (_, earlier_end), (later_start, _) in zip(intervals,
                                                      intervals[1:]):
            assert later_start >= earlier_end, \
                f"overlapping infections on {device_id}: {intervals}"


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 16),
       st.floats(min_value=5.0, max_value=120.0, allow_nan=False),
       st.booleans())
def test_ground_truth_intervals_never_overlap(seed, mean_dwell, fixed):
    """No fleet adversary ever doubly infects a device at one instant."""
    engine = SimulationEngine()
    with Fleet.provision(small_profile(b"property-firmware"), 5,
                         master_secret=b"property-secret",
                         engine=engine) as fleet:
        if fixed:
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 30.0, dwell=mean_dwell,
                victim_fraction=1.0, seed=seed)
        else:
            adversary = FleetMobileMalware(
                fleet.devices(), arrival_rate=1 / 30.0,
                mean_dwell=mean_dwell, victim_fraction=1.0, seed=seed)
        adversary.deploy(engine, 600.0)
        fleet.run_until(600.0)
        _assert_no_overlaps(adversary.ground_truth())


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 16),
       st.floats(min_value=1.0, max_value=25.0, allow_nan=False))
def test_schedule_aware_ground_truth_never_overlaps(seed, dwell):
    """Reactive (listener-driven) visits respect the same invariant."""
    engine = SimulationEngine()
    with Fleet.provision(small_profile(b"property-firmware"), 4,
                         master_secret=b"property-secret",
                         engine=engine) as fleet:
        adversary = FleetScheduleAwareMalware(
            fleet.devices(), dwell=dwell, victim_fraction=1.0, seed=seed)
        adversary.deploy(engine, 300.0)
        fleet.run_until(300.0)
        _assert_no_overlaps(adversary.ground_truth())
