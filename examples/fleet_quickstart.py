#!/usr/bin/env python3
"""Fleet quickstart: a 1,000-device collection round through `repro.fleet`.

One short script covers the whole fleet life cycle:

1. provision 1,000 SMART+ devices from a single :class:`DeviceProfile`
   (per-device keys derived from a factory master secret, staggered
   measurement schedules);
2. let the fleet self-measure for one collection interval;
3. infect a handful of devices mid-interval with transient malware that
   is gone again before anyone collects;
4. run one batched ``collect_all`` round and read the per-device
   reports plus the aggregate fleet-health summary.

The scenario function receives the transport name and runs **unchanged**
over the in-process exchange and the simulated packet network — that is
the point of the transport abstraction.

Run with:  python examples/fleet_quickstart.py
"""

import time

from repro.fleet import DeviceProfile, Fleet

FLEET_SIZE = 1000
INFECTED = ("dev-0007", "dev-0123", "dev-0666")
FIRMWARE = b"sensor-firmware-v4.2" + bytes(300)
MALWARE = b"transient-implant" + bytes(310)
MASTER_SECRET = b"factory-provisioning-secret"


def run_round(transport: str) -> None:
    """Provision, schedule, infect, collect — over the given transport."""
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)
    started = time.perf_counter()
    fleet = Fleet.provision(profile, FLEET_SIZE,
                            master_secret=MASTER_SECRET,
                            transport=transport)

    # Self-measurement phase, with a transient infection in the middle:
    # the malware arrives at t=200, persists for three minutes, then
    # wipes itself well before the collection at t=600.
    fleet.run_until(200.0)
    for device_id in INFECTED:
        fleet.device(device_id).load_application(MALWARE)
    fleet.run_until(380.0)
    for device_id in INFECTED:
        fleet.device(device_id).load_application(FIRMWARE)
    fleet.run_until(600.0)

    reports = fleet.collect_all()
    elapsed = time.perf_counter() - started

    caught = sorted(report.device_id for report in reports
                    if report.detected_infection())
    print(f"--- transport: {fleet.transport.name} ---")
    print(f"{len(reports)} reports in {elapsed:.2f}s wall time "
          f"({len(reports) / elapsed:.0f} devices/second, "
          f"sim clock at t={fleet.now:.2f})")
    print(f"infected mid-interval: {sorted(INFECTED)}")
    print(f"flagged by collection: {caught}")
    example = next(report for report in reports
                   if report.device_id == INFECTED[0])
    print(f"example report — {example.summary()}")
    print(fleet.health.summary())
    print()


def main() -> None:
    for transport in ("in-process", "simulated-network"):
        run_round(transport)


if __name__ == "__main__":
    main()
