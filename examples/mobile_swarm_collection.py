#!/usr/bin/env python3
"""Relay collections over a 1,000-device mobile swarm (Section 6).

A thousand SMART+ devices roam a 600 m x 600 m area under a
random-waypoint mobility model; the verifier sits pinned at the center
as the collection gateway.  Before every collection round the swarm
relay transport rewires its topology to the geometric graph the devices
form at that instant (and keeps re-sampling it while responses are in
flight), so the collection runs over the links that actually exist —
devices outside the gateway's connected component surface as lost
responses, not errors.

We sweep mobility speed and show the Section 6 claim on real provers:
because an ERASMUS collection finishes in network round-trip time,
coverage tracks the connected component and barely moves with speed,
while the cost-model on-demand protocols (whose instances last as long
as every device's measurement) collapse.

Run with:  python examples/mobile_swarm_collection.py
"""

from repro.experiments import swarm_mobility_fleet

DEVICES = 1000
SPEEDS = (0.0, 4.0, 8.0)


def main() -> None:
    rows = swarm_mobility_fleet.run(
        device_count=DEVICES, speeds=SPEEDS, area_size=600.0,
        radio_range=60.0, rounds=2, round_gap=30.0, seed=7)
    print(swarm_mobility_fleet.format_table(rows))

    slowest, fastest = SPEEDS[0], SPEEDS[-1]
    static = swarm_mobility_fleet.coverage_by_protocol(rows, slowest)
    mobile = swarm_mobility_fleet.coverage_by_protocol(rows, fastest)
    connected = swarm_mobility_fleet.connected_coverage_at(rows, fastest)
    print(f"\nAt {fastest:.0f} m/s the fleet collection still reaches "
          f"{mobile['erasmus-fleet']:.0%} of the swarm "
          f"({connected:.0%} is connected to the gateway at round time), "
          f"while SEDA drops from {static['seda']:.0%} to "
          f"{mobile['seda']:.0%} and LISA-α from "
          f"{static['lisa-alpha']:.0%} to {mobile['lisa-alpha']:.0%}.")


if __name__ == "__main__":
    main()
