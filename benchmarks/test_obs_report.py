"""Benchmark: report generation on the 1k-device trace.

Synthesizes the 1k-device, 4-shard, 2-round span trace (plus a
matching exposition) once in setup, then times the full analysis —
tree reconstruction, critical paths, skew, quantile recomputation,
JSON summary and HTML flame rendering.  CI exports the
pytest-benchmark JSON as ``BENCH_obs_report.json``; the hard gate
keeps the analysis layer orders of magnitude cheaper than the round
it analyzes (a 1k-device round takes seconds; its report must take a
fraction of one).
"""

from repro.experiments import obs_report

DEVICES = 1000
SHARDS = 4
ROUNDS = 2

#: Hard ceiling (seconds) on generating the full report for the
#: 1k-device trace.  The harness runs in ~0.1 s on a laptop; 5 s
#: leaves shared-CI headroom while still catching an accidentally
#: quadratic tree pass.
MAX_REPORT_SECONDS = 5.0


def test_obs_report_generation(benchmark):
    trace = obs_report.build_trace(devices=DEVICES, rounds=ROUNDS,
                                   shards=SHARDS)
    exposition = obs_report.build_exposition(devices=DEVICES,
                                             shards=SHARDS)
    row = benchmark.pedantic(
        obs_report.run_report,
        kwargs={"devices": DEVICES, "rounds": ROUNDS, "shards": SHARDS,
                "trace": trace, "exposition": exposition},
        rounds=3, iterations=1)
    assert row["summary_rounds"] == ROUNDS
    assert row["summary_verifies"] == DEVICES * ROUNDS
    benchmark.extra_info["trace_spans"] = row["trace_spans"]
    benchmark.extra_info["spans_per_second"] = row["spans_per_second"]
    benchmark.extra_info["summary_s"] = row["summary_s"]
    benchmark.extra_info["html_s"] = row["html_s"]
    benchmark.extra_info["json_bytes"] = row["json_bytes"]
    benchmark.extra_info["html_bytes"] = row["html_bytes"]
    assert row["total_s"] < MAX_REPORT_SECONDS, (
        f"report generation took {row['total_s']:.2f}s on the "
        f"{DEVICES}-device trace (gate: {MAX_REPORT_SECONDS}s)")
