"""ERASMUS core: self-measurement remote attestation.

This package implements the paper's primary contribution:

* :mod:`repro.core.measurement` — the measurement record
  ``M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>`` and its wire encoding;
* :mod:`repro.core.storage` — the rolling (circular) measurement buffer
  kept in the prover's insecure memory (Section 3.2);
* :mod:`repro.core.scheduler` — regular, CSPRNG-irregular (Section 3.5)
  and lenient (Section 5) measurement scheduling;
* :mod:`repro.core.prover` / :mod:`repro.core.verifier` — the two
  protocol roles, including the collection protocol (Figure 2), the
  ERASMUS+OD variant (Figure 4) and measurement-history verification;
* :mod:`repro.core.ondemand` — the on-demand attestation baseline
  (SMART+-style) that ERASMUS is compared against;
* :mod:`repro.core.qoa` — the Quality of Attestation metric
  (Section 3.1);
* :mod:`repro.core.config` — configuration dataclasses.
"""

from repro.core.config import ErasmusConfig, ScheduleKind
from repro.core.measurement import Measurement, MeasurementDecodeError
from repro.core.ondemand import OnDemandProver, OnDemandVerifier
from repro.core.protocol import (
    CollectRequest,
    CollectResponse,
    OnDemandRequest,
    OnDemandResponse,
    ProtocolDecodeError,
    decode_request,
    decode_response,
)
from repro.core.prover import ErasmusProver
from repro.core.qoa import QoA, expected_freshness, detection_probability
from repro.core.scheduler import (
    IrregularScheduler,
    LenientScheduler,
    MeasurementScheduler,
    RegularScheduler,
    build_scheduler,
)
from repro.core.storage import MeasurementStore
from repro.core.verification import (
    BaseVerifier,
    DeviceStatus,
    DuplicateEnrollmentError,
    Enrollment,
    MeasurementVerdict,
    VerificationCore,
    VerificationReport,
)
from repro.core.verifier import ErasmusVerifier

__all__ = [
    "BaseVerifier",
    "CollectRequest",
    "CollectResponse",
    "DeviceStatus",
    "DuplicateEnrollmentError",
    "Enrollment",
    "ErasmusConfig",
    "ErasmusProver",
    "ErasmusVerifier",
    "IrregularScheduler",
    "LenientScheduler",
    "Measurement",
    "MeasurementDecodeError",
    "MeasurementScheduler",
    "MeasurementStore",
    "MeasurementVerdict",
    "OnDemandProver",
    "OnDemandRequest",
    "OnDemandResponse",
    "OnDemandVerifier",
    "ProtocolDecodeError",
    "QoA",
    "RegularScheduler",
    "ScheduleKind",
    "VerificationCore",
    "VerificationReport",
    "build_scheduler",
    "decode_request",
    "decode_response",
    "detection_probability",
    "expected_freshness",
]
