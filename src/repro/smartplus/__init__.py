"""SMART+ security architecture model (low-end devices).

SMART+ is the DoS-hardened extension of SMART: ROM-resident attestation
code, a key accessible only from that code, atomic (uninterruptible)
execution, and a Reliable Read-Only Clock for request freshness.  The
paper builds its low-end ERASMUS prototype on SMART+ over an openMSP430
core (Figure 5, Table 1, Figure 6).

:class:`SmartPlusArchitecture` implements the
:class:`repro.arch.SecurityArchitecture` interface on top of the memory,
clock and cost models in :mod:`repro.hw`.
"""

from repro.smartplus.architecture import (
    SmartPlusArchitecture,
    build_smartplus_architecture,
)
from repro.smartplus.rom import RomImage, build_rom_image

__all__ = [
    "RomImage",
    "SmartPlusArchitecture",
    "build_rom_image",
    "build_smartplus_architecture",
]
