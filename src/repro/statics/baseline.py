"""Committed baseline of grandfathered findings.

A baseline entry acknowledges one pre-existing finding so CI can gate
on *new* violations without a flag day.  Every entry must carry a
human justification — an unexplained suppression is how invariants
rot — and :func:`Baseline.load` rejects files that omit one.

Entries match findings by ``(rule, path, message)``: line numbers
drift with unrelated edits, so they are recorded for humans but not
used for matching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.statics.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "statics-baseline.json"


class BaselineError(ValueError):
    """A baseline file is malformed or missing a justification."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus why it is acceptable."""

    rule: str
    path: str
    line: int
    message: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_row(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "justification": self.justification,
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "BaselineEntry":
        try:
            entry = cls(rule=str(row["rule"]), path=str(row["path"]),
                        line=int(row.get("line", 0)),
                        message=str(row["message"]),
                        justification=str(row.get("justification", "")))
        except KeyError as exc:
            raise BaselineError(
                f"baseline entry is missing field {exc.args[0]!r}") from exc
        if not entry.justification.strip():
            raise BaselineError(
                f"baseline entry for {entry.rule} at {entry.path} has no "
                f"justification; every grandfathered finding must say why")
        return entry


class Baseline:
    """The set of findings a run is allowed to report as pre-existing."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = sorted(
            entries, key=lambda entry: (entry.path, entry.line, entry.rule,
                                        entry.message))
        self._keys = {entry.key for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.message) in self._keys

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      justification: str) -> "Baseline":
        if not justification.strip():
            raise BaselineError("a baseline needs a justification")
        return cls(BaselineEntry(rule=finding.rule, path=finding.path,
                                 line=finding.line, message=finding.message,
                                 justification=justification)
                   for finding in findings)

    # ------------------------------------------------------------------
    # Persistence — byte-stable, like the JSON report
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_row() for entry in self.entries],
        }
        return (json.dumps(payload, sort_keys=True, indent=2) +
                "\n").encode("utf-8")

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"could not read baseline {path}: {exc}") \
                from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with 'entries'")
        return cls(BaselineEntry.from_row(row)
                   for row in payload["entries"])
