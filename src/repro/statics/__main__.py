"""Entry point for ``python -m repro.statics``."""

import sys

from repro.statics.cli import main

sys.exit(main())
