"""Process-pool shard workers: verification escapes the GIL.

A :class:`WorkerPool` spawns N worker processes, each running
:func:`_worker_main`: a headless verification core (the same
:class:`~repro.fleet.service.FleetVerifier` fast path the in-process
shards use) fed over a ``multiprocessing`` pipe with a compact binary
task codec.  The parent keeps all authoritative state — enrollments,
the :class:`~repro.store.StateStore`, sinks, observability — and ships
each worker only what a task needs:

* an **enrollment sync** (keys + digest whitelists, JSON rows) when a
  worker (re)spawns or the parent's enrollment material changes;
* per-task **entries**: device id, the raw response payload (or its
  absence) and the device's current ``last_seen``, so workers stay
  stateless across rounds;
* back home: the per-device :class:`VerificationReport` rows plus one
  :class:`~repro.fleet.sinks.FleetHealth` part covering the task, which
  the parent merges through the exact-Fraction accumulator — the merged
  aggregate is byte-identical to the single-process one.

Crash handling is part of the contract: a worker dying mid-task fails
the task's future with :class:`WorkerCrashed` (the parent counts the
batch's devices as lost), and the next :meth:`WorkerPool.ensure_worker`
respawns the slot.  :meth:`WorkerPool.inject_crash` arms a
deterministic ``os._exit`` on the slot's next task — the same wrap-only
fault-injection idiom as :class:`repro.campaign.faults.CrashOnceStore`.

The pool also runs campaign cells (:meth:`WorkerPool.submit_cell`):
a cell is one ``run_scenario`` call, fully described by its
:class:`~repro.campaign.scenario.Scenario` row and returning a plain
JSON result, so scenario grids fan out across cores unchanged.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import struct
import threading
import time as _time
import traceback
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ErasmusConfig
from repro.statics.runtime import named_lock

if TYPE_CHECKING:  # pragma: no cover — runtime import would cycle
    from repro.obs.service import Observability

_FRAME = struct.Struct(">BQ")          # opcode, correlation id
_TASK_HEADER = struct.Struct(">dBI")   # collection_time, flags, entry count
_ENTRY_HEADER = struct.Struct(">HB")   # device-id length, entry flags
_LAST_SEEN = struct.Struct(">d")
_PAYLOAD_LENGTH = struct.Struct(">I")
_RESULT_HEADER = struct.Struct(">BI")  # flags, report count
_BLOB_LENGTH = struct.Struct(">I")
_TIMING = struct.Struct(">d")

OP_ENROLL = 1        # parent -> worker: replace the enrollment mirror
OP_TASK = 2          # parent -> worker: verify one batch of payloads
OP_RESULT = 3        # worker -> parent: report rows + health part
OP_ERROR = 4         # worker -> parent: traceback text
OP_EXIT = 5          # parent -> worker: hard os._exit (crash injection)
OP_SHUTDOWN = 6      # parent -> worker: clean exit
OP_CELL = 7          # parent -> worker: run one campaign scenario cell
OP_CELL_RESULT = 8   # worker -> parent: the cell's JSON result

_TASK_WANT_TIMINGS = 0x01
_TASK_CRASH = 0x02
_ENTRY_HAS_LAST_SEEN = 0x01
_ENTRY_HAS_PAYLOAD = 0x02
_RESULT_HAS_TIMINGS = 0x01

#: Exit code of a deliberately crashed worker (``inject_crash``).
CRASH_EXIT_CODE = 17


class WorkerCrashed(Exception):
    """A worker process died with tasks still in flight."""


class WorkerError(Exception):
    """A worker reported a Python error while processing a frame."""


#: One verification unit: ``(device_id, payload_or_None, last_seen)``.
TaskEntry = Tuple[str, Optional[bytes], Optional[float]]


# ----------------------------------------------------------------------
# Binary task codec
# ----------------------------------------------------------------------

def encode_task(collection_time: float, entries: Sequence[TaskEntry], *,
                want_timings: bool = False, crash: bool = False) -> bytes:
    """Serialize one verification task into its compact binary frame."""
    flags = (_TASK_WANT_TIMINGS if want_timings else 0) | \
        (_TASK_CRASH if crash else 0)
    parts: List[bytes] = [_TASK_HEADER.pack(collection_time, flags,
                                            len(entries))]
    for device_id, payload, last_seen in entries:
        encoded_id = device_id.encode("utf-8")
        entry_flags = (_ENTRY_HAS_LAST_SEEN if last_seen is not None else 0) \
            | (_ENTRY_HAS_PAYLOAD if payload is not None else 0)
        parts.append(_ENTRY_HEADER.pack(len(encoded_id), entry_flags))
        parts.append(encoded_id)
        if last_seen is not None:
            parts.append(_LAST_SEEN.pack(last_seen))
        if payload is not None:
            parts.append(_PAYLOAD_LENGTH.pack(len(payload)))
            parts.append(payload)
    return b"".join(parts)


def decode_task(frame) -> Tuple[float, int, List[TaskEntry]]:
    """Reverse :func:`encode_task`; payloads are zero-copy views."""
    collection_time, flags, count = _TASK_HEADER.unpack_from(frame)
    view = memoryview(frame).toreadonly()
    offset = _TASK_HEADER.size
    entries: List[TaskEntry] = []
    for _ in range(count):
        id_length, entry_flags = _ENTRY_HEADER.unpack_from(view, offset)
        offset += _ENTRY_HEADER.size
        device_id = str(view[offset:offset + id_length], "utf-8")
        offset += id_length
        last_seen = None
        if entry_flags & _ENTRY_HAS_LAST_SEEN:
            (last_seen,) = _LAST_SEEN.unpack_from(view, offset)
            offset += _LAST_SEEN.size
        payload = None
        if entry_flags & _ENTRY_HAS_PAYLOAD:
            (length,) = _PAYLOAD_LENGTH.unpack_from(view, offset)
            offset += _PAYLOAD_LENGTH.size
            payload = view[offset:offset + length]
            offset += length
        entries.append((device_id, payload, last_seen))
    return collection_time, flags, entries


def encode_result(report_rows: Sequence[Dict[str, object]],
                  health_row: Dict[str, object],
                  timings: Optional[Sequence[float]] = None) -> bytes:
    """Serialize one task's result: report rows, health part, timings."""
    flags = _RESULT_HAS_TIMINGS if timings is not None else 0
    parts: List[bytes] = [_RESULT_HEADER.pack(flags, len(report_rows))]
    for row in report_rows:
        blob = json.dumps(row, sort_keys=True).encode("utf-8")
        parts.append(_BLOB_LENGTH.pack(len(blob)))
        parts.append(blob)
    health_blob = json.dumps(health_row, sort_keys=True).encode("utf-8")
    parts.append(_BLOB_LENGTH.pack(len(health_blob)))
    parts.append(health_blob)
    if timings is not None:
        parts.extend(_TIMING.pack(timing) for timing in timings)
    return b"".join(parts)


def decode_result(body) -> Tuple[List[Dict[str, object]], Dict[str, object],
                                 Optional[List[float]]]:
    """Reverse :func:`encode_result`."""
    view = memoryview(body).toreadonly()
    flags, count = _RESULT_HEADER.unpack_from(view)
    offset = _RESULT_HEADER.size
    rows: List[Dict[str, object]] = []
    for _ in range(count + 1):
        (length,) = _BLOB_LENGTH.unpack_from(view, offset)
        offset += _BLOB_LENGTH.size
        rows.append(json.loads(bytes(view[offset:offset + length])))
        offset += length
    health_row = rows.pop()
    timings = None
    if flags & _RESULT_HAS_TIMINGS:
        timings = [_TIMING.unpack_from(view, offset + i * _TIMING.size)[0]
                   for i in range(count)]
    return rows, health_row, timings


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------

def _worker_main(conn, config: Optional[ErasmusConfig],
                 schedule_tolerance: float, allowed_missing: int) -> None:
    """The worker loop: one frame in, one frame out, in order.

    Runs in a spawned child process (``multiprocessing`` forwards the
    parent's ``sys.path``, so the src layout imports cleanly).  All
    fleet/campaign imports happen here, not at module import time, so
    the parent-side pool never pays for (or cycles through) them.
    """
    from repro.core.verification import Enrollment
    from repro.fleet.service import FleetVerifier
    from repro.fleet.sinks import FleetHealth

    verifier: Optional[FleetVerifier] = None
    perf = _time.perf_counter
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            return
        opcode, rid = _FRAME.unpack_from(frame)
        body = memoryview(frame)[_FRAME.size:]
        try:
            if opcode == OP_SHUTDOWN:
                conn.close()
                return
            if opcode == OP_EXIT:
                os._exit(CRASH_EXIT_CODE)
            if opcode == OP_ENROLL:
                if verifier is None:
                    verifier = FleetVerifier(
                        config if config is not None else ErasmusConfig(),
                        schedule_tolerance=schedule_tolerance,
                        allowed_missing=allowed_missing)
                    # The mirror is scratch state: never journal it.
                    verifier.store = None
                verifier._enrollments = {
                    str(row["device_id"]): Enrollment.from_row(row)
                    for row in json.loads(bytes(body))}
                verifier._judges.clear()
                conn.send_bytes(_FRAME.pack(OP_RESULT, rid))
            elif opcode == OP_TASK:
                if verifier is None:
                    raise WorkerError("task received before enrollment sync")
                collection_time, flags, entries = decode_task(body)
                if flags & _TASK_CRASH:
                    os._exit(CRASH_EXIT_CODE)
                want_timings = bool(flags & _TASK_WANT_TIMINGS)
                health = FleetHealth()
                rows: List[Dict[str, object]] = []
                timings: Optional[List[float]] = [] if want_timings else None
                for device_id, payload, last_seen in entries:
                    enrollment = verifier._enrollments[device_id]
                    if enrollment.last_seen != last_seen:
                        enrollment = Enrollment(
                            device_id=device_id, key=enrollment.key,
                            healthy_digests=enrollment.healthy_digests,
                            last_seen=last_seen)
                        verifier._enrollments[device_id] = enrollment
                    started = perf() if want_timings else 0.0
                    report = verifier._verify_payload_fast(
                        device_id, payload, collection_time)
                    if timings is not None:
                        timings.append(perf() - started)
                    health.record(report)
                    rows.append(report.to_row())
                conn.send_bytes(_FRAME.pack(OP_RESULT, rid) +
                                encode_result(rows, health.to_row(),
                                              timings))
            elif opcode == OP_CELL:
                from repro.campaign.runner import run_scenario
                from repro.campaign.scenario import Scenario
                request = json.loads(bytes(body))
                scenario = Scenario(**request["scenario"])
                secret = request.get("master_secret")
                result = run_scenario(
                    scenario,
                    master_secret=None if secret is None
                    else bytes.fromhex(secret))
                conn.send_bytes(_FRAME.pack(OP_CELL_RESULT, rid) +
                                json.dumps(_cell_to_row(result),
                                           sort_keys=True).encode("utf-8"))
            else:
                raise WorkerError(f"unknown opcode {opcode}")
        except SystemExit:
            raise
        except BaseException:
            try:
                conn.send_bytes(_FRAME.pack(OP_ERROR, rid) +
                                traceback.format_exc().encode("utf-8"))
            except (OSError, ValueError):
                return


def _cell_to_row(result) -> Dict[str, object]:
    """Flatten one :class:`~repro.campaign.runner.CellResult` to JSON.

    Only fields the campaign artifact consumes cross the pipe; the
    cell's fleet, reports and observability stay in the worker.
    """
    detection = result.detection
    return {
        "scenario": result.scenario.to_row(),
        "detection": {
            "total_infections": detection.total_infections,
            "detected_infections": detection.detected_infections,
            "latencies": list(detection.latencies),
            "infected_devices": detection.infected_devices,
            "detected_devices": detection.detected_devices,
        },
        "rounds": [{
            "requests_sent": stats.requests_sent,
            "responses_received": stats.responses_received,
            "responses_lost": stats.responses_lost,
            "stale_responses_rejected": stats.stale_responses_rejected,
            "shards": stats.shards,
        } for stats in result.rounds],
        "skipped_rounds": result.skipped_rounds,
        "recovered_rounds": result.recovered_rounds,
        "dropped_exchanges": result.dropped_exchanges,
        "wall_seconds": result.wall_seconds,
    }


def cell_from_row(row: Dict[str, object]):
    """Rebuild a :class:`~repro.campaign.runner.CellResult` from its row."""
    from repro.analysis.detection import FleetDetectionSummary
    from repro.campaign.runner import CellResult
    from repro.campaign.scenario import Scenario
    from repro.fleet.sinks import RoundStats

    detection_row = dict(row["detection"])
    detection = FleetDetectionSummary(
        total_infections=int(detection_row["total_infections"]),
        detected_infections=int(detection_row["detected_infections"]),
        latencies=[float(value) for value in detection_row["latencies"]],
        infected_devices=int(detection_row["infected_devices"]),
        detected_devices=int(detection_row["detected_devices"]))
    rounds = [RoundStats(
        requests_sent=int(stats["requests_sent"]),
        responses_received=int(stats["responses_received"]),
        responses_lost=int(stats["responses_lost"]),
        stale_responses_rejected=int(stats["stale_responses_rejected"]),
        shards=int(stats["shards"])) for stats in row["rounds"]]
    return CellResult(
        scenario=Scenario(**row["scenario"]),
        detection=detection, rounds=rounds,
        skipped_rounds=int(row["skipped_rounds"]),
        recovered_rounds=int(row["recovered_rounds"]),
        dropped_exchanges=int(row["dropped_exchanges"]),
        wall_seconds=float(row["wall_seconds"]))


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side state for one live worker process."""

    __slots__ = ("process", "conn", "pending", "reader", "dead", "lock")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.pending: Dict[int, Future] = {}
        self.reader: Optional[threading.Thread] = None
        self.dead = threading.Event()
        self.lock = named_lock("fleet.worker_handle")


class WorkerPool:
    """N spawned verification workers behind correlated-future pipes.

    One duplex pipe per worker; a parent-side reader thread per worker
    resolves futures by correlation id, so any number of tasks can be
    in flight per worker (they are processed in order).  All methods
    are safe to call from event-loop callbacks: futures are
    ``concurrent.futures.Future`` and awaitable via
    ``asyncio.wrap_future``.
    """

    def __init__(self, count: int,
                 config: Optional[ErasmusConfig] = None,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 obs: Optional["Observability"] = None) -> None:
        if count < 1:
            raise ValueError("a worker pool needs at least one worker")
        from repro.obs.service import NULL_OBSERVABILITY
        self.count = count
        self.config = config
        self.schedule_tolerance = schedule_tolerance
        self.allowed_missing = allowed_missing
        self.obs = obs if obs is not None else NULL_OBSERVABILITY
        self._context = multiprocessing.get_context("spawn")
        self._handles: List[Optional[_WorkerHandle]] = [None] * count
        self.generations = [0] * count
        self.restarts = [0] * count
        self._crash_armed = [False] * count
        self._rids = itertools.count(1)
        self._lock = named_lock("fleet.worker_pool")
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def ensure_worker(self, index: int) -> int:
        """Spawn (or respawn) the slot if needed; returns its generation.

        A slot whose process died — crash-injected or organic — counts
        one restart and one ``repro_worker_restarts_total`` tick when
        it comes back; the fresh generation tells callers to re-sync
        enrollments.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            handle = self._handles[index]
            if handle is not None and not handle.dead.is_set():
                return self.generations[index]
            respawn = handle is not None
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_worker_main,
                args=(child_conn, self.config, self.schedule_tolerance,
                      self.allowed_missing),
                name=f"repro-worker-{index}", daemon=True)
            process.start()
            child_conn.close()
            handle = _WorkerHandle(process, parent_conn)
            handle.reader = threading.Thread(
                target=self._drain, args=(index, handle),
                name=f"repro-worker-{index}-reader", daemon=True)
            handle.reader.start()
            self._handles[index] = handle
            self.generations[index] += 1
            if respawn:
                self.restarts[index] += 1
                if self.obs.enabled:
                    self.obs.worker_restarts_total.labels(str(index)).inc()
            return self.generations[index]

    def inject_crash(self, index: int) -> None:
        """Arm a hard ``os._exit`` on the slot's next verification task.

        Deterministic mid-round crash injection: the doomed task's
        future (and any tasks queued behind it) fail with
        :class:`WorkerCrashed`, exactly as an organic crash would.
        """
        self._crash_armed[index] = True

    def kill(self, index: int) -> None:
        """Hard-kill the slot *now* via an ``OP_EXIT`` frame.

        Unlike :meth:`inject_crash` (which waits for the next task),
        this crashes an idle worker immediately: in-flight futures fail
        with :class:`WorkerCrashed` and the next
        :meth:`ensure_worker` respawns the slot.  A dead or never
        spawned slot is a no-op.
        """
        handle = self._handles[index]
        if handle is None or handle.dead.is_set():
            return
        try:
            handle.conn.send_bytes(_FRAME.pack(OP_EXIT, next(self._rids)))
        except (OSError, ValueError):
            pass  # pipe already gone — the reader will reap it
        handle.process.join(timeout=5.0)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = [h for h in self._handles if h is not None]
        for handle in handles:
            if not handle.dead.is_set():
                try:
                    handle.conn.send_bytes(
                        _FRAME.pack(OP_SHUTDOWN, next(self._rids)))
                except (OSError, ValueError):
                    pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------
    def sync_enrollments(self, index: int,
                         rows: Sequence[Dict[str, object]]) -> Future:
        """Replace the slot's enrollment mirror; resolves on ack."""
        return self._submit(index, OP_ENROLL,
                            json.dumps(list(rows)).encode("utf-8"))

    def submit_task(self, index: int, collection_time: float,
                    entries: Sequence[TaskEntry], *,
                    want_timings: bool = False) -> Future:
        """Dispatch one verification batch; resolves to its result body.

        The future's value is the raw result frame body — decode with
        :func:`decode_result` — so JSON parsing happens on the caller's
        schedule, not the reader thread's.
        """
        crash = self._crash_armed[index]
        if crash:
            self._crash_armed[index] = False
        future = self._submit(index, OP_TASK,
                              encode_task(collection_time, entries,
                                          want_timings=want_timings,
                                          crash=crash))
        if self.obs.enabled:
            observe = self.obs.worker_task_seconds.labels(str(index)).observe
            started = _time.perf_counter()

            def _observe(done: Future) -> None:
                if not done.cancelled() and done.exception() is None:
                    observe(_time.perf_counter() - started)

            future.add_done_callback(_observe)
        return future

    def submit_cell(self, index: int, scenario_row: Dict[str, object],
                    master_secret: Optional[bytes] = None) -> Future:
        """Run one campaign cell on the slot; resolves to its JSON row."""
        request = {"scenario": scenario_row,
                   "master_secret": None if master_secret is None
                   else master_secret.hex()}
        return self._submit(index, OP_CELL,
                            json.dumps(request).encode("utf-8"))

    def _submit(self, index: int, opcode: int, body: bytes) -> Future:
        handle = self._handles[index]
        if handle is None or handle.dead.is_set():
            raise WorkerCrashed(
                f"worker {index} is not running (call ensure_worker first)")
        rid = next(self._rids)
        future: Future = Future()
        with handle.lock:
            handle.pending[rid] = future
            depth = len(handle.pending)
        if self.obs.enabled:
            self.obs.worker_queue_depth.labels(str(index)).set(depth)
        try:
            handle.conn.send_bytes(_FRAME.pack(opcode, rid) + body)
        except (OSError, ValueError) as exc:
            with handle.lock:
                handle.pending.pop(rid, None)
            future.set_exception(WorkerCrashed(
                f"worker {index} pipe is broken: {exc}"))
        return future

    # -- reader ---------------------------------------------------------
    def _drain(self, index: int, handle: _WorkerHandle) -> None:
        """Per-worker reader: resolve futures until the pipe closes."""
        obs_enabled = self.obs.enabled
        depth_gauge = self.obs.worker_queue_depth.labels(str(index)) \
            if obs_enabled else None
        while True:
            try:
                frame = handle.conn.recv_bytes()
            except (EOFError, OSError):
                break
            opcode, rid = _FRAME.unpack_from(frame)
            with handle.lock:
                future = handle.pending.pop(rid, None)
                depth = len(handle.pending)
            if depth_gauge is not None:
                depth_gauge.set(depth)
            if future is None:
                continue
            body = memoryview(frame)[_FRAME.size:]
            if opcode == OP_ERROR:
                future.set_exception(WorkerError(
                    f"worker {index} failed:\n{str(body, 'utf-8')}"))
            elif opcode in (OP_RESULT, OP_CELL_RESULT):
                future.set_result(body)
            else:
                # A frame this parent cannot interpret means the codec
                # versions disagree; resolving it as a result would hand
                # the caller garbage bytes to decode.
                future.set_exception(WorkerError(
                    f"worker {index} sent unexpected opcode {opcode}"))
        handle.dead.set()
        with handle.lock:
            orphans = list(handle.pending.values())
            handle.pending.clear()
        if depth_gauge is not None:
            depth_gauge.set(0)
        for future in orphans:
            future.set_exception(WorkerCrashed(
                f"worker {index} died with tasks in flight"))
