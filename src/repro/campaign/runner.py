"""The campaign runner: scenario cells against real provisioned fleets.

``run_scenario`` executes one :class:`~repro.campaign.scenario.
Scenario` end to end — provision the fleet, deploy the adversary onto
the shared engine, alternate measurement windows with collection
rounds (skipping rounds inside verifier downtime, recovering from
injected store crashes via :meth:`repro.fleet.FleetVerifier.restore`)
— and scores the verifier's report stream against the adversary's
ground truth.  :class:`CampaignRunner` sweeps a grid of cells with
:class:`~repro.analysis.sweep.ParameterSweep`-style worker fan-out and
emits one JSON artifact: detection probability, time-to-detection, QoA
and per-round :class:`~repro.fleet.sinks.RoundStats` per cell.

Every quantity in a cell's row is a pure function of its scenario
(virtual-time simulation, seeded adversaries); wall-clock timing lives
in the artifact's separate ``timing`` section so the rows themselves
are byte-reproducible.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.adversary.fleet import (
    FleetAdversary,
    FleetMobileMalware,
    FleetPersistentMalware,
    FleetScheduleAwareMalware,
    FleetTamperingMalware,
)
from repro.analysis.detection import FleetDetectionSummary, match_fleet_reports
from repro.analysis.sweep import ParameterSweep
from repro.campaign.faults import CrashOnceStore, PartitionInjector
from repro.campaign.scenario import Scenario, ScenarioGrid
from repro.core.config import ErasmusConfig, ScheduleKind
from repro.core.qoa import QoA
from repro.core.verification import VerificationReport
from repro.fleet.profiles import DeviceProfile
from repro.fleet.service import Fleet, FleetVerifier
from repro.fleet.sinks import RoundStats
from repro.fleet.transport import (
    InProcessTransport,
    SimulatedNetworkTransport,
    SwarmRelayTransport,
    Transport,
)
from repro.net.mobility import (
    MobilityModel,
    PartitionMergeMobility,
    RandomWaypointMobility,
)
from repro.sim.engine import SimulationEngine
from repro.store import MemoryStore, StoreError

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.obs.service import Observability


def _fleet_device_names(scenario: Scenario) -> List[str]:
    """The ids ``Fleet.provision`` will assign, in provisioning order."""
    return [f"dev-{index:04d}" for index in range(scenario.devices)]


def _build_config(scenario: Scenario) -> ErasmusConfig:
    """The prover/verifier deployment config one cell runs under."""
    interval = scenario.effective_measurement_interval
    k = scenario.measurements_per_collection
    # Evidence must survive in the rolling buffer until it is
    # collected; downtime windows make the verifier skip rounds, so
    # the buffer has to bridge one extra collection interval.
    slots = 2 * k + 2 if scenario.verifier_downtime else k + 2
    schedule = ScheduleKind.IRREGULAR if scenario.schedule == "irregular" \
        else ScheduleKind.REGULAR
    return ErasmusConfig(measurement_interval=interval,
                         collection_interval=scenario.collection_interval,
                         buffer_slots=slots, schedule=schedule)


def _build_mobility(scenario: Scenario) -> Optional[MobilityModel]:
    names = _fleet_device_names(scenario)
    if scenario.mobility == "waypoint":
        return RandomWaypointMobility(
            names, area_size=scenario.mobility_area,
            radio_range=scenario.radio_range,
            speed=scenario.mobility_speed, seed=scenario.seed)
    if scenario.mobility == "partition-merge":
        return PartitionMergeMobility(
            names, groups=scenario.partition_groups,
            period=scenario.partition_period,
            merged_fraction=scenario.merged_fraction,
            area_size=scenario.mobility_area)
    return None


def _transport_factory(scenario: Scenario
                       ) -> Callable[[SimulationEngine], Transport]:
    """A ``Fleet.provision``-compatible transport factory for one cell.

    Fault injection wraps the built transport — the underlying
    transport classes are driven unmodified.
    """
    def build(engine: SimulationEngine) -> Transport:
        if scenario.transport == "swarm-relay":
            inner: Transport = SwarmRelayTransport(
                engine, mobility=_build_mobility(scenario),
                loss_probability=scenario.loss_probability,
                seed=scenario.seed)
        elif scenario.transport == "simulated-network":
            inner = SimulatedNetworkTransport(
                engine, loss_probability=scenario.loss_probability,
                seed=scenario.seed)
        else:
            inner = InProcessTransport(engine)
        if scenario.fault_partition_windows:
            inner = PartitionInjector(
                inner, scenario.fault_partition_windows,
                fraction=scenario.fault_partition_fraction,
                seed=scenario.seed)
        return inner
    return build


def build_adversary(scenario: Scenario, fleet: Fleet
                    ) -> Optional[FleetAdversary]:
    """The cell's adversary, targeting the provisioned fleet roster."""
    roster = {device_id: fleet.device(device_id)
              for device_id in fleet.device_ids()}
    if scenario.malware == "none":
        return None
    if scenario.malware == "mobile":
        return FleetMobileMalware(
            roster, arrival_rate=scenario.arrival_rate,
            dwell=scenario.dwell, mean_dwell=scenario.mean_dwell,
            victim_fraction=scenario.victim_fraction, seed=scenario.seed)
    if scenario.malware == "persistent":
        return FleetPersistentMalware(
            roster, victim_fraction=scenario.victim_fraction,
            seed=scenario.seed)
    if scenario.malware == "schedule-aware":
        dwell = scenario.dwell if scenario.dwell is not None \
            else scenario.mean_dwell
        return FleetScheduleAwareMalware(
            roster, dwell=dwell,
            victim_fraction=scenario.victim_fraction, seed=scenario.seed)
    assert scenario.malware == "tampering"
    # Strike just before each surviving collection, while the damaged
    # records are still inside the window the verifier will read.
    interval = scenario.effective_measurement_interval
    times = [time - interval / 2
             for time in scenario.active_collection_times()]
    return FleetTamperingMalware(
        roster, times=times, victim_fraction=scenario.victim_fraction,
        seed=scenario.seed)


def _round_row(stats: RoundStats) -> Dict[str, object]:
    """One round's mechanics, wall-clock excluded (machine-dependent)."""
    return {
        "requests_sent": stats.requests_sent,
        "responses_received": stats.responses_received,
        "responses_lost": stats.responses_lost,
        "stale_responses_rejected": stats.stale_responses_rejected,
        "shards": stats.shards,
    }


@dataclass
class CellResult:
    """Outcome of one scenario cell: detection, QoA and round mechanics."""

    scenario: Scenario
    detection: FleetDetectionSummary
    rounds: List[RoundStats] = field(default_factory=list)
    skipped_rounds: int = 0
    recovered_rounds: int = 0
    dropped_exchanges: int = 0
    #: Wall-clock cost of running the cell; machine-dependent, so kept
    #: out of :meth:`to_row` (see the artifact's ``timing`` section).
    wall_seconds: float = 0.0
    #: The cell's child :class:`repro.obs.Observability` (its private
    #: tracer + registry), when the campaign ran observed; excluded
    #: from :meth:`to_row` — reports are emitted from it separately.
    obs: Optional["Observability"] = field(default=None, repr=False)

    @property
    def qoa(self) -> QoA:
        """The cell's Quality-of-Attestation parameters."""
        return QoA(self.scenario.effective_measurement_interval,
                   self.scenario.collection_interval,
                   on_demand_only=self.scenario.protocol == "on-demand")

    def analytic_detection(self) -> Optional[float]:
        """``min(1, dwell / T_M)`` for dwell-bearing adversaries."""
        dwell = self.scenario.dwell if self.scenario.dwell is not None \
            else self.scenario.mean_dwell
        if dwell is None or self.scenario.malware not in (
                "mobile", "schedule-aware"):
            return None
        return self.qoa.detection_probability(dwell)

    def to_row(self) -> Dict[str, object]:
        """One deterministic JSON row for the campaign artifact."""
        detection = self.detection
        return {
            "scenario": self.scenario.to_row(),
            "detection": {
                "total_infections": detection.total_infections,
                "detected_infections": detection.detected_infections,
                "detection_rate": detection.detection_rate,
                "mean_time_to_detection_s": detection.mean_latency,
                "max_time_to_detection_s": detection.max_latency,
                "infected_devices": detection.infected_devices,
                "detected_devices": detection.detected_devices,
                "analytic_detection_rate": self.analytic_detection(),
            },
            "qoa": {
                "measurements_per_collection":
                    self.qoa.measurements_per_collection,
                "expected_freshness_s": self.qoa.expected_freshness,
                "expected_detection_latency_s":
                    self.qoa.expected_detection_latency(),
            },
            "rounds": [_round_row(stats) for stats in self.rounds],
            "skipped_rounds": self.skipped_rounds,
            "recovered_rounds": self.recovered_rounds,
            "dropped_exchanges": self.dropped_exchanges,
        }


def run_scenario(scenario: Scenario,
                 master_secret: Optional[bytes] = None,
                 obs: Optional["Observability"] = None) -> CellResult:
    """Run one scenario cell end to end on a real provisioned fleet.

    ``obs`` lights up the cell: the runner forks a **child**
    observability (:meth:`repro.obs.Observability.for_cell`, named
    after the scenario) and provisions the cell's fleet with it, so
    every cell records into its own tracer and registry — concurrent
    cells re-start round numbering per cell and would collide in one
    shared tracer otherwise.  When the cell finishes, its metrics are
    absorbed into the parent registry under a ``cell`` label
    (``repro_cell_*`` families), the parent's campaign counters record
    the cell (count, wall time, skipped/recovered rounds), and the
    child rides home on :attr:`CellResult.obs` for per-cell reports.
    """
    started = _time.perf_counter()
    cell_obs: Optional["Observability"] = None
    if obs is not None and obs.enabled:
        cell_obs = obs.for_cell(scenario.name)
    config = _build_config(scenario)
    profile = DeviceProfile.smartplus(application_size=256, config=config)
    engine = SimulationEngine()
    store = None
    if scenario.store_crash_round is not None:
        # Crash mid-way through the configured round: after every
        # earlier round's reports plus half of that round's.
        crash_after = (scenario.store_crash_round - 1) * scenario.devices \
            + scenario.devices // 2
        store = CrashOnceStore(MemoryStore(), crash_after)
    secret = master_secret if master_secret is not None \
        else f"campaign-master/{scenario.seed}".encode()
    fleet = Fleet.provision(
        profile, scenario.devices, master_secret=secret,
        transport=_transport_factory(scenario), engine=engine, store=store,
        stagger=scenario.protocol != "on-demand", obs=cell_obs)
    skipped = 0
    recovered = 0
    rounds: List[RoundStats] = []
    reports: List[VerificationReport] = []
    try:
        adversary = build_adversary(scenario, fleet)
        if adversary is not None:
            adversary.deploy(engine, scenario.horizon)
        for collection_time in scenario.collection_times():
            fleet.run_until(collection_time)
            if scenario.in_downtime(collection_time):
                skipped += 1
                continue
            try:
                round_reports = fleet.collect_all()
            except StoreError:
                # The journal write died mid-round; resume the
                # deployment from the very store that crashed and
                # re-run the round — the restart drill of PR 3, now a
                # campaign fault.
                assert store is not None
                fleet.verifier = FleetVerifier.restore(config, store)
                recovered += 1
                round_reports = fleet.collect_all()
            rounds.append(round_reports.stats)
            reports.extend(round_reports)
        fleet.run_until(scenario.horizon)
        ground_truth = adversary.ground_truth() if adversary is not None \
            else {}
        detection = match_fleet_reports(ground_truth, reports)
        dropped = getattr(fleet.transport, "dropped_exchanges", 0)
        result = CellResult(scenario=scenario, detection=detection,
                            rounds=rounds, skipped_rounds=skipped,
                            recovered_rounds=recovered,
                            dropped_exchanges=dropped,
                            wall_seconds=_time.perf_counter() - started,
                            obs=cell_obs)
        if obs is not None and obs.enabled:
            if cell_obs is not None:
                obs.absorb_cell(cell_obs)
            obs.cell_finished(result.wall_seconds,
                              skipped_rounds=result.skipped_rounds,
                              recovered_rounds=result.recovered_rounds)
        return result
    finally:
        fleet.close()


class CampaignRunner:
    """Sweep a scenario grid (or explicit cells) and emit one artifact.

    Cells are independent simulations, so ``max_workers`` fans them out
    — :class:`~repro.analysis.sweep.ParameterSweep` preserves cell
    order either way, and every row is a pure function of its scenario,
    so the artifact's ``cells`` section is identical no matter how the
    sweep was parallelized.

    ``executor`` selects where cells execute: ``"thread"`` (default)
    fans out on a thread pool in this process; ``"process"`` ships each
    cell's scenario row to a :class:`repro.fleet.workers.WorkerPool`
    worker process and rebuilds the :class:`CellResult` from the JSON
    row shipped home — the artifact rows are identical, but the
    simulations escape the GIL.  A process campaign cannot carry
    per-cell observability (the child tracer cannot cross the process
    boundary), so ``executor="process"`` with an enabled ``obs``
    raises.
    """

    def __init__(self, scenarios: Union[ScenarioGrid, Sequence[Scenario]],
                 name: str = "campaign",
                 max_workers: Optional[int] = None,
                 executor: str = "thread",
                 obs: Optional["Observability"] = None) -> None:
        if isinstance(scenarios, ScenarioGrid):
            self.cells = scenarios.cells()
        else:
            self.cells = list(scenarios)
        if not self.cells:
            raise ValueError("a campaign needs at least one scenario cell")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}; "
                             f"expected 'thread' or 'process'")
        if executor == "process" and obs is not None and obs.enabled:
            raise ValueError(
                "an observed campaign cannot run with executor='process': "
                "per-cell observability (tracer, registry, reports) lives "
                "in the parent process; use the thread executor")
        self.name = name
        self.max_workers = max_workers
        self.executor = executor
        self.obs = obs
        self.results: List[CellResult] = []

    def run(self) -> List[CellResult]:
        """Run every cell (optionally fanned out); results in cell order."""
        if self.executor == "process":
            self.results = self._run_process()
            return self.results
        sweep = ParameterSweep({"index": list(range(len(self.cells)))})
        sweep.run(lambda index: run_scenario(self.cells[index],
                                             obs=self.obs),
                  max_workers=self.max_workers)
        self.results = list(sweep.outcomes())
        return self.results

    def _run_process(self) -> List[CellResult]:
        """Ship every cell to a worker process; rebuild results in order."""
        from repro.fleet.workers import WorkerPool, cell_from_row

        count = self.max_workers if self.max_workers is not None \
            else (os.cpu_count() or 1)
        count = max(1, min(count, len(self.cells)))
        pool = WorkerPool(count)
        try:
            for index in range(count):
                pool.ensure_worker(index)
            futures = [pool.submit_cell(index % count, cell.to_row())
                       for index, cell in enumerate(self.cells)]
            rows = [json.loads(bytes(future.result()))
                    for future in futures]
        finally:
            pool.close()
        return [cell_from_row(row) for row in rows]

    def rows(self) -> List[Dict[str, object]]:
        """Every cell's deterministic JSON row, in cell order."""
        return [result.to_row() for result in self.results]

    def artifact(self) -> Dict[str, object]:
        """The campaign artifact: deterministic rows + separate timing."""
        return {
            "campaign": self.name,
            "cell_count": len(self.results),
            "cells": self.rows(),
            "timing": {
                "wall_seconds_per_cell": [
                    result.wall_seconds for result in self.results],
                "wall_seconds_total": sum(
                    result.wall_seconds for result in self.results),
            },
        }

    def write_artifact(self, path: str) -> Dict[str, object]:
        """Serialize the artifact to one JSON file; returns the document."""
        document = self.artifact()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=2)
            handle.write("\n")
        return document

    def write_reports(self, directory: str) -> Dict[str, List[str]]:
        """Emit per-cell observability reports plus a fleet-level rollup.

        For every cell that ran with a child observability
        (:attr:`CellResult.obs`), writes ``<cell>.report.html`` (the
        flame/timeline view) and ``<cell>.summary.json`` (the
        byte-stable trace summary) into ``directory``, then
        ``rollup.json`` / ``rollup.html`` aggregating all cells.
        Returns the written paths per kind.  Requires :meth:`run` to
        have completed with an observed campaign; raises otherwise.
        """
        from repro.obs.report import (
            ObsReport,
            render_rollup_html,
            rollup_summaries,
        )
        observed = [result for result in self.results
                    if result.obs is not None]
        if not observed:
            raise ValueError(
                "no cell observability to report on: run the campaign "
                "with CampaignRunner(..., obs=Observability()) first")
        os.makedirs(directory, exist_ok=True)
        written: Dict[str, List[str]] = {"html": [], "json": []}
        summaries: Dict[str, Dict[str, object]] = {}
        for result in observed:
            cell = result.obs.cell or result.scenario.name
            report = ObsReport.from_observability(result.obs, title=cell)
            safe = cell.replace("/", "_").replace(" ", "_")
            paths = report.write(
                html_path=os.path.join(directory, f"{safe}.report.html"),
                json_path=os.path.join(directory, f"{safe}.summary.json"))
            written["html"].append(paths["html"])
            written["json"].append(paths["json"])
            summaries[cell] = report.summary
        rollup = rollup_summaries(summaries)
        rollup_json = os.path.join(directory, "rollup.json")
        with open(rollup_json, "w", encoding="utf-8") as handle:
            json.dump(rollup, handle, sort_keys=True, indent=2)
            handle.write("\n")
        rollup_html = os.path.join(directory, "rollup.html")
        with open(rollup_html, "w", encoding="utf-8") as handle:
            handle.write(render_rollup_html(rollup, title=self.name))
        written["json"].append(rollup_json)
        written["html"].append(rollup_html)
        return written
