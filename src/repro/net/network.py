"""The network: nodes, links, routing and event-driven delivery."""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

import networkx as nx

from repro.net.link import Link
from repro.net.node import NetworkNode
from repro.net.packet import Packet
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind


class Network:
    """A topology of nodes and links with shortest-path packet delivery.

    Packets traverse the current shortest path hop by hop; each hop adds
    the link's transfer delay and may drop the packet.  Topology changes
    (mobility) simply rewire the underlying graph — packets already "in
    flight" on a removed link are lost, which is exactly the behaviour
    that breaks on-demand swarm attestation in high-mobility settings.
    """

    def __init__(self, engine: SimulationEngine, seed: int = 0) -> None:
        self.engine = engine
        self.graph = nx.Graph()
        self._nodes: Dict[str, NetworkNode] = {}
        self._random = random.Random(seed)
        # Shortest-path trees cached per topology version: one Dijkstra
        # from a queried source serves every destination (and, the graph
        # being undirected, the reverse direction too), so a rewired
        # swarm pays one route computation per rewire rather than one
        # per packet.
        self._topology_version = 0
        self._path_cache: Dict[str, Dict[str, list]] = {}
        self._path_cache_version = -1
        self.delivered_packets = 0
        self.dropped_packets = 0
        self.unroutable_packets = 0
        #: Packets admitted but not yet delivered or dropped.  Lets
        #: callers draining the engine stop as soon as nothing they are
        #: waiting for can still arrive.
        self.in_flight_packets = 0
        #: Event hooks for callers that account packets by category
        #: rather than globally (e.g. a transport tracking which
        #: collection *round* each in-flight packet belongs to).
        #: ``on_packet_admitted`` fires when :meth:`transmit` accepts a
        #: packet; ``on_packet_settled`` fires exactly once per admitted
        #: packet with the outcome ``"delivered"`` or ``"dropped"``.
        self.on_packet_admitted: list = []
        self.on_packet_settled: list = []

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_node(self, node: NetworkNode) -> NetworkNode:
        """Attach a node to the network."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.network = self
        self.graph.add_node(node.name)
        return node

    def node(self, name: str) -> NetworkNode:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise KeyError(f"no node named {name!r}") from exc

    def nodes(self) -> list[NetworkNode]:
        """All attached nodes."""
        return list(self._nodes.values())

    def remove_node(self, name: str) -> None:
        """Detach a node and every link incident to it.

        Packets already in flight towards the removed node are lost and
        settled as dropped, the same way a removed link loses them.
        """
        node = self._nodes.pop(name, None)
        if node is None:
            return
        node.network = None
        self.graph.remove_node(name)
        self._topology_version += 1

    def add_link(self, link: Link) -> Link:
        """Connect two existing nodes with a link."""
        for endpoint in link.endpoints():
            if endpoint not in self._nodes:
                raise KeyError(f"link endpoint {endpoint!r} is not a node")
        self.graph.add_edge(link.node_a, link.node_b, link=link)
        self._topology_version += 1
        return link

    def remove_link(self, first: str, second: str) -> None:
        """Remove the link between two nodes, if present."""
        if self.graph.has_edge(first, second):
            self.graph.remove_edge(first, second)
            self._topology_version += 1

    def link_between(self, first: str, second: str) -> Optional[Link]:
        """The link joining two nodes, if any."""
        if not self.graph.has_edge(first, second):
            return None
        return self.graph.edges[first, second]["link"]

    def set_links(self, links: Iterable[Link]) -> None:
        """Replace the entire set of links (used by mobility models).

        Packets in flight keep their admitted state across the rewire:
        a packet whose next hop survived keeps travelling, a packet
        whose next hop was removed is dropped — and settled exactly once
        — when it reaches the gap.  No packet is ever re-admitted or
        settled twice, however many rewires happen while it travels.
        """
        self.graph.remove_edges_from(list(self.graph.edges))
        self._topology_version += 1
        for link in links:
            self.add_link(link)

    def neighbors(self, name: str) -> list[str]:
        """Names of the node's current one-hop neighbours."""
        return list(self.graph.neighbors(name))

    def is_connected(self, first: str, second: str) -> bool:
        """True when a path currently exists between the two nodes."""
        return nx.has_path(self.graph, first, second)

    # ------------------------------------------------------------------
    # Packet delivery
    # ------------------------------------------------------------------
    def path(self, source: str, destination: str) -> Optional[list[str]]:
        """Current shortest path (by link latency), or ``None``.

        Routes come from a per-source shortest-path tree cached until
        the next topology change; a tree cached for either endpoint
        answers both directions (links are bidirectional with symmetric
        latency), so one collection round's worth of request *and*
        response packets costs a single Dijkstra run.
        """
        if source == destination:
            return [source] if source in self.graph else None
        if self._path_cache_version != self._topology_version:
            self._path_cache = {}
            self._path_cache_version = self._topology_version
        tree = self._path_cache.get(source)
        if tree is None:
            reverse_tree = self._path_cache.get(destination)
            if reverse_tree is not None:
                reverse = reverse_tree.get(source)
                return list(reversed(reverse)) if reverse is not None \
                    and len(reverse) >= 2 else None
            if source not in self.graph:
                return None
            tree = nx.single_source_dijkstra_path(
                self.graph, source,
                weight=lambda u, v, data: data["link"].latency)
            self._path_cache[source] = tree
        route = tree.get(destination)
        return list(route) if route is not None and len(route) >= 2 else None

    def transmit(self, packet: Packet) -> bool:
        """Send a packet along the current shortest path.

        Returns ``True`` when the packet was admitted (a route existed at
        send time); delivery itself is scheduled on the event engine and
        may still fail mid-path due to loss or link removal.
        """
        route = self.path(packet.source, packet.destination)
        if route is None or len(route) < 2:
            self.unroutable_packets += 1
            return False
        self.in_flight_packets += 1
        for listener in self.on_packet_admitted:
            listener(packet)
        self._schedule_hop(packet, route, hop_index=0, time=self.engine.now)
        return True

    def _settle(self, packet: Packet, outcome: str) -> None:
        """Retire one admitted packet and notify settlement listeners."""
        self.in_flight_packets -= 1
        for listener in self.on_packet_settled:
            listener(packet, outcome)

    def _schedule_hop(self, packet: Packet, route: list[str], hop_index: int,
                      time: float) -> None:
        current, following = route[hop_index], route[hop_index + 1]
        link = self.link_between(current, following)
        if link is None:
            # The topology changed underneath the packet: it is lost.
            self.dropped_packets += 1
            self._settle(packet, "dropped")
            return
        if self._random.random() < link.loss_probability:
            self.dropped_packets += 1
            self._settle(packet, "dropped")
            return
        arrival = time + link.transfer_delay(packet)

        def _arrive(_event) -> None:
            if hop_index + 2 >= len(route):
                destination = self._nodes.get(route[-1])
                if destination is None:
                    # The destination left the network mid-flight.
                    self.dropped_packets += 1
                    self._settle(packet, "dropped")
                    return
                self.delivered_packets += 1
                # Count delivery before the handler runs: the handler
                # may transmit a reply, which is a new in-flight packet.
                self._settle(packet, "delivered")
                destination.deliver(packet.forwarded(route[-1]),
                                    self.engine.now)
            else:
                self._schedule_hop(packet, route, hop_index + 1,
                                   self.engine.now)

        self.engine.schedule(arrival, _arrive, EventKind.PACKET_DELIVERY,
                             payload=packet.kind)
