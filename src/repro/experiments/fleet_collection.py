"""Fleet-collection throughput: devices per second across transports.

Not a paper artifact — this harness characterizes the reproduction's
own fleet service (:mod:`repro.fleet`): how fast one batched
``collect_all`` round (provision → schedule → collect → verify) runs
for a given fleet size over each transport.  It backs the
``benchmarks/test_fleet_collection.py`` throughput benchmark and gives
scaling PRs a fixed yardstick.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.fleet import DeviceProfile, Fleet

DEFAULT_TRANSPORTS: Sequence[str] = ("in-process", "simulated-network",
                                     "swarm-relay")


def default_profile() -> DeviceProfile:
    """The small SMART+ profile the throughput rows are measured with."""
    return DeviceProfile.smartplus(firmware=b"fleet-bench-firmware",
                                   application_size=512,
                                   measurement_interval=60.0,
                                   collection_interval=600.0,
                                   buffer_slots=16)


def run_round(transport: str, device_count: int,
              profile: Optional[DeviceProfile] = None,
              horizon: Optional[float] = None,
              max_workers: Optional[int] = None) -> Dict[str, object]:
    """One full fleet round over one transport; returns a result row."""
    profile = profile if profile is not None else default_profile()
    if horizon is None:
        horizon = profile.config.collection_interval
    started = time.perf_counter()
    fleet = Fleet.provision(profile, device_count,
                            master_secret=b"fleet-bench-master-secret",
                            transport=transport)
    provisioned = time.perf_counter()
    fleet.run_until(horizon)
    measured = time.perf_counter()
    reports = fleet.collect_all(max_workers=max_workers)
    finished = time.perf_counter()

    healthy = sum(1 for report in reports if not report.detected_infection())
    wall_time = finished - started
    return {
        "transport": fleet.transport.name,
        "devices": device_count,
        "reports": len(reports),
        "healthy": healthy,
        "provision_s": provisioned - started,
        "measure_s": measured - provisioned,
        "collect_s": finished - measured,
        "wall_time_s": wall_time,
        "devices_per_second": device_count / wall_time if wall_time else 0.0,
        "collect_devices_per_second":
            device_count / (finished - measured) if finished > measured
            else 0.0,
        "sim_round_trip_s": fleet.now - horizon,
    }


def run(device_count: int = 1000,
        transports: Sequence[str] = DEFAULT_TRANSPORTS,
        profile: Optional[DeviceProfile] = None,
        max_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """One throughput row per transport for the given fleet size."""
    return [run_round(transport, device_count, profile=profile,
                      max_workers=max_workers)
            for transport in transports]


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the throughput rows as a fixed-width table."""
    header = (f"{'transport':<20} {'devices':>8} {'healthy':>8} "
              f"{'wall (s)':>9} {'dev/s':>8} {'collect dev/s':>14}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['transport']:<20} {row['devices']:>8} "
            f"{row['healthy']:>8} {row['wall_time_s']:>9.2f} "
            f"{row['devices_per_second']:>8.0f} "
            f"{row['collect_devices_per_second']:>14.0f}")
    return "\n".join(lines)


def main() -> None:
    """Print the fleet throughput table (1,000 devices per transport)."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
