"""Constant-time byte-string comparison.

The verifier compares received MACs against recomputed ones; doing so
with an early-exit comparison would leak how many prefix bytes matched.
While the timing channel is far less relevant in a simulation, the
reproduction keeps the idiom so that the protocol code reads like the
real system would.
"""

from __future__ import annotations


def constant_time_compare(left: bytes, right: bytes) -> bool:
    """Compare two byte strings without early exit.

    Returns ``True`` only when the inputs have equal length and equal
    content.  The running time depends only on the length of ``left``.
    """
    accepted = (bytes, bytearray, memoryview)
    if not isinstance(left, accepted) or not isinstance(right, accepted):
        raise TypeError("constant_time_compare expects bytes")
    result = len(left) ^ len(right)
    padded_right = bytes(right) + b"\x00" * max(0, len(left) - len(right))
    for l_byte, r_byte in zip(bytes(left), padded_right):
        result |= l_byte ^ r_byte
    return result == 0
