"""Shared fixtures for the ERASMUS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.arch.base import hash_for_mac
from repro.core import ErasmusConfig, ErasmusProver, ErasmusVerifier
from repro.hydra import build_hydra_architecture
from repro.sim import SimulationEngine
from repro.smartplus import build_smartplus_architecture

TEST_KEY = bytes(range(16))
FIRMWARE = b"test-firmware-image-v1" + bytes(200)
MALWARE = b"malicious-payload" + bytes(220)


@pytest.fixture
def key() -> bytes:
    """A 16-byte attestation key shared by prover and verifier."""
    return TEST_KEY


@pytest.fixture
def firmware() -> bytes:
    """A healthy application image."""
    return FIRMWARE


@pytest.fixture
def malware_image() -> bytes:
    """A malicious application image, distinct from the firmware."""
    return MALWARE


@pytest.fixture
def config() -> ErasmusConfig:
    """A small, fast ERASMUS configuration used across the suite."""
    return ErasmusConfig(measurement_interval=10.0,
                         collection_interval=60.0,
                         buffer_slots=8,
                         mac_name="keyed-blake2s")


@pytest.fixture
def smartplus_arch(key, firmware):
    """A SMART+ architecture with a tiny measured region (fast MACs)."""
    architecture = build_smartplus_architecture(
        key, mac_name="keyed-blake2s", application_size=512)
    architecture.load_application(firmware)
    return architecture


@pytest.fixture
def hydra_arch(key, firmware):
    """A HYDRA architecture with a small measured region (fast MACs)."""
    architecture = build_hydra_architecture(
        key, mac_name="keyed-blake2s", application_size=4096,
        measurement_buffer_size=4096)
    architecture.load_application(firmware)
    return architecture


@pytest.fixture
def erasmus_setup(key, config, smartplus_arch):
    """A ready-to-run (prover, verifier, engine, architecture) quadruple."""
    healthy = hash_for_mac(config.mac_name)(
        smartplus_arch.read_measured_memory())
    prover = ErasmusProver(smartplus_arch, config, device_id="dev-under-test")
    verifier = ErasmusVerifier(config)
    verifier.enroll("dev-under-test", key, [healthy])
    engine = SimulationEngine()
    return prover, verifier, engine, smartplus_arch
