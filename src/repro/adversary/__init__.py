"""Adversary models.

The paper's threat model features:

* **persistent malware** that infects the prover and stays;
* **mobile (transient) malware** [Ostrovsky & Yung] that infects, acts
  and erases itself before the next attestation — the adversary
  on-demand RA cannot catch (Figure 1, infection 1);
* **tampering malware** that modifies, reorders or deletes the stored
  measurements in the insecure buffer (Section 3.2) — detectable
  because it cannot forge MACs;
* **clock-rewind malware** that would exploit a writable clock
  (Section 3.4) — impossible against a true RROC;
* **schedule-aware malware** that knows the fixed ``T_M`` and times its
  visits to dodge measurements (the motivation for irregular intervals,
  Section 3.5).

Each model drives a prover through the simulation engine and records
what it did, so the analysis layer can compare ground truth against
what the verifier detected.

The single-device classes target one ``SecurityArchitecture``; their
fleet-native counterparts in :mod:`repro.adversary.fleet` pick victims
from a provisioned fleet roster, schedule onto the shared simulation
engine and record per-device ground truth for the campaign engine
(:mod:`repro.campaign`).
"""

from repro.adversary.fleet import (
    DEFAULT_MALICIOUS_IMAGE,
    FleetAdversary,
    FleetMobileMalware,
    FleetPersistentMalware,
    FleetScheduleAwareMalware,
    FleetTamperingMalware,
)
from repro.adversary.malware import (
    Infection,
    MalwareCampaign,
    MobileMalware,
    PersistentMalware,
)
from repro.adversary.roving import ScheduleAwareMalware
from repro.adversary.tamper import ClockRewindAttempt, TamperingMalware

__all__ = [
    "ClockRewindAttempt",
    "DEFAULT_MALICIOUS_IMAGE",
    "FleetAdversary",
    "FleetMobileMalware",
    "FleetPersistentMalware",
    "FleetScheduleAwareMalware",
    "FleetTamperingMalware",
    "Infection",
    "MalwareCampaign",
    "MobileMalware",
    "PersistentMalware",
    "ScheduleAwareMalware",
    "TamperingMalware",
]
