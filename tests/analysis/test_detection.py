"""Tests for the timeline-level detection analysis."""

import math

import pytest

from repro.adversary import Infection, MalwareCampaign
from repro.analysis import (
    detection_latency,
    infection_detected,
    simulate_detection,
)
from repro.core.scheduler import IrregularScheduler


def test_infection_detected_when_measurement_falls_inside():
    infection = Infection("dev", start=25.0, end=45.0)
    assert infection_detected(infection, [10.0, 30.0, 60.0])
    assert not infection_detected(infection, [10.0, 50.0, 60.0])
    persistent = Infection("dev", start=25.0)
    assert infection_detected(persistent, [100.0])


def test_detection_latency_uses_first_collection_after_evidence():
    infection = Infection("dev", start=25.0, end=45.0)
    latency = detection_latency(infection, measurement_times=[30.0, 40.0],
                                collection_times=[20.0, 100.0, 200.0])
    assert latency == pytest.approx(75.0)
    assert detection_latency(infection, [50.0], [100.0]) is None
    assert detection_latency(infection, [30.0], [10.0]) is None


def test_simulate_detection_erasmus_beats_on_demand():
    campaign = MalwareCampaign(arrival_rate=1 / 400.0, mean_dwell=40.0, seed=5)
    erasmus = simulate_detection(60.0, 600.0, campaign, horizon=200_000.0)
    on_demand = simulate_detection(60.0, 600.0, campaign, horizon=200_000.0,
                                   on_demand_only=True)
    assert erasmus.total_infections == on_demand.total_infections > 50
    assert erasmus.detection_rate > on_demand.detection_rate
    assert erasmus.detection_rate > 0.3


def test_detection_rate_matches_analytic_for_exponential_dwell():
    # For exponentially distributed dwell with mean d, the detection
    # probability under a regular T_M schedule is (d/T_M)(1 - e^(-T_M/d)).
    measurement_interval = 60.0
    mean_dwell = 60.0
    campaign = MalwareCampaign(arrival_rate=1 / 500.0, mean_dwell=mean_dwell,
                               seed=11)
    summary = simulate_detection(measurement_interval, 600.0, campaign,
                                 horizon=400_000.0)
    expected = (mean_dwell / measurement_interval) * \
        (1 - math.exp(-measurement_interval / mean_dwell))
    assert summary.detection_rate == pytest.approx(expected, abs=0.08)


def test_latencies_bounded_by_collection_interval():
    campaign = MalwareCampaign(arrival_rate=1 / 300.0, mean_dwell=120.0,
                               seed=2)
    summary = simulate_detection(30.0, 300.0, campaign, horizon=50_000.0)
    assert summary.mean_latency is not None
    assert summary.max_latency <= 300.0 + 120.0 + 30.0
    assert summary.mean_latency < summary.max_latency + 1e-9


def test_custom_scheduler_is_honoured():
    campaign = MalwareCampaign(arrival_rate=1 / 300.0, mean_dwell=50.0, seed=4)
    scheduler = IrregularScheduler(b"key", lower=30.0, upper=90.0)
    summary = simulate_detection(60.0, 600.0, campaign, horizon=40_000.0,
                                 scheduler=scheduler)
    assert summary.measurement_count > 400


def test_no_infections_counts_as_full_detection():
    campaign = MalwareCampaign(arrival_rate=1e-9, mean_dwell=10.0, seed=1)
    summary = simulate_detection(60.0, 600.0, campaign, horizon=1000.0)
    assert summary.total_infections == 0
    assert summary.detection_rate == 1.0
    assert summary.mean_latency is None


def test_invalid_horizon_rejected():
    campaign = MalwareCampaign(arrival_rate=0.1, mean_dwell=1.0)
    with pytest.raises(ValueError):
        simulate_detection(60.0, 600.0, campaign, horizon=0.0)
