#!/usr/bin/env python3
"""Adversarial campaign: mobile malware sweeps a 1,000-device fleet.

The campaign engine (:mod:`repro.campaign`) closes the loop between
the adversary layer and the fleet stack:

1. declare a base :class:`Scenario` — 1,000 SMART+ devices, ERASMUS
   intervals ``T_M = 60 s`` / ``T_C = 600 s``, mobile malware striking
   a quarter of the fleet;
2. sweep a :class:`ScenarioGrid` over malware dwell time and protocol
   (ERASMUS vs classic on-demand RA, which only measures when the
   verifier asks);
3. run every cell end to end with :class:`CampaignRunner` — each cell
   provisions its own fleet, deploys the adversary onto the shared
   simulation engine, runs the collection rounds, and scores the
   verifier's reports against the adversary's ground truth;
4. print the ERASMUS-vs-on-demand detection curves next to the
   analytic law ``detection = min(1, dwell / T_M)`` (Figure 1's
   shape), and write the whole campaign as one JSON artifact.

Run with:  python examples/fleet_campaign.py [--devices N] [--out FILE]
"""

import argparse
import time

from repro.campaign import CampaignRunner, Scenario, ScenarioGrid

MEASUREMENT_INTERVAL = 60.0
COLLECTION_INTERVAL = 600.0
DWELL_FRACTIONS = (0.1, 0.25, 0.5, 1.0, 2.0)


def build_grid(devices: int, horizon: float, seed: int) -> ScenarioGrid:
    base = Scenario(
        name="fleet-campaign", devices=devices, horizon=horizon,
        measurement_interval=MEASUREMENT_INTERVAL,
        collection_interval=COLLECTION_INTERVAL,
        malware="mobile", arrival_rate=1.0 / 900.0,
        victim_fraction=0.25, seed=seed)
    return ScenarioGrid(base=base, axes={
        "dwell": [fraction * MEASUREMENT_INTERVAL
                  for fraction in DWELL_FRACTIONS],
        "protocol": ["erasmus", "on-demand"],
    })


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=1000,
                        help="fleet size per cell (default: 1000)")
    parser.add_argument("--horizon", type=float, default=3600.0,
                        help="campaign horizon in seconds (default: 3600)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4,
                        help="cells to run concurrently (default: 4)")
    parser.add_argument("--out", default="fleet_campaign.json",
                        help="campaign artifact path")
    arguments = parser.parse_args()

    grid = build_grid(arguments.devices, arguments.horizon, arguments.seed)
    runner = CampaignRunner(grid, name="fleet-campaign",
                            max_workers=arguments.workers)
    print(f"Running {len(runner.cells)} cells x "
          f"{arguments.devices} devices ...")
    started = time.perf_counter()
    results = runner.run()
    elapsed = time.perf_counter() - started

    print(f"\n{'dwell (s)':>10} {'dwell/T_M':>10} {'ERASMUS':>9} "
          f"{'on-demand':>10} {'analytic':>9} {'infections':>11}")
    # cells expand dwell-major, protocol-minor
    for index, fraction in enumerate(DWELL_FRACTIONS):
        erasmus = results[2 * index]
        ondemand = results[2 * index + 1]
        print(f"{erasmus.scenario.dwell:>10.1f} {fraction:>10.2f} "
              f"{erasmus.detection.detection_rate:>9.3f} "
              f"{ondemand.detection.detection_rate:>10.3f} "
              f"{erasmus.analytic_detection():>9.3f} "
              f"{erasmus.detection.total_infections:>11d}")

    document = runner.write_artifact(arguments.out)
    print(f"\n{document['cell_count']} cells, "
          f"{sum(r.detection.total_infections for r in results)} "
          f"ground-truth infections, {elapsed:.1f} s wall clock")
    print(f"Campaign artifact written to {arguments.out}")


if __name__ == "__main__":
    main()
