"""Shared plumbing for the statics engine tests.

Checker tests lint *source strings*, never real repo files: each
builds a :class:`FileContext` at an invented relpath (so path-based
rules — hot-path markers, test detection, module exemptions — can be
exercised both ways) and runs exactly one checker through the same
``run_checks`` pipeline the CLI uses, pragmas included.
"""

import ast
from pathlib import Path

from repro.statics.engine import FileContext, run_checks

DEFAULT_RELPATH = "src/repro/fleet/module.py"


def context_for(source: str, relpath: str = DEFAULT_RELPATH) -> FileContext:
    return FileContext(Path(relpath), relpath, source,
                       ast.parse(source))


def lint(checker, source: str, relpath: str = DEFAULT_RELPATH):
    """Findings one checker produces for a source string."""
    findings, _suppressed = run_checks(context_for(source, relpath),
                                       [checker], {checker.rule})
    return findings


def rules_hit(checker, source: str, relpath: str = DEFAULT_RELPATH):
    return [finding.rule for finding in lint(checker, source, relpath)]


def write_tree(root: Path, files) -> None:
    """Materialize a {relpath: source} mapping under ``root``."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
