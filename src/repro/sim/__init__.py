"""Discrete-event simulation engine.

Everything time-dependent in the reproduction -- measurement schedules,
verifier collections, malware arrival/departure, packet delivery, swarm
mobility -- runs on this engine.  It is a classic event-queue simulator:
events carry a firing time and a callback; the engine pops them in time
order and advances a virtual clock.  No wall-clock time is ever used, so
every experiment is exactly reproducible from its seed and parameters.
"""

from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.events import Event, EventKind
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "EventKind",
    "SimulationEngine",
    "SimulationError",
    "TraceEvent",
    "TraceRecorder",
]
