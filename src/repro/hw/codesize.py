"""Executable-size model reproducing Table 1.

The paper compiles the ROM-resident attestation code (SMART+) and the
PrAtt process (HYDRA) with msp430-gcc / the seL4 toolchain and reports
the resulting sizes for three MAC choices.  We cannot cross-compile
here, so the model decomposes each executable into components whose
sizes are calibrated from Table 1:

SMART+ (sizes in KB)
    MAC primitive (SHA-1 3.4 / SHA-256 3.6 / BLAKE2s 27.4)
    + measurement core 1.1
    + request authentication 0.4   (on-demand only)
    + timer scheduling hook 0.2    (ERASMUS only)

HYDRA (sizes in KB)
    seL4 user libraries 180.0 + network stack 30.0 + PrAtt core 14.56
    + MAC primitive (SHA-256 7.0 / BLAKE2s 14.33)
    + request authentication 0.40  (on-demand only)
    + timer driver 2.28            (ERASMUS only)

Summing the components reproduces Table 1 exactly; more importantly the
model preserves the two qualitative findings — ERASMUS is slightly
*smaller* than on-demand on SMART+ (no request authentication) and about
1 % *larger* on HYDRA (it needs an extra timer driver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

_KB = 1024.0

_SMARTPLUS_MAC_KB: Dict[str, float] = {
    "hmac-sha1": 3.4,
    "hmac-sha256": 3.6,
    "keyed-blake2s": 27.4,
}

_HYDRA_MAC_KB: Dict[str, Optional[float]] = {
    "hmac-sha1": None,  # the paper does not build HYDRA with SHA-1
    "hmac-sha256": 7.0,
    "keyed-blake2s": 14.33,
}

_SMARTPLUS_COMPONENTS_KB: Dict[str, float] = {
    "measurement_core": 1.1,
    "request_auth": 0.4,
    "timer_hook": 0.2,
}

_HYDRA_COMPONENTS_KB: Dict[str, float] = {
    "sel4_libraries": 180.0,
    "network_stack": 30.0,
    "pratt_core": 14.56,
    "request_auth": 0.40,
    "timer_driver": 2.28,
}


@dataclass(frozen=True)
class CodeSizeReport:
    """Breakdown of one executable's size.

    ``components`` maps component names to KB; ``total_kb`` is their sum
    and ``total_bytes`` the same in bytes.
    """

    architecture: str
    variant: str
    mac_name: str
    components: Dict[str, float]

    @property
    def total_kb(self) -> float:
        """Total executable size in kilobytes."""
        return round(sum(self.components.values()), 2)

    @property
    def total_bytes(self) -> int:
        """Total executable size in bytes."""
        return int(round(self.total_kb * _KB))


class CodeSizeModel:
    """Component-level executable-size model for both architectures."""

    ARCHITECTURES = ("smart+", "hydra")
    VARIANTS = ("on-demand", "erasmus")

    def supported(self, architecture: str, mac_name: str) -> bool:
        """True when the paper (and hence the model) builds that combination."""
        architecture = architecture.lower()
        mac_name = mac_name.lower()
        if architecture == "smart+":
            return mac_name in _SMARTPLUS_MAC_KB
        if architecture == "hydra":
            return _HYDRA_MAC_KB.get(mac_name) is not None
        return False

    def report(self, architecture: str, variant: str,
               mac_name: str) -> CodeSizeReport:
        """Return the size breakdown for one (architecture, variant, MAC)."""
        architecture = architecture.lower()
        variant = variant.lower()
        mac_name = mac_name.lower()
        if architecture not in self.ARCHITECTURES:
            raise ValueError(f"unknown architecture {architecture!r}")
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        if not self.supported(architecture, mac_name):
            raise ValueError(
                f"{architecture} is not built with MAC {mac_name!r}")

        components: Dict[str, float] = {}
        if architecture == "smart+":
            components["mac_primitive"] = _SMARTPLUS_MAC_KB[mac_name]
            components["measurement_core"] = \
                _SMARTPLUS_COMPONENTS_KB["measurement_core"]
            if variant == "on-demand":
                components["request_auth"] = \
                    _SMARTPLUS_COMPONENTS_KB["request_auth"]
            else:
                components["timer_hook"] = _SMARTPLUS_COMPONENTS_KB["timer_hook"]
        else:
            components["sel4_libraries"] = _HYDRA_COMPONENTS_KB["sel4_libraries"]
            components["network_stack"] = _HYDRA_COMPONENTS_KB["network_stack"]
            components["pratt_core"] = _HYDRA_COMPONENTS_KB["pratt_core"]
            mac_kb = _HYDRA_MAC_KB[mac_name]
            assert mac_kb is not None  # guarded by supported()
            components["mac_primitive"] = mac_kb
            if variant == "on-demand":
                components["request_auth"] = _HYDRA_COMPONENTS_KB["request_auth"]
            else:
                components["timer_driver"] = _HYDRA_COMPONENTS_KB["timer_driver"]
        return CodeSizeReport(architecture=architecture, variant=variant,
                              mac_name=mac_name, components=components)

    def rom_size_kb(self, architecture: str, variant: str,
                    mac_name: str) -> float:
        """Total executable size in KB (one Table 1 cell)."""
        return self.report(architecture, variant, mac_name).total_kb

    def table1(self) -> Dict[str, Dict[str, Optional[float]]]:
        """The full Table 1 as nested dictionaries.

        Outer key: MAC name; inner keys: ``"smart+/on-demand"``,
        ``"smart+/erasmus"``, ``"hydra/on-demand"``, ``"hydra/erasmus"``.
        Unsupported combinations map to ``None`` (the paper's "-").
        """
        table: Dict[str, Dict[str, Optional[float]]] = {}
        for mac_name in ("hmac-sha1", "hmac-sha256", "keyed-blake2s"):
            row: Dict[str, Optional[float]] = {}
            for architecture in self.ARCHITECTURES:
                for variant in self.VARIANTS:
                    key = f"{architecture}/{variant}"
                    if self.supported(architecture, mac_name):
                        row[key] = self.rom_size_kb(architecture, variant,
                                                    mac_name)
                    else:
                        row[key] = None
            table[mac_name] = row
        return table
