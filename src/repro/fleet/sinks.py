"""Report sinks: where a fleet collection streams its verification output.

A 1,000-device round produces 1,000 :class:`VerificationReport`s;
rather than returning a list and letting every experiment hand-format
it, the :class:`repro.fleet.FleetVerifier` streams each finished report
to any number of sinks:

* :class:`MemorySink` — keep reports in a list (tests, small fleets);
* :class:`JsonlSink` — append one JSON object per report to a file, the
  shape log-pipeline ingestion expects;
* :class:`FleetHealthSink` — fold reports into a running
  :class:`FleetHealth` aggregate without retaining them.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Mapping, Optional, Set, Union

from repro.core.verification import DeviceStatus, VerificationReport


class ReportSink(abc.ABC):
    """Consumer of per-device verification reports."""

    #: Set by close() implementations that release resources; a failed
    #: collection round prunes closed sinks from its verifier.
    closed = False

    @abc.abstractmethod
    def emit(self, report: VerificationReport) -> None:
        """Accept one finished report."""

    def flush(self) -> None:
        """Push buffered reports to the backing medium (default: no-op)."""

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""

    def __enter__(self) -> "ReportSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SinkFanout:
    """Lifecycle guard for the sinks a collection round streams into.

    Used as a context manager around one round: on a clean exit every
    sink is flushed, so a finished round is always fully on disk; if
    the round body raises (a transport failing mid-round, say) the
    sinks are *closed* instead, so the reports verified before the
    failure still reach their files rather than dying in buffers when
    the exception unwinds the process.
    """

    def __init__(self, sinks: Iterable["ReportSink"]) -> None:
        self.sinks: List[ReportSink] = list(sinks)

    def flush(self) -> None:
        """Flush every sink."""
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Close every sink; the first failure propagates after all run."""
        first_error: Optional[Exception] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "SinkFanout":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            # A close failure here means buffered reports were lost —
            # worse than the round's own error, so it must not be
            # silent; the round's exception stays chained as
            # __context__ of the close error.
            self.close()
            return False
        self.flush()
        return False


class MemorySink(ReportSink):
    """Retain every report in order of arrival."""

    def __init__(self) -> None:
        self.reports: List[VerificationReport] = []

    def emit(self, report: VerificationReport) -> None:
        self.reports.append(report)

    def for_device(self, device_id: str) -> List[VerificationReport]:
        """All retained reports for one device."""
        return [report for report in self.reports
                if report.device_id == device_id]


def report_to_row(report: VerificationReport) -> Dict[str, object]:
    """Flatten a report into the JSON-friendly row the JSONL sink writes.

    This is the same canonical row
    :meth:`repro.core.verification.VerificationReport.to_row` produces
    (and :meth:`~repro.core.verification.VerificationReport.from_row`
    reverses) — the :mod:`repro.store` journals persist identical rows.
    """
    return report.to_row()


class JsonlSink(ReportSink):
    """Append one JSON line per report to a file or file-like object.

    ``flush_every`` bounds data loss on long rounds: the stream is
    flushed to the OS after every ``flush_every`` reports (``None``
    keeps the historical flush-on-close-only behaviour).
    """

    def __init__(self, target: Union[str, IO[str]],
                 flush_every: Optional[int] = None) -> None:
        if flush_every is not None and flush_every <= 0:
            raise ValueError("flush_every must be positive")
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.flush_every = flush_every
        self.lines_written = 0
        self.closed = False

    def emit(self, report: VerificationReport) -> None:
        if self.closed:
            raise ValueError(
                "JsonlSink is closed (a failed collection round closes "
                "its sinks); attach a fresh sink before collecting again")
        json.dump(report_to_row(report), self._stream, sort_keys=True)
        self._stream.write("\n")
        self.lines_written += 1
        if self.flush_every is not None and \
                self.lines_written % self.flush_every == 0:
            self._stream.flush()

    def flush(self) -> None:
        if not self.closed:
            self._stream.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


@dataclass
class FleetHealth:
    """Aggregate health of a fleet across one or more collection rounds."""

    reports_total: int = 0
    measurements_verified: int = 0
    status_counts: Dict[str, int] = field(
        default_factory=lambda: {status.value: 0 for status in DeviceStatus})
    devices_seen: Set[str] = field(default_factory=set)
    flagged_devices: Set[str] = field(default_factory=set)
    missing_intervals_total: int = 0
    _freshness_sum: float = 0.0
    _freshness_count: int = 0

    def record(self, report: VerificationReport) -> None:
        """Fold one report into the aggregate."""
        self.reports_total += 1
        self.measurements_verified += report.measurement_count
        self.status_counts[report.status.value] += 1
        self.devices_seen.add(report.device_id)
        if report.detected_infection():
            self.flagged_devices.add(report.device_id)
        self.missing_intervals_total += report.missing_intervals
        if report.freshness is not None:
            self._freshness_sum += report.freshness
            self._freshness_count += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def devices_total(self) -> int:
        """Number of distinct devices that produced at least one report."""
        return len(self.devices_seen)

    @property
    def healthy_fraction(self) -> float:
        """Fraction of reports that verified fully healthy."""
        if not self.reports_total:
            return 0.0
        return self.status_counts[DeviceStatus.HEALTHY.value] / \
            self.reports_total

    @property
    def mean_freshness(self) -> Optional[float]:
        """Mean freshness over reports that carried measurements."""
        if not self._freshness_count:
            return None
        return self._freshness_sum / self._freshness_count

    def count(self, status: DeviceStatus) -> int:
        """Number of reports with the given status."""
        return self.status_counts[status.value]

    # ------------------------------------------------------------------
    # Persistence codec
    # ------------------------------------------------------------------
    def to_row(self) -> Dict[str, object]:
        """Flatten into a stable, JSON-friendly row.

        Sets are emitted sorted so equal aggregates always serialize to
        identical rows — the property :class:`repro.store.StateStore`
        checkpoints rely on.
        """
        return {
            "reports_total": self.reports_total,
            "measurements_verified": self.measurements_verified,
            "status_counts": dict(sorted(self.status_counts.items())),
            "devices_seen": sorted(self.devices_seen),
            "flagged_devices": sorted(self.flagged_devices),
            "missing_intervals_total": self.missing_intervals_total,
            "freshness_sum": self._freshness_sum,
            "freshness_count": self._freshness_count,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "FleetHealth":
        """Rebuild an aggregate from its persisted row."""
        counts = {status.value: 0 for status in DeviceStatus}
        counts.update({str(status): int(count) for status, count
                       in dict(row.get("status_counts", {})).items()})
        return cls(
            reports_total=int(row.get("reports_total", 0)),
            measurements_verified=int(row.get("measurements_verified", 0)),
            status_counts=counts,
            devices_seen=set(row.get("devices_seen", ())),
            flagged_devices=set(row.get("flagged_devices", ())),
            missing_intervals_total=int(
                row.get("missing_intervals_total", 0)),
            _freshness_sum=float(row.get("freshness_sum", 0.0)),
            _freshness_count=int(row.get("freshness_count", 0)))

    def summary(self) -> str:
        """Multi-line, human-readable fleet-health digest."""
        freshness = "n/a" if self.mean_freshness is None \
            else f"{self.mean_freshness:.1f}s"
        lines = [
            f"fleet health: {self.devices_total} device(s), "
            f"{self.reports_total} report(s), "
            f"{self.measurements_verified} measurement(s) verified",
            "  status: " + ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.status_counts.items())
                if count),
            f"  healthy fraction: {self.healthy_fraction:.1%}, "
            f"mean freshness: {freshness}, "
            f"missing intervals: {self.missing_intervals_total}",
        ]
        if self.flagged_devices:
            flagged = ", ".join(sorted(self.flagged_devices)[:8])
            if len(self.flagged_devices) > 8:
                flagged += ", ..."
            lines.append(f"  flagged devices: {flagged}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"FleetHealth(devices={self.devices_total}, "
                f"reports={self.reports_total}, "
                f"healthy_fraction={self.healthy_fraction:.3f}, "
                f"flagged={len(self.flagged_devices)})")


class FleetHealthSink(ReportSink):
    """Fold reports into a :class:`FleetHealth` without retaining them."""

    def __init__(self, health: Optional[FleetHealth] = None) -> None:
        self.health = health if health is not None else FleetHealth()

    def emit(self, report: VerificationReport) -> None:
        self.health.record(report)
