"""Transports: how collection requests reach provers and responses return.

Every transport speaks the canonical wire encoding from
:mod:`repro.core.protocol`, so the *same* fleet-collection code runs:

* in-process (:class:`InProcessTransport`) — direct request/response
  exchange for fast experiments and unit tests;
* over the simulated packet network (:class:`SimulatedNetworkTransport`)
  — every device hangs off the verifier in a star of lossy, latency-
  bearing UDP links, delivery driven by the event engine;
* over a swarm relay tree (:class:`SwarmRelayTransport`) — devices
  forward each other's traffic towards a gateway, LISA-α style
  (Section 6), so most devices are several hops from the verifier.

The contract is deliberately tiny: ``register`` a provisioned device,
then ``exchange_many`` a batch of encoded requests for encoded
responses (``None`` marks a device that never answered — lost packets,
partitions, or a dead device).
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional

from repro.core.protocol import (
    CollectRequest,
    OnDemandRequest,
    ProtocolDecodeError,
    decode_request,
)
from repro.core.prover import ErasmusProver
from repro.fleet.profiles import ProvisionedDevice
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.sim.engine import SimulationEngine


def serve_request(prover: ErasmusProver, payload: bytes,
                  time: Optional[float] = None) -> bytes:
    """Decode one request, serve it on the prover, encode the response.

    This is the prover-side dispatch shared by every transport: plain
    collections go to :meth:`ErasmusProver.handle_collect`, ERASMUS+OD
    requests to :meth:`ErasmusProver.handle_ondemand`.
    """
    request = decode_request(payload)
    if isinstance(request, CollectRequest):
        return prover.handle_collect(request).encode()
    assert isinstance(request, OnDemandRequest)
    return prover.handle_ondemand(request, time=time).encode()


class Transport(abc.ABC):
    """Bidirectional request/response channel between verifier and fleet."""

    #: Short name used in experiment tables and traces.
    name = "abstract"

    @abc.abstractmethod
    def register(self, device: ProvisionedDevice) -> None:
        """Attach one provisioned device to this transport."""

    @abc.abstractmethod
    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        """Send one encoded request; return the encoded response or ``None``."""

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        """Exchange a batch of requests (default: sequential round-trips).

        Transports with real in-flight concurrency (the packet network)
        override this to launch every request before waiting for any
        response.
        """
        return {device_id: self.exchange(device_id, payload)
                for device_id, payload in requests.items()}


class InProcessTransport(Transport):
    """Zero-latency transport calling provers directly (through the codec).

    Requests and responses still pass through the canonical byte
    encoding, so anything that works here works unchanged over the
    simulated network.
    """

    name = "in-process"

    def __init__(self, engine: Optional[SimulationEngine] = None) -> None:
        self.engine = engine
        self._provers: Dict[str, ErasmusProver] = {}

    def register(self, device: ProvisionedDevice) -> None:
        if device.device_id in self._provers:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self._provers[device.device_id] = device.prover

    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        try:
            prover = self._provers[device_id]
        except KeyError as exc:
            raise KeyError(f"device {device_id!r} is not registered") from exc
        time = self.engine.now if self.engine is not None else None
        try:
            return serve_request(prover, payload, time=time)
        except ProtocolDecodeError:
            # A prover keeps silence on garbage rather than crashing the
            # collection round; the verifier reports the device NO_DATA.
            return None


#: Node name the verifier end of a networked transport uses.
VERIFIER_NODE = "verifier"


class SimulatedNetworkTransport(Transport):
    """Collections over the :mod:`repro.net` packet network.

    Devices are joined to the verifier in a star topology of UDP-style
    links; requests and responses travel as packets through the event
    engine, accumulating latency, serialization delay and (optionally)
    loss.  ``exchange_many`` launches the whole batch before draining
    the engine, so per-device round-trips overlap exactly as they would
    on a real network.
    """

    name = "simulated-network"

    def __init__(self, engine: SimulationEngine, latency: float = 0.005,
                 bandwidth_bps: float = 10_000_000.0,
                 loss_probability: float = 0.0,
                 round_timeout: float = 30.0, seed: int = 0) -> None:
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.engine = engine
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_probability = loss_probability
        self.round_timeout = round_timeout
        self.network = Network(engine, seed=seed)
        self.network.add_node(
            NetworkNode(VERIFIER_NODE, on_receive=self._verifier_receives))
        self._provers: Dict[str, ErasmusProver] = {}
        self._responses: Dict[str, bytes] = {}
        # Monotonic round counter carried in the packet kind so that a
        # response still in flight when a round times out cannot be
        # mistaken for an answer to the *next* round's request.
        self._round = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _attachment_point(self, device_id: str) -> str:
        """Node the new device links to (the verifier, in a star)."""
        del device_id
        return VERIFIER_NODE

    def register(self, device: ProvisionedDevice) -> None:
        device_id = device.device_id
        if device_id in self._provers:
            raise ValueError(f"duplicate device id {device_id!r}")
        self._provers[device_id] = device.prover
        self.network.add_node(
            NetworkNode(device_id, on_receive=self._prover_receives))
        self.network.add_link(Link(
            self._attachment_point(device_id), device_id,
            latency=self.latency, bandwidth_bps=self.bandwidth_bps,
            loss_probability=self.loss_probability))

    # ------------------------------------------------------------------
    # Packet handlers
    # ------------------------------------------------------------------
    def _prover_receives(self, node: NetworkNode, packet, time: float) -> None:
        prover = self._provers[node.name]
        try:
            response = serve_request(prover, packet.payload, time=time)
        except ProtocolDecodeError:
            return
        # Echo the request's round tag so the verifier can discard
        # responses that arrive after their round already timed out.
        round_tag = packet.kind.rpartition("/")[2]
        node.send(VERIFIER_NODE, response,
                  kind=f"attestation-response/{round_tag}")

    def _verifier_receives(self, _node: NetworkNode, packet,
                           _time: float) -> None:
        if packet.kind.rpartition("/")[2] != str(self._round):
            return  # stale response from a timed-out earlier round
        self._responses[packet.source] = packet.payload

    # ------------------------------------------------------------------
    # Exchange
    # ------------------------------------------------------------------
    def exchange(self, device_id: str, payload: bytes) -> Optional[bytes]:
        return self.exchange_many({device_id: payload})[device_id]

    def exchange_many(self, requests: Mapping[str, bytes]
                      ) -> Dict[str, Optional[bytes]]:
        for device_id in requests:
            if device_id not in self._provers:
                raise KeyError(f"device {device_id!r} is not registered")
        self._responses.clear()
        self._round += 1
        verifier_node = self.network.node(VERIFIER_NODE)
        for device_id, payload in requests.items():
            verifier_node.send(device_id, payload,
                               kind=f"attestation-request/{self._round}")

        # Drain the engine event by event so the virtual clock stops at
        # the last delivery instead of jumping to the timeout.  Once no
        # packet is in flight any missing response can never arrive
        # (lost packets are not retransmitted), so stop immediately
        # rather than burning the whole timeout stepping unrelated
        # events such as prover self-measurements.  Only this round's
        # devices can enter _responses (round-tagged), so a length
        # check decides completion in O(1) per event.
        deadline = self.engine.now + self.round_timeout
        while len(self._responses) < len(requests) and \
                self.network.in_flight_packets > 0:
            next_time = self.engine.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.engine.step()
        return {device_id: self._responses.get(device_id)
                for device_id in requests}


class SwarmRelayTransport(SimulatedNetworkTransport):
    """Collections relayed hop by hop through a swarm tree (Section 6).

    Devices attach to the gateway in a ``fanout``-ary tree in
    registration order; packets to and from deep devices are forwarded
    by the intermediate devices.  Because an ERASMUS collection is just
    a buffer read, the extra hops add only network delay — the property
    that keeps collections viable in swarms where on-demand attestation
    already fails.
    """

    name = "swarm-relay"

    def __init__(self, engine: SimulationEngine, fanout: int = 4,
                 hop_latency: float = 0.01,
                 bandwidth_bps: float = 10_000_000.0,
                 loss_probability: float = 0.0,
                 round_timeout: float = 60.0, seed: int = 0) -> None:
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        super().__init__(engine, latency=hop_latency,
                         bandwidth_bps=bandwidth_bps,
                         loss_probability=loss_probability,
                         round_timeout=round_timeout, seed=seed)
        self.fanout = fanout
        self._ordered_ids: list[str] = []

    def _attachment_point(self, device_id: str) -> str:
        # The first `fanout` devices parent to the gateway; device i
        # then parents to device (i // fanout) - 1, giving every relay
        # exactly `fanout` children.
        index = len(self._ordered_ids)
        self._ordered_ids.append(device_id)
        if index < self.fanout:
            return VERIFIER_NODE
        return self._ordered_ids[(index // self.fanout) - 1]

    def depth_of(self, device_id: str) -> int:
        """Number of hops between the device and the gateway."""
        path = self.network.path(VERIFIER_NODE, device_id)
        if path is None:
            raise KeyError(f"device {device_id!r} is not reachable")
        return len(path) - 1
