"""Measurement tampering and clock-rewind adversaries.

Section 3.2/3.4: measurements live in insecure storage, so malware may
modify, reorder or delete them — but it cannot *forge* them without
``K``, so any tampering is detected at the next collection.  Similarly,
the clock-rewind attack of Section 3.4 is only possible if the RROC
were writable, which it is not.  These adversaries exist so tests and
experiments can demonstrate both facts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.measurement import Measurement
from repro.core.storage import MeasurementStore
from repro.hw.clock import ClockTamperError, ReliableClock


class TamperingMalware:
    """Malware with full read/write access to the measurement buffer."""

    def __init__(self, store: MeasurementStore, seed: int = 0) -> None:
        self.store = store
        self._random = random.Random(seed)
        self.actions: List[str] = []

    def _slot_of(self, measurement: Measurement) -> Optional[int]:
        """Locate the slot currently holding a given record."""
        for slot in range(self.store.slots):
            stored = self.store.raw_slot(slot)
            if stored is not None and stored.timestamp == measurement.timestamp:
                return slot
        return None

    def delete_latest(self, count: int = 1) -> int:
        """Delete the ``count`` newest stored measurements.

        Returns the number actually deleted.  This models malware trying
        to erase the records that incriminate it.
        """
        victims = self.store.latest(count)
        deleted = 0
        for measurement in victims:
            slot = self._slot_of(measurement)
            if slot is not None:
                self.store.overwrite_slot(slot, None)
                deleted += 1
        self.actions.append(f"delete_latest({deleted})")
        return deleted

    def wipe_all(self) -> None:
        """Erase the whole buffer."""
        self.store.clear_all()
        self.actions.append("wipe_all")

    def corrupt_latest(self) -> Optional[Measurement]:
        """Flip bits in the digest of the newest measurement.

        The MAC is left untouched (it cannot be recomputed without
        ``K``), so the record will fail verification.
        """
        newest = self.store.newest()
        if newest is None:
            return None
        corrupted_digest = bytes(b ^ 0xFF for b in newest.digest)
        corrupted = Measurement(timestamp=newest.timestamp,
                                digest=corrupted_digest, tag=newest.tag,
                                duration=newest.duration)
        slot = self._slot_of(newest)
        if slot is None:
            return None
        self.store.overwrite_slot(slot, corrupted)
        self.actions.append("corrupt_latest")
        return corrupted

    def replay_old_measurement(self) -> Optional[Measurement]:
        """Copy an old (healthy-looking) record over the newest slot.

        The timestamps then no longer match the schedule / are
        duplicated, which the verifier flags.
        """
        measurements = self.store.all_measurements()
        if len(measurements) < 2:
            return None
        oldest, newest = measurements[0], measurements[-1]
        newest_slot = self._slot_of(newest)
        if newest_slot is None:
            return None
        self.store.overwrite_slot(newest_slot, oldest)
        self.actions.append("replay_old_measurement")
        return oldest

    def forge_measurement(self, timestamp: float, digest: bytes,
                          tag_length: int = 32) -> Measurement:
        """Fabricate a record with a random tag (a doomed forgery attempt)."""
        fake_tag = bytes(self._random.randrange(256) for _ in range(tag_length))
        forged = Measurement(timestamp=timestamp, digest=bytes(digest),
                             tag=fake_tag)
        self.store.store(forged)
        self.actions.append("forge_measurement")
        return forged

    def reorder(self) -> None:
        """Swap two random occupied slots."""
        occupied = [index for index in range(self.store.slots)
                    if self.store.raw_slot(index) is not None]
        if len(occupied) >= 2:
            first, second = self._random.sample(occupied, 2)
            self.store.swap_slots(first, second)
        self.actions.append("reorder")


@dataclass
class ClockRewindAttempt:
    """The Section 3.4 clock-rewind attack, attempted against a real RROC.

    The attack needs to reset the clock to an earlier value so that a
    measurement taken while malware was present can be silently
    replaced.  Against a hardware RROC the write simply has no effect
    (modelled as an exception), so ``blocked`` is always ``True``.
    """

    clock: ReliableClock
    target_time: float = 0.0
    blocked: Optional[bool] = None

    def execute(self) -> bool:
        """Attempt the rewind; returns ``True`` when the RROC blocked it."""
        try:
            self.clock.write(int(self.target_time * self.clock.frequency_hz))
        except ClockTamperError:
            self.blocked = True
            return True
        self.blocked = False
        return False
