"""Section 6 on real provers — fleet collections over a mobile swarm.

The cost-model sweep in :mod:`repro.experiments.swarm_mobility` argues
the Section 6 claim with :class:`~repro.swarm.device.SwarmDevice`
timings only.  This harness runs the real thing: fleets of provisioned
:class:`~repro.core.prover.ErasmusProver`\\ s collected over a
:class:`~repro.fleet.SwarmRelayTransport` whose relay topology is
rewired from a :class:`~repro.net.mobility.RandomWaypointMobility`
model before every round (and on a periodic timer while packets are in
flight), with the verifier pinned as a gateway inside the area.

Each speed contributes one fleet row (real provers, real packets, real
verification) plus — for comparability — the cost-model rows of the
on-demand protocols (SEDA, LISA-α) over the same mobility parameters.
Expected shape: the fleet collection's coverage tracks the gateway's
connected component (devices outside it at round time are lost, not
errors) and barely moves with speed, while the on-demand protocols'
coverage collapses because their instance duration is dominated by
every device's measurement computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fleet import DeviceProfile, Fleet, SwarmRelayTransport
from repro.net.mobility import RandomWaypointMobility
from repro.swarm.device import build_swarm
from repro.swarm.protocols import (
    LisaAlphaProtocol,
    SedaProtocol,
    SwarmRAProtocol,
)

DEFAULT_SPEEDS: Sequence[float] = (0.0, 2.0, 6.0)

#: Identifier the fleet rows carry in their ``protocol`` column.
FLEET_PROTOCOL = "erasmus-fleet"


def default_profile() -> DeviceProfile:
    """The SMART+ profile the mobile-fleet rows are measured with."""
    return DeviceProfile.smartplus(firmware=b"mobile-swarm-firmware",
                                   application_size=512,
                                   measurement_interval=60.0,
                                   collection_interval=300.0,
                                   buffer_slots=8)


def _fleet_row(speed: float, device_count: int, area_size: float,
               radio_range: float, seed: int, rounds: int,
               round_gap: float, hop_latency: float,
               rewire_interval: Optional[float],
               profile: Optional[DeviceProfile]) -> Dict[str, object]:
    """One speed's fleet collection: real provers over the mobile relay."""
    profile = profile if profile is not None else default_profile()
    names = [f"dev-{index:04d}" for index in range(device_count)]
    mobility = RandomWaypointMobility(names, area_size=area_size,
                                      radio_range=radio_range, speed=speed,
                                      seed=seed, link_latency=hop_latency)
    fleet = Fleet.provision(
        profile, device_count, master_secret=b"mobile-swarm-master-secret",
        transport=lambda engine: SwarmRelayTransport(
            engine, hop_latency=hop_latency, mobility=mobility,
            rewire_interval=rewire_interval))
    with fleet:
        fleet.run_until(profile.config.collection_interval)
        coverages: List[float] = []
        durations: List[float] = []
        connected: List[float] = []
        for round_index in range(rounds):
            if round_index:
                fleet.run_until(fleet.now + round_gap)
            started = fleet.now
            reports = fleet.collect_all(batch_size=device_count)
            stats = reports.stats
            coverages.append(stats.responses_received / stats.requests_sent)
            durations.append(fleet.now - started)
            connected.append(
                len(fleet.transport.reachable_ids()) / device_count)
        stale = fleet.transport.stale_responses_rejected
    return {
        "speed": speed,
        "protocol": FLEET_PROTOCOL,
        "kind": "fleet-provers",
        "coverage": sum(coverages) / len(coverages),
        "duration_s": sum(durations) / len(durations),
        "connected_coverage": sum(connected) / len(connected),
        "devices": device_count,
        "rounds": rounds,
        "stale_responses_rejected": stale,
    }


def _cost_model_rows(speed: float, device_count: int, area_size: float,
                     radio_range: float, seed: int, repetitions: int,
                     memory_bytes: int) -> List[Dict[str, object]]:
    """The on-demand comparison rows, same mobility parameters."""
    devices = build_swarm(device_count, memory_bytes=memory_bytes)
    names = [device.device_id for device in devices]
    protocols: List[SwarmRAProtocol] = [SedaProtocol(), LisaAlphaProtocol()]
    rows: List[Dict[str, object]] = []
    for protocol in protocols:
        coverages: List[float] = []
        durations: List[float] = []
        for repetition in range(repetitions):
            mobility = RandomWaypointMobility(
                names, area_size=area_size, radio_range=radio_range,
                speed=speed, seed=seed + repetition)
            result = protocol.run(devices, mobility, gateway=names[0])
            coverages.append(result.coverage)
            durations.append(result.duration)
        rows.append({
            "speed": speed,
            "protocol": protocol.name,
            "kind": "cost-model",
            "coverage": sum(coverages) / len(coverages),
            "duration_s": sum(durations) / len(durations),
            "connected_coverage": None,
            "devices": device_count,
            "rounds": repetitions,
            "stale_responses_rejected": 0,
        })
    return rows


def run(device_count: int = 40, speeds: Sequence[float] = DEFAULT_SPEEDS,
        area_size: float = 120.0, radio_range: float = 45.0, seed: int = 3,
        rounds: int = 3, round_gap: float = 30.0,
        hop_latency: float = 0.002, rewire_interval: Optional[float] = 0.05,
        profile: Optional[DeviceProfile] = None,
        include_cost_model: bool = True,
        memory_bytes: int = 10 * 1024) -> List[Dict[str, object]]:
    """Sweep device speed over real provisioned fleets.

    Per speed: provision ``device_count`` provers, let them self-measure
    to the collection horizon, then run ``rounds`` relay-collection
    rounds with ``round_gap`` seconds of mobility between them, the
    topology re-sampled before every round (and every
    ``rewire_interval`` seconds while responses are in flight).
    ``include_cost_model`` adds the SEDA / LISA-α cost-model rows from
    the same mobility parameters so the two result kinds land in one
    table.
    """
    rows: List[Dict[str, object]] = []
    for speed in speeds:
        rows.append(_fleet_row(speed, device_count, area_size, radio_range,
                               seed, rounds, round_gap, hop_latency,
                               rewire_interval, profile))
        if include_cost_model:
            rows.extend(_cost_model_rows(speed, device_count, area_size,
                                         radio_range, seed,
                                         repetitions=rounds,
                                         memory_bytes=memory_bytes))
    return rows


def coverage_by_protocol(rows: List[Dict[str, object]],
                         speed: float) -> Dict[str, float]:
    """Coverage of each protocol at one speed."""
    return {str(row["protocol"]): float(row["coverage"])
            for row in rows if row["speed"] == speed}


def connected_coverage_at(rows: List[Dict[str, object]],
                          speed: float) -> float:
    """The fleet row's gateway-connected fraction at one speed."""
    for row in rows:
        if row["speed"] == speed and row["protocol"] == FLEET_PROTOCOL:
            return float(row["connected_coverage"])
    raise KeyError(f"no fleet row at speed {speed}")


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the mobile-fleet sweep as a text table."""
    lines = ["Section 6 on real provers: relay collections vs mobility"]
    lines.append(f"{'speed (m/s)':>12}{'protocol':>16}{'kind':>14}"
                 f"{'coverage':>10}{'connected':>11}{'duration (s)':>14}")
    for row in rows:
        connected = row["connected_coverage"]
        connected_text = f"{connected:>11.2f}" if connected is not None \
            else f"{'-':>11}"
        lines.append(f"{row['speed']:>12.1f}{row['protocol']:>16}"
                     f"{row['kind']:>14}{row['coverage']:>10.2f}"
                     f"{connected_text}{row['duration_s']:>14.3f}")
    return "\n".join(lines)


def main() -> None:
    """Print the mobile-fleet sweep."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
