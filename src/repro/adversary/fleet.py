"""Fleet-native adversaries: the paper's threat model against a fleet.

The single-device classes in :mod:`repro.adversary.malware` /
:mod:`repro.adversary.tamper` drive one ``SecurityArchitecture``.  A
campaign is fleet-wide: it picks victims from the roster of
:class:`~repro.fleet.profiles.ProvisionedDevice`\\ s, schedules its
activity onto the fleet's shared :class:`~repro.sim.SimulationEngine`,
and records per-device ground-truth :class:`Infection` intervals that
the analysis layer matches against the verifier's
:class:`~repro.core.verification.VerificationReport` stream.

:class:`FleetAdversary` is the seam: deterministic victim selection
(per-device seeds derived as ``"{seed}/{device_id}"`` — string seeding
hashes with SHA-512, so the plan is identical across processes),
``deploy(engine, horizon)`` to schedule everything, and
``ground_truth()`` for the infection record.  The concrete adversaries
reuse the single-device classes underneath, one instance per victim,
so the legacy API keeps working unchanged.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.adversary.malware import Infection, MobileMalware, PersistentMalware
from repro.adversary.tamper import TamperingMalware
from repro.fleet.profiles import ProvisionedDevice
from repro.sim.engine import SimulationEngine

#: Default payload fleet adversaries implant when none is given.
DEFAULT_MALICIOUS_IMAGE = b"fleet-malware-payload-v1"

Roster = Union[Mapping[str, ProvisionedDevice], Iterable[ProvisionedDevice]]


def _as_roster(devices: Roster) -> Dict[str, ProvisionedDevice]:
    """Normalize any device collection into an id-ordered mapping."""
    if isinstance(devices, Mapping):
        return dict(devices)
    return {device.device_id: device for device in devices}


class FleetAdversary(abc.ABC):
    """One adversary acting across a whole provisioned fleet.

    Parameters
    ----------
    devices:
        The fleet roster — a mapping of device id to
        :class:`ProvisionedDevice` (e.g. what ``Fleet.devices()``
        yields) or any iterable of provisioned devices.
    victim_ids:
        Explicit victims.  Mutually exclusive with ``victim_fraction``.
    victim_fraction:
        Fraction of the roster to victimize (at least one device when
        positive), sampled deterministically from ``seed``.
    seed:
        Master seed; every per-victim random stream is derived from it
        and the device id, so the same roster and seed always produce
        the same campaign regardless of process or iteration order.
    """

    def __init__(self, devices: Roster, *,
                 victim_ids: Optional[Sequence[str]] = None,
                 victim_fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        self.devices = _as_roster(devices)
        if not self.devices:
            raise ValueError("a fleet adversary needs at least one device")
        if victim_ids is not None and victim_fraction is not None:
            raise ValueError(
                "pass either victim_ids or victim_fraction, not both")
        self.seed = seed
        roster = list(self.devices)
        if victim_ids is not None:
            unknown = [device_id for device_id in victim_ids
                       if device_id not in self.devices]
            if unknown:
                raise ValueError(
                    f"victim ids not in the fleet roster: {unknown}")
            self.victims: List[str] = list(victim_ids)
        else:
            fraction = 1.0 if victim_fraction is None else victim_fraction
            if not 0.0 < fraction <= 1.0:
                raise ValueError("victim_fraction must be in (0, 1]")
            count = max(1, round(fraction * len(roster)))
            rng = random.Random(f"{seed}/victims")
            self.victims = sorted(rng.sample(roster, count))
        self._deployed = False

    def _victim_rng(self, device_id: str) -> random.Random:
        """The victim's private random stream (process-stable)."""
        return random.Random(f"{self.seed}/{device_id}")

    def device(self, device_id: str) -> ProvisionedDevice:
        """Look up one roster device."""
        return self.devices[device_id]

    @abc.abstractmethod
    def deploy(self, engine: SimulationEngine, horizon: float) -> None:
        """Schedule the whole campaign onto the shared engine."""

    @abc.abstractmethod
    def ground_truth(self) -> Dict[str, List[Infection]]:
        """Per-device infection intervals, keyed by device id.

        Transient entries gain their ``end`` as the simulation runs;
        read this after the engine has drained the horizon.
        """

    def all_infections(self) -> List[Infection]:
        """Every ground-truth infection, in (device, start) order."""
        return [infection
                for device_id in sorted(self.ground_truth())
                for infection in self.ground_truth()[device_id]]

    def _require_undeployed(self) -> None:
        if self._deployed:
            raise RuntimeError(
                f"{type(self).__name__} was already deployed; build a new "
                f"adversary for a new campaign")
        self._deployed = True


class FleetMobileMalware(FleetAdversary):
    """Mobile-malware visits against each victim (Figure 1, infection 1).

    Visit arrivals per victim follow a Poisson process of rate
    ``arrival_rate``; each visit dwells either exactly ``dwell`` seconds
    (fixed-dwell campaigns, the Figure-1 sweep) or an exponential draw
    with mean ``mean_dwell``.  Visits never overlap, and a visit that
    would not finish before ``horizon`` is dropped rather than
    truncated, so every scheduled dwell is exactly what the detection
    analytics assume.
    """

    def __init__(self, devices: Roster, *,
                 arrival_rate: float,
                 dwell: Optional[float] = None,
                 mean_dwell: Optional[float] = None,
                 malicious_image: bytes = DEFAULT_MALICIOUS_IMAGE,
                 victim_ids: Optional[Sequence[str]] = None,
                 victim_fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        super().__init__(devices, victim_ids=victim_ids,
                         victim_fraction=victim_fraction, seed=seed)
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if (dwell is None) == (mean_dwell is None):
            raise ValueError("pass exactly one of dwell= or mean_dwell=")
        if dwell is not None and dwell <= 0:
            raise ValueError("dwell time must be positive")
        if mean_dwell is not None and mean_dwell <= 0:
            raise ValueError("mean dwell time must be positive")
        if not malicious_image:
            raise ValueError("the malicious image must be non-empty")
        self.arrival_rate = arrival_rate
        self.dwell = dwell
        self.mean_dwell = mean_dwell
        self.malicious_image = malicious_image
        self.malware: Dict[str, MobileMalware] = {}
        self.visits: Dict[str, List[tuple[float, float]]] = {}

    def _plan_visits(self, device_id: str,
                     horizon: float) -> List[tuple[float, float]]:
        rng = self._victim_rng(device_id)
        visits: List[tuple[float, float]] = []
        time = 0.0
        while True:
            time += rng.expovariate(self.arrival_rate)
            if time >= horizon:
                break
            dwell = self.dwell if self.dwell is not None \
                else rng.expovariate(1.0 / self.mean_dwell)
            if time + dwell > horizon:
                # Dropped, not truncated: a clipped dwell would skew
                # the dwell-vs-detection curve the campaign measures.
                time += dwell
                continue
            visits.append((time, dwell))
            time += dwell
        return visits

    def deploy(self, engine: SimulationEngine, horizon: float) -> None:
        self._require_undeployed()
        for device_id in self.victims:
            device = self.device(device_id)
            malware = MobileMalware(
                device.architecture, device_id,
                clean_image=device.profile.firmware,
                malicious_image=self.malicious_image)
            self.malware[device_id] = malware
            plan = self._plan_visits(device_id, horizon)
            self.visits[device_id] = plan
            for start, dwell in plan:
                malware.schedule_visit(engine, start, dwell)

    def ground_truth(self) -> Dict[str, List[Infection]]:
        return {device_id: list(malware.infections)
                for device_id, malware in self.malware.items()}


class FleetPersistentMalware(FleetAdversary):
    """One persistent infection per victim, arriving inside the horizon.

    Each victim is infected once at a time drawn uniformly from
    ``[0, arrival_window * horizon)`` (or at the fixed ``arrival_time``)
    and stays infected — the baseline every RA scheme detects, used to
    separate "missed because transient" from "missed at all".
    """

    def __init__(self, devices: Roster, *,
                 arrival_time: Optional[float] = None,
                 arrival_window: float = 0.5,
                 malicious_image: bytes = DEFAULT_MALICIOUS_IMAGE,
                 victim_ids: Optional[Sequence[str]] = None,
                 victim_fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        super().__init__(devices, victim_ids=victim_ids,
                         victim_fraction=victim_fraction, seed=seed)
        if not 0.0 < arrival_window <= 1.0:
            raise ValueError("arrival_window must be in (0, 1]")
        if arrival_time is not None and arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if not malicious_image:
            raise ValueError("the malicious image must be non-empty")
        self.arrival_time = arrival_time
        self.arrival_window = arrival_window
        self.malicious_image = malicious_image
        self.malware: Dict[str, PersistentMalware] = {}

    def deploy(self, engine: SimulationEngine, horizon: float) -> None:
        self._require_undeployed()
        for device_id in self.victims:
            device = self.device(device_id)
            malware = PersistentMalware(device.architecture, device_id,
                                        self.malicious_image)
            self.malware[device_id] = malware
            arrival = self.arrival_time if self.arrival_time is not None \
                else self._victim_rng(device_id).uniform(
                    0.0, self.arrival_window * horizon)
            malware.schedule(engine, arrival)

    def ground_truth(self) -> Dict[str, List[Infection]]:
        return {device_id: list(malware.infections)
                for device_id, malware in self.malware.items()}


class FleetTamperingMalware(FleetAdversary):
    """Per-victim tampering with the measurement buffer (Section 3.2).

    At each time in ``times`` every victim's buffer is attacked with
    ``action`` (any mutating :class:`TamperingMalware` method name:
    ``corrupt_latest``, ``delete_latest``, ``replay_old_measurement``,
    ``reorder``, ``wipe_all``).  Ground truth records one open-ended
    :class:`Infection` per tamper with an empty ``malicious_image`` —
    there is no implant on the device, only damaged evidence, which the
    verifier flags as ``TAMPERED`` at the next collection.
    """

    ACTIONS = ("corrupt_latest", "delete_latest", "replay_old_measurement",
               "reorder", "wipe_all")

    def __init__(self, devices: Roster, *,
                 times: Sequence[float],
                 action: str = "corrupt_latest",
                 victim_ids: Optional[Sequence[str]] = None,
                 victim_fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        super().__init__(devices, victim_ids=victim_ids,
                         victim_fraction=victim_fraction, seed=seed)
        if not times:
            raise ValueError("at least one tamper time is required")
        if any(time < 0 for time in times):
            raise ValueError("tamper times must be non-negative")
        if action not in self.ACTIONS:
            raise ValueError(f"unknown tamper action {action!r}; "
                             f"known: {', '.join(self.ACTIONS)}")
        self.times = sorted(times)
        self.action = action
        self.tamperers: Dict[str, TamperingMalware] = {}
        self._infections: Dict[str, List[Infection]] = {}

    def _tamper(self, device_id: str, time: float) -> None:
        getattr(self.tamperers[device_id], self.action)()
        self._infections.setdefault(device_id, []).append(
            Infection(device_id=device_id, start=time, malicious_image=b""))

    def deploy(self, engine: SimulationEngine, horizon: float) -> None:
        self._require_undeployed()
        for device_id in self.victims:
            device = self.device(device_id)
            self.tamperers[device_id] = TamperingMalware(
                device.prover.store,
                seed=self._victim_rng(device_id).randrange(2 ** 31))
            for time in self.times:
                if time > horizon:
                    continue
                engine.schedule(
                    time,
                    lambda _event, d=device_id: self._tamper(d, engine.now))

    def ground_truth(self) -> Dict[str, List[Infection]]:
        return {device_id: list(infections)
                for device_id, infections in self._infections.items()}


class FleetScheduleAwareMalware(FleetAdversary):
    """Schedule-aware mobile malware across the fleet (Section 3.5).

    Each victim's malware watches the device's externally observable
    measurement activity (via the prover's measurement listeners) and
    enters immediately after a measurement completes — the optimal
    entry point under any schedule — staying for ``dwell`` seconds.
    Against a regular schedule with ``dwell < T_M`` it always evades;
    against irregular CSPRNG intervals the next measurement time is
    unpredictable and short draws catch it.  Crucially, the adversary
    never touches the prover's scheduler: consuming the live CSPRNG
    stream would desynchronize the device's actual schedule.
    """

    #: Gap between an observed measurement and the infection landing.
    ENTRY_DELAY = 1e-6

    def __init__(self, devices: Roster, *,
                 dwell: float,
                 cooldown: float = 0.0,
                 malicious_image: bytes = DEFAULT_MALICIOUS_IMAGE,
                 victim_ids: Optional[Sequence[str]] = None,
                 victim_fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        super().__init__(devices, victim_ids=victim_ids,
                         victim_fraction=victim_fraction, seed=seed)
        if dwell <= 0:
            raise ValueError("dwell time must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.dwell = dwell
        self.cooldown = cooldown
        self.malicious_image = malicious_image
        self.malware: Dict[str, MobileMalware] = {}
        self._next_entry_allowed: Dict[str, float] = {}
        self._horizon = 0.0
        self._engine: Optional[SimulationEngine] = None

    def _on_measurement(self, device_id: str, time: float,
                        measurement: object) -> None:
        del measurement  # observed activity matters, not its outcome
        engine = self._engine
        malware = self.malware[device_id]
        if engine is None or malware.currently_active:
            return
        entry = time + self.ENTRY_DELAY
        if entry < self._next_entry_allowed[device_id]:
            return
        if entry + self.dwell > self._horizon:
            return
        self._next_entry_allowed[device_id] = entry + self.dwell \
            + self.cooldown
        malware.schedule_visit(engine, entry, self.dwell)

    def deploy(self, engine: SimulationEngine, horizon: float) -> None:
        self._require_undeployed()
        self._engine = engine
        self._horizon = horizon
        for device_id in self.victims:
            device = self.device(device_id)
            self.malware[device_id] = MobileMalware(
                device.architecture, device_id,
                clean_image=device.profile.firmware,
                malicious_image=self.malicious_image)
            self._next_entry_allowed[device_id] = 0.0
            device.prover.measurement_listeners.append(
                lambda d, t, m, device_id=device_id:
                self._on_measurement(device_id, t, m))

    def ground_truth(self) -> Dict[str, List[Infection]]:
        return {device_id: list(malware.infections)
                for device_id, malware in self.malware.items()}
