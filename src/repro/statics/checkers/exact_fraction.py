"""Rule ``exact-fraction``: health/freshness math stays rational.

:class:`repro.fleet.sinks.FleetHealth` accumulates freshness as an
exact :class:`~fractions.Fraction` so that merging per-shard (or
per-process) aggregates is associative — the sharded twin serializes
byte-identically to the single verifier.  The SLO rules mirror the
same accumulator so streaming verdicts equal post-hoc ones.  Float
creeping into those paths breaks the byte-identity in the last ulp,
and float *thresholds* are subtly worse: ``Fraction(0.07)`` is the
binary float (0.070000000000000006938893903907…), not the decimal the
operator wrote — the repo's convention (see ``CoverageRule``) is
``Fraction(str(x))`` at the decimal boundary.

Three patterns are flagged anywhere in the tree:

* ``Fraction(x)`` where ``x`` is a threshold-named variable
  (``max_*`` / ``min_*`` / ``*_seconds`` / ``*_fraction`` /
  ``*_threshold`` / ``*_budget``) — wrap in ``str(...)``;
* ``+=`` / ``-=`` into a ``*_sum`` accumulator from an expression
  containing a float literal or a bare ``float(...)`` call;
* multiplying a fraction/threshold-named value by a count-named value
  (``min_fraction * expected_devices``) — compare
  ``Fraction(attested, expected) < Fraction(str(min_fraction))``
  instead of materializing a float target.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.statics.engine import (
    Checker, FileContext, Finding, split_name, terminal_name,
)

_THRESHOLD_SUFFIXES = ("_seconds", "_fraction", "_threshold", "_budget")
_THRESHOLD_PREFIXES = ("min_", "max_")
_COUNT_PARTS = {"expected", "count", "total", "devices", "n"}


def _threshold_name(node: ast.AST) -> Optional[str]:
    name = terminal_name(node)
    if name is None:
        return None
    lowered = name.lower()
    if lowered.endswith(_THRESHOLD_SUFFIXES) \
            or lowered.startswith(_THRESHOLD_PREFIXES):
        return name
    return None


def _fractionish_name(node: ast.AST) -> Optional[str]:
    name = _threshold_name(node)
    if name is not None:
        return name
    name = terminal_name(node)
    if name is not None and "fraction" in split_name(name):
        return name
    return None


def _countish_name(node: ast.AST) -> Optional[str]:
    name = terminal_name(node)
    if name is None:
        return None
    if _COUNT_PARTS & set(split_name(name)):
        return name
    return None


def _contains_float(node: ast.AST) -> bool:
    """Does the expression contain a float literal or float() call?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value,
                                                          float):
            return True
        if isinstance(child, ast.Call) and \
                isinstance(child.func, ast.Name) and \
                child.func.id == "float":
            return True
    return False


class ExactFractionChecker(Checker):
    rule = "exact-fraction"
    description = ("flags float arithmetic and float() thresholds on "
                   "Fraction-exact health/freshness merge paths")
    invariant = ("FleetHealth freshness and SLO accumulators stay exact "
                 "Fraction until the encode boundary, so shard/process "
                 "merges are byte-identical and thresholds mean the "
                 "decimal the operator wrote")
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and terminal_name(node.func) == "Fraction" \
                    and len(node.args) == 1 and not node.keywords:
                name = _threshold_name(node.args[0])
                if name is not None:
                    yield ctx.finding(
                        self.rule, node,
                        f"Fraction({name}) embeds the binary float, not "
                        f"the decimal written in config; use "
                        f"Fraction(str({name}))")
                continue
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                target = terminal_name(node.target)
                if target is not None \
                        and "sum" in split_name(target) \
                        and _contains_float(node.value):
                    yield ctx.finding(
                        self.rule, node,
                        f"float value folded into exact accumulator "
                        f"{target!r}; convert via Fraction(...) first")
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                          ast.Mult):
                for left, right in ((node.left, node.right),
                                    (node.right, node.left)):
                    fraction = _fractionish_name(left)
                    count = _countish_name(right)
                    if fraction is not None and count is not None:
                        yield ctx.finding(
                            self.rule, node,
                            f"float target {fraction} * {count} is "
                            f"off-by-one-device near thresholds; "
                            f"compare Fraction({count.split('.')[-1]}, "
                            f"total) against Fraction(str({fraction})) "
                            f"instead")
                        break
