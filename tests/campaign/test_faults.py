"""Tests for the campaign fault injectors (pure wrappers)."""

import pytest

from repro.campaign import CrashOnceStore, PartitionInjector
from repro.core.verification import DeviceStatus
from repro.fleet import Fleet, FleetVerifier, InProcessTransport
from repro.sim import SimulationEngine
from repro.store import MemoryStore, StoreError
from tests.fleet.helpers import small_profile

SECRET = b"campaign-fault-master-secret"


def provision(count=4, engine=None, **overrides):
    engine = engine if engine is not None else SimulationEngine()
    return Fleet.provision(small_profile(b"fault-firmware"), count,
                           master_secret=SECRET, engine=engine, **overrides)


class TestPartitionInjector:
    def test_drops_only_cut_devices_inside_windows(self):
        engine = SimulationEngine()
        transport = PartitionInjector(InProcessTransport(engine),
                                      windows=[(50.0, 70.0)],
                                      fraction=0.5, seed=1)
        with provision(count=8, engine=engine,
                       transport=transport) as fleet:
            cut = {d for d in fleet.device_ids() if transport.is_cut(d)}
            assert cut and cut < set(fleet.device_ids())

            fleet.run_until(60.0)
            assert transport.partition_active()
            reports = fleet.collect_all()
            missing = {r.device_id for r in reports
                       if r.status is DeviceStatus.NO_DATA}
            assert missing == cut
            assert transport.dropped_exchanges == len(cut)

            fleet.run_until(120.0)
            assert not transport.partition_active()
            reports = fleet.collect_all()
            assert all(r.status is DeviceStatus.HEALTHY for r in reports)
            assert transport.dropped_exchanges == len(cut)

    def test_cut_set_is_deterministic(self):
        engine = SimulationEngine()
        first = PartitionInjector(InProcessTransport(engine),
                                  windows=[(0.0, 1.0)], fraction=0.4, seed=9)
        second = PartitionInjector(InProcessTransport(engine),
                                   windows=[(0.0, 1.0)], fraction=0.4,
                                   seed=9)
        names = [f"dev-{i:04d}" for i in range(20)]
        assert [first.is_cut(n) for n in names] == \
            [second.is_cut(n) for n in names]

    def test_passthrough_attributes(self):
        engine = SimulationEngine()
        inner = InProcessTransport(engine)
        wrapped = PartitionInjector(inner, windows=[(0.0, 1.0)])
        assert wrapped.engine is engine
        assert "in-process" in wrapped.name
        assert wrapped.concurrent_collections == \
            inner.concurrent_collections

    def test_invalid_parameters_rejected(self):
        inner = InProcessTransport(SimulationEngine())
        with pytest.raises(ValueError):
            PartitionInjector(inner, windows=[(5.0, 2.0)])
        with pytest.raises(ValueError):
            PartitionInjector(inner, windows=[(0.0, 1.0)], fraction=2.0)


class TestCrashOnceStore:
    def test_crashes_exactly_once_then_recovers(self):
        engine = SimulationEngine()
        store = CrashOnceStore(MemoryStore(), crash_after_reports=6)
        with provision(engine=engine, store=store) as fleet:
            fleet.run_until(60.0)
            fleet.collect_all()  # 4 reports journaled
            assert store.reports_appended == 4
            fleet.run_until(120.0)
            with pytest.raises(StoreError, match="injected store crash"):
                fleet.collect_all()  # dies on the 7th append
            assert store.crashed

            # The PR-3 restart drill: resume from the crashed store.
            fleet.verifier = FleetVerifier.restore(
                small_profile(b"fault-firmware").config, store)
            reports = fleet.collect_all()
            assert all(r.status is DeviceStatus.HEALTHY for r in reports)
            assert store.reports_appended >= 10

    def test_journal_matches_successful_appends(self):
        inner = MemoryStore()
        store = CrashOnceStore(inner, crash_after_reports=2)
        engine = SimulationEngine()
        with provision(engine=engine, store=store) as fleet:
            fleet.run_until(60.0)
            with pytest.raises(StoreError):
                fleet.collect_all()
            device_ids = fleet.device_ids()
            journaled = sum(
                len(inner.device_history(d)) for d in device_ids)
            assert journaled == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CrashOnceStore(MemoryStore(), crash_after_reports=-1)
