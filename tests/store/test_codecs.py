"""Property tests: the persistence codecs round-trip exactly.

The stores persist three record types — :class:`Enrollment`,
:class:`VerificationReport` and :class:`FleetHealth` — through their
``to_row`` / ``from_row`` codecs.  Restart recovery replays those rows,
so the codecs must survive arbitrary device ids (including non-ASCII),
every status, missing digests/freshness and a JSON round trip without
losing a bit.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measurement import Measurement
from repro.core.verification import (
    DeviceStatus,
    Enrollment,
    MeasurementVerdict,
    VerificationReport,
)
from repro.fleet.sinks import FleetHealth

device_ids = st.text(min_size=1, max_size=24)
finite_floats = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                          allow_infinity=False)


def jsonify(row):
    """A JSON wire round trip — what every backend actually persists."""
    return json.loads(json.dumps(row, sort_keys=True))


# ----------------------------------------------------------------------
# Enrollment
# ----------------------------------------------------------------------
enrollments = st.builds(
    Enrollment.create,
    device_id=device_ids,
    key=st.binary(min_size=1, max_size=32),
    healthy_digests=st.sets(st.binary(min_size=0, max_size=32),
                            max_size=5),
    last_seen=st.one_of(st.none(), finite_floats))


@settings(max_examples=60, deadline=None)
@given(enrollments)
def test_enrollment_row_round_trip(enrollment):
    row = enrollment.to_row()
    assert Enrollment.from_row(jsonify(row)) == enrollment
    # Equal enrollments serialize identically (digest set is sorted).
    assert Enrollment.from_row(row).to_row() == row


@settings(max_examples=30, deadline=None)
@given(enrollments, finite_floats)
def test_enrollment_advance_survives_round_trip(enrollment, last_seen):
    advanced = enrollment.advanced(last_seen)
    assert Enrollment.from_row(jsonify(advanced.to_row())) == advanced


# ----------------------------------------------------------------------
# VerificationReport
# ----------------------------------------------------------------------
measurements = st.builds(
    Measurement,
    timestamp=finite_floats,
    digest=st.binary(min_size=0, max_size=32),
    tag=st.binary(min_size=0, max_size=32))

verdicts = st.builds(
    MeasurementVerdict,
    measurement=measurements,
    authentic=st.booleans(),
    healthy=st.booleans(),
    from_future=st.booleans())

reports = st.builds(
    VerificationReport,
    device_id=device_ids,
    collection_time=finite_floats,
    status=st.sampled_from(DeviceStatus),
    verdicts=st.lists(verdicts, max_size=6),
    anomalies=st.lists(st.text(max_size=40), max_size=3),
    freshness=st.one_of(st.none(), finite_floats),
    missing_intervals=st.integers(min_value=0, max_value=50))


@settings(max_examples=60, deadline=None)
@given(reports)
def test_report_row_round_trip(report):
    row = jsonify(report.to_row())
    restored = VerificationReport.from_row(row)
    # The restored report has no verdicts, but every derived quantity
    # the stores and FleetHealth rely on must match the original.
    assert restored.device_id == report.device_id
    assert restored.collection_time == report.collection_time
    assert restored.status is report.status
    assert restored.anomalies == report.anomalies
    assert restored.freshness == report.freshness
    assert restored.missing_intervals == report.missing_intervals
    assert restored.measurement_count == report.measurement_count
    assert restored.infected_timestamps == report.infected_timestamps
    assert restored.newest_timestamp == report.newest_timestamp
    assert restored.detected_infection() == report.detected_infection()
    # Idempotence: re-serializing the restored report is byte-stable.
    assert jsonify(restored.to_row()) == row


@settings(max_examples=30, deadline=None)
@given(reports)
def test_report_summary_works_after_restore(report):
    restored = VerificationReport.from_row(jsonify(report.to_row()))
    assert restored.summary() == report.summary()
    assert repr(restored) == repr(report)


# ----------------------------------------------------------------------
# FleetHealth
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(reports, max_size=12))
def test_fleet_health_row_round_trip(report_list):
    health = FleetHealth()
    for report in report_list:
        health.record(report)
    row = jsonify(health.to_row())
    restored = FleetHealth.from_row(row)
    assert restored == health
    assert jsonify(restored.to_row()) == row
    assert restored.summary() == health.summary()


@settings(max_examples=30, deadline=None)
@given(st.lists(reports, max_size=8))
def test_fleet_health_restored_keeps_recording(report_list):
    """A restored aggregate folds further reports like the original."""
    health = FleetHealth()
    for report in report_list:
        health.record(report)
    restored = FleetHealth.from_row(health.to_row())
    extra = VerificationReport(device_id="后-device", collection_time=1.0,
                               status=DeviceStatus.INFECTED)
    health.record(extra)
    restored.record(extra)
    assert restored == health
