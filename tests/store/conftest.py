"""Store tests run under the runtime lock-order witness.

The shared-store path (``_LockedStore`` wrapping a JSONL/SQLite
backend) is where a lock-order inversion would deadlock a sharded
round; witnessing every store test keeps the discipline honest.
"""

import pytest

from repro.statics.runtime import witness


@pytest.fixture(autouse=True)
def lock_witness():
    with witness() as active:
        yield active
    assert not active.violations, "\n".join(
        str(violation) for violation in active.violations)
