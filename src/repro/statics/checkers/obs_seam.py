"""Rule ``obs-seam``: hot paths instrument through ``Observability``.

The observability layer is threaded through the stack as one
:class:`repro.obs.service.Observability` object whose null default is
pinned at zero cost (``benchmarks/test_obs_overhead.py``).  Hot-path
modules that import the metric/tracing *primitives* directly —
``MetricsRegistry``, ``Counter``, ``SpanTracer`` — bypass that seam:
their instruments exist (and cost allocations, label lookups, lock
acquisitions) even when observability is off, and their metrics never
reach the fleet's registry, exposition or campaign absorption.

Flagged inside the hot-path packages (fleet, core, crypto, net, sim,
store): imports from ``repro.obs.metrics`` / ``repro.obs.tracing``,
and direct construction of the primitive classes.  Importing the seam
itself (``repro.obs.service``: ``Observability``,
``NULL_OBSERVABILITY``) stays legal, as do the experiments/examples
harnesses, which own their registries deliberately.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statics.engine import Checker, FileContext, Finding, terminal_name

_HOT_MARKERS = ("repro/fleet/", "repro/core/", "repro/crypto/",
                "repro/net/", "repro/sim/", "repro/store/")
_PRIMITIVE_MODULES = ("repro.obs.metrics", "repro.obs.tracing")
_PRIMITIVE_NAMES = {"MetricsRegistry", "SpanTracer", "Counter", "Gauge",
                    "Histogram"}


class ObsSeamChecker(Checker):
    rule = "obs-seam"
    description = ("hot-path modules must instrument via the "
                   "Observability seam, not raw metric primitives")
    invariant = ("the null Observability default keeps disabled hot "
                 "paths structurally identical to uninstrumented code "
                 "(zero cost), and every live instrument lands in the "
                 "one fleet registry")
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(marker in ctx.relpath for marker in _HOT_MARKERS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.module in _PRIMITIVE_MODULES:
                names = ", ".join(alias.name for alias in node.names)
                yield ctx.finding(
                    self.rule, node,
                    f"hot-path import of {names} from {node.module}; "
                    f"instrument through repro.obs.service.Observability "
                    f"so the null default stays zero-cost")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _PRIMITIVE_MODULES:
                        yield ctx.finding(
                            self.rule, node,
                            f"hot-path import of {alias.name}; "
                            f"instrument through the Observability seam")
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in _PRIMITIVE_NAMES:
                    yield ctx.finding(
                        self.rule, node,
                        f"hot-path construction of {name}(); obtain "
                        f"instruments from the Observability object "
                        f"threaded via Fleet.provision(obs=...)")
