"""Quality of Attestation (QoA) — Section 3.1.

QoA captures *how* a device is attested along the time axis: how often
its state is measured (``T_M``), how often measurements are verified
(``T_C``) and how fresh the newest measurement is at collection time
(``f``, between ``0`` and ``T_M``, averaging ``T_M / 2``).

On-demand attestation conflates the two intervals (``T_M == T_C``, one
measurement per verification, freshness 0); ERASMUS decouples them.
This module provides the analytic relationships the paper states, used
both by the experiments and as oracles for the simulation-based tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class QoA:
    """Quality-of-Attestation parameters of a deployment.

    ``measurement_interval`` is ``T_M``, ``collection_interval`` is
    ``T_C``.  ``on_demand_only`` marks the degenerate configuration of
    classic on-demand RA where both intervals coincide.
    """

    measurement_interval: float
    collection_interval: float
    on_demand_only: bool = False

    def __post_init__(self) -> None:
        if self.measurement_interval <= 0 or self.collection_interval <= 0:
            raise ValueError("QoA intervals must be positive")

    @property
    def measurements_per_collection(self) -> int:
        """``k = ceil(T_C / T_M)`` — history records per collection."""
        return int(math.ceil(self.collection_interval /
                             self.measurement_interval))

    @property
    def expected_freshness(self) -> float:
        """Expected freshness ``f``: 0 for on-demand, ``T_M / 2`` otherwise."""
        if self.on_demand_only:
            return 0.0
        return expected_freshness(self.measurement_interval)

    @property
    def worst_case_freshness(self) -> float:
        """Worst-case freshness: 0 for on-demand, ``T_M`` otherwise."""
        return 0.0 if self.on_demand_only else self.measurement_interval

    def detection_probability(self, dwell_time: float) -> float:
        """Probability that transient malware of that dwell time is detected."""
        if self.on_demand_only:
            # On-demand attestation only measures at collections: the
            # relevant interval is T_C, which is why it misses mobile
            # malware so easily.
            return detection_probability(dwell_time, self.collection_interval)
        return detection_probability(dwell_time, self.measurement_interval)

    def expected_detection_latency(self) -> float:
        """Expected time from infection to the verifier noticing it."""
        return expected_detection_latency(self.measurement_interval,
                                          self.collection_interval)

    def stronger_than(self, other: "QoA") -> bool:
        """Strict QoA comparison: at least as good on both axes, better on one."""
        no_worse = (self.measurement_interval <= other.measurement_interval and
                    self.collection_interval <= other.collection_interval)
        strictly = (self.measurement_interval < other.measurement_interval or
                    self.collection_interval < other.collection_interval)
        return no_worse and strictly


def expected_freshness(measurement_interval: float) -> float:
    """Expected freshness of the newest record: ``T_M / 2`` (Section 3.1)."""
    if measurement_interval <= 0:
        raise ValueError("T_M must be positive")
    return measurement_interval / 2


def detection_probability(dwell_time: float,
                          measurement_interval: float) -> float:
    """Probability that malware present for ``dwell_time`` hits a measurement.

    Measurements fire every ``T_M``; the infection window of length
    ``d`` starts uniformly at random relative to that grid.  The window
    contains at least one measurement instant with probability
    ``min(1, d / T_M)`` — the paper's intuition that a smaller ``T_M``
    shrinks the mobile-malware escape window.
    """
    if measurement_interval <= 0:
        raise ValueError("T_M must be positive")
    if dwell_time < 0:
        raise ValueError("dwell time must be non-negative")
    return min(1.0, dwell_time / measurement_interval)


def expected_detection_latency(measurement_interval: float,
                               collection_interval: float) -> float:
    """Expected infection-to-detection delay for persistent malware.

    The next measurement happens after ``T_M / 2`` on average and the
    verifier only learns about it at the next collection, another
    ``T_C / 2`` later on average.  Corrective action therefore lags the
    infection by ``T_M / 2 + T_C / 2`` in expectation — the reason the
    paper stresses keeping ``T_C`` small (Figure 1).
    """
    if measurement_interval <= 0 or collection_interval <= 0:
        raise ValueError("intervals must be positive")
    return measurement_interval / 2 + collection_interval / 2
