"""A dependency-free metrics registry with Prometheus text exposition.

Three instrument kinds, modelled on the Prometheus client data model
but implemented on nothing beyond the standard library:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at registration time, rendered as the cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series scrapers expect.

Two further instrument kinds serve long-lived deployments, where
cumulative-since-boot numbers stop answering "how is the fleet doing
*now*":

* **window counters** (:meth:`MetricsRegistry.window_counter`) — a
  sliding-window total: increments carry a timestamp from the
  registry's bound clock and age out of the window, so the rendered
  value (TYPE ``gauge``) is the amount observed in the last ``window``
  seconds;
* **decay gauges** (:meth:`MetricsRegistry.decay_gauge`) — an
  exponentially-decayed sum: each :meth:`~_DecayGaugeChild.mark`
  first halves the standing value once per elapsed ``half_life``, so
  old activity fades smoothly instead of falling off a cliff.

Both are stamped by the registry clock
(:meth:`MetricsRegistry.bind_clock` — usually the simulation engine's
virtual ``now``), which keeps them deterministic under the virtual
clock; without a clock, time stands still at 0.0 and they degrade to
plain cumulative counters.

Histograms additionally estimate quantiles from their bucket counts
(:meth:`_HistogramChild.quantile`, with explicit error bounds from
:meth:`_HistogramChild.quantile_bounds`), and a registry constructed
with ``summary_quantiles=(0.5, 0.9, 0.99)`` renders one
``<name>_summary{quantile="..."}`` gauge family per histogram next to
its bucket series.

Every instrument supports labels: ``registry.counter("x", labels=
("status",))`` returns a parent whose :meth:`Metric.labels` call
resolves (and caches) one child per label-value combination.  Children
are plain Python objects mutated with ``+=`` under the GIL, which is
what makes reads *lock-free*: :meth:`MetricsRegistry.render` (and the
HTTP scrape endpoint built on it) never takes a lock — it snapshots
each child's numbers with atomic reads/copies, so a scrape can never
block or be blocked by the collection hot path.  The price is that a
scrape landing mid-update may see a histogram whose ``_sum`` is one
observation ahead of its buckets; for monitoring that skew is
harmless, and the next scrape heals it.

Text rendering is deterministic: metrics sort by name, children by
label values, so two registries holding the same numbers render
byte-identical expositions (the obs test-suite pins this).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.statics.runtime import named_lock

#: Default latency buckets (seconds): tuned for the per-device verify
#: path, which sits in the tens-of-microseconds to milliseconds range.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Coarser buckets (seconds) for whole-round / whole-cell durations.
DEFAULT_ROUND_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


class MetricError(ValueError):
    """A metric was registered or used inconsistently."""


class _ClockBox:
    """A shared, rebindable clock every time-aware child reads through.

    Children hold a reference to the box (not the callable) so
    :meth:`MetricsRegistry.bind_clock` retroactively reaches series
    created before the engine existed.  Without a bound callable the
    clock stands still at 0.0 — deterministic, just windowless.
    """

    __slots__ = ("fn",)

    def __init__(self) -> None:
        self.fn: Optional[Callable[[], float]] = None

    def now(self) -> float:
        return self.fn() if self.fn is not None else 0.0


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _cell_rename(name: str) -> str:
    """Default family rename for absorbed per-cell registries.

    ``repro_reports_total`` → ``repro_cell_reports_total``; names
    outside the ``repro_`` namespace get a plain ``cell_`` prefix.
    Keeping absorbed families in their own namespace means a parent
    registry that also instruments a fleet of its own can never
    collide with its cells' label sets.
    """
    if name.startswith("repro_"):
        return "repro_cell_" + name[len("repro_"):]
    return "cell_" + name


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    """Render one sample's ``{name="value",...}`` block (may be empty)."""
    if not names:
        return ""
    pairs = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                     for name, value in zip(names, values))
    return "{" + pairs + "}"


class _CounterChild:
    """One labelled counter series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge instead")
        self.value += amount


class _GaugeChild:
    """One labelled gauge series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One labelled histogram series: fixed buckets, running sum/count.

    ``counts[i]`` is the number of observations that fell into bucket
    ``i`` (non-cumulative; rendering accumulates).  ``observe`` is the
    hot-path call: one bisect plus three in-place adds.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: Tuple[float, ...]) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # last slot: +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def _quantile_bucket(self, q: float) -> Tuple[int, int, int, int]:
        """Locate ``q``'s bucket: (index, cumulative_before, in_bucket,
        total).  Snapshot the counts once so the answer is internally
        consistent even if an observation lands mid-call."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be within [0, 1], got {q}")
        counts = list(self.counts)
        total = sum(counts)
        if total == 0:
            return -1, 0, 0, 0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            if cumulative + count >= rank and count:
                return index, cumulative, count, total
            cumulative += count
        # q == 0 with an empty leading bucket run, or float dust:
        # settle on the last non-empty bucket.
        for index in range(len(counts) - 1, -1, -1):
            if counts[index]:
                return index, total - counts[index], counts[index], total
        return -1, 0, 0, 0  # unreachable: total > 0 has a non-empty bucket

    def quantile_bounds(self, q: float) -> Optional[Tuple[float, float]]:
        """The bucket interval guaranteed to contain the ``q``-quantile.

        Returns ``(lower, upper)`` — the true quantile of the observed
        values lies within it — or ``None`` for an empty histogram.
        The upper bound is ``+Inf`` when the quantile falls in the
        overflow bucket, which is the honest answer: beyond the last
        boundary the histogram carries no resolution.
        """
        index, _before, _inside, total = self._quantile_bucket(q)
        if total == 0:
            return None
        boundaries = self.boundaries
        if index >= len(boundaries):
            return boundaries[-1], float("inf")
        lower = 0.0 if index == 0 and boundaries[0] > 0 \
            else (boundaries[index - 1] if index > 0 else boundaries[0])
        return (min(lower, boundaries[index]), boundaries[index])

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation within the quantile's bucket (the same
        model as PromQL's ``histogram_quantile``): the estimate is
        always inside :meth:`quantile_bounds`, so its absolute error is
        at most that bucket's width.  Quantiles landing in the overflow
        bucket clamp to the largest finite boundary.  ``None`` for an
        empty histogram.
        """
        index, before, inside, total = self._quantile_bucket(q)
        if total == 0:
            return None
        boundaries = self.boundaries
        if index >= len(boundaries):
            return boundaries[-1]
        upper = boundaries[index]
        lower = 0.0 if index == 0 and boundaries[0] > 0 \
            else (boundaries[index - 1] if index > 0 else upper)
        if lower > upper:
            lower = upper
        rank = q * total
        fraction = (rank - before) / inside
        if fraction < 0.0:
            fraction = 0.0
        elif fraction > 1.0:
            fraction = 1.0
        return lower + (upper - lower) * fraction


class _WindowCounterChild:
    """One sliding-window counter series.

    Increments are stamped with the registry clock and age out of the
    window; reads sum the still-live increments without mutating, so a
    scrape stays lock-free.  ``inc`` prunes expired entries (amortized
    O(1) per increment).
    """

    __slots__ = ("window", "_clock", "_entries")

    def __init__(self, window: float, clock: _ClockBox) -> None:
        self.window = window
        self._clock = clock
        self._entries: Deque[Tuple[float, float]] = deque()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("window counters only count forward; "
                              "use a Gauge for signed values")
        now = self._clock.now()
        entries = self._entries
        entries.append((now, amount))
        horizon = now - self.window
        while entries and entries[0][0] <= horizon:
            entries.popleft()

    @property
    def value(self) -> float:
        """The amount observed within the trailing window."""
        horizon = self._clock.now() - self.window
        return sum(amount for stamp, amount in list(self._entries)
                   if stamp > horizon)

    def rate(self) -> float:
        """The windowed amount per second."""
        return self.value / self.window


class _DecayGaugeChild:
    """One exponentially-decayed sum series.

    :meth:`mark` first decays the standing value by ``0.5 ** (elapsed
    / half_life)`` and then adds the new amount; reads apply the same
    decay without mutating.  With the virtual clock bound, the decay
    is a pure function of simulated time — deterministic run to run.
    """

    __slots__ = ("half_life", "_clock", "_value", "_stamp")

    def __init__(self, half_life: float, clock: _ClockBox) -> None:
        self.half_life = half_life
        self._clock = clock
        self._value = 0.0
        self._stamp = clock.now()

    def _decayed(self, now: float) -> float:
        elapsed = now - self._stamp
        if elapsed <= 0.0:
            return self._value
        return self._value * (0.5 ** (elapsed / self.half_life))

    def mark(self, amount: float = 1.0) -> None:
        now = self._clock.now()
        self._value = self._decayed(now) + amount
        self._stamp = now

    # ``inc`` aliases ``mark`` so generic call sites treat the kinds
    # uniformly.
    inc = mark

    @property
    def value(self) -> float:
        """The decayed sum as of the clock's current reading."""
        return self._decayed(self._clock.now())


_CHILD_FACTORIES = {
    "counter": lambda metric: _CounterChild(),
    "gauge": lambda metric: _GaugeChild(),
    "histogram": lambda metric: _HistogramChild(metric.buckets),
    "window": lambda metric: _WindowCounterChild(metric.extra,
                                                 metric.clock),
    "decay": lambda metric: _DecayGaugeChild(metric.extra, metric.clock),
}

#: Exposition TYPE line per internal kind: the windowed/decayed kinds
#: render as gauges (their values go up *and* down by design).
_EXPOSITION_TYPE = {"window": "gauge", "decay": "gauge"}


class Metric:
    """One registered metric family: a parent plus labelled children.

    Unlabelled metrics expose the child API (``inc`` / ``set`` /
    ``observe``) directly on the parent through a default child; the
    hot path for labelled metrics is ``metric.labels(value)`` which
    caches the child, so repeated lookups cost one dict hit.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Tuple[float, ...] = (),
                 extra: float = 0.0,
                 clock: Optional[_ClockBox] = None,
                 summary_quantiles: Tuple[float, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self.buckets = buckets
        #: Kind-specific scalar: the window (seconds) of a window
        #: counter, the half-life (seconds) of a decay gauge.
        self.extra = extra
        self.clock = clock if clock is not None else _ClockBox()
        self.summary_quantiles = summary_quantiles
        # Children mutate under the GIL; the creation lock only guards
        # the insert of a *new* child (reads never take it).
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = named_lock("obs.metric_children")
        if not self.label_names:
            self._default = self.labels()

    def labels(self, *values: object, **kwvalues: object):
        """The child series for one label-value combination (cached)."""
        if kwvalues:
            if values:
                raise MetricError(
                    "pass label values either positionally or by name, "
                    "not both")
            try:
                values = tuple(kwvalues[name] for name in self.label_names)
            except KeyError as exc:
                raise MetricError(
                    f"metric {self.name!r} has labels "
                    f"{list(self.label_names)}, got {sorted(kwvalues)}"
                    ) from exc
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s) ({list(self.label_names)}), got "
                f"{len(key)}")
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, _CHILD_FACTORIES[self.kind](self))
        return child

    # -- unlabelled convenience (delegate to the default child) --------
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def mark(self, amount: float = 1.0) -> None:
        self._default.mark(amount)

    # -- reads ----------------------------------------------------------
    def child_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Children sorted by label values (a lock-free snapshot)."""
        return sorted(self._children.items())

    def value(self, *label_values: object) -> float:
        """Current value of one series (0 if unseen).

        Defined per kind: a counter or gauge returns its scalar, a
        window counter its in-window total, a decay gauge its decayed
        sum.  A histogram has *no* single value — returning its sum
        would silently read as a count at most call sites and vice
        versa — so asking raises :class:`MetricError`; read
        ``labels(...).sum`` / ``.count`` or estimate a
        :meth:`quantile` instead (pinned by the obs unit tests).
        """
        if self.kind == "histogram":
            raise MetricError(
                f"metric {self.name!r} is a histogram and has no single "
                f"value(); read labels(...).sum or labels(...).count, or "
                f"estimate a quantile with quantile(q, ...)")
        key = tuple(str(value) for value in label_values)
        child = self._children.get(key)
        return 0.0 if child is None else child.value

    def quantile(self, q: float, *label_values: object) -> Optional[float]:
        """Estimate one histogram series' ``q``-quantile (see
        :meth:`_HistogramChild.quantile`); ``None`` if the series is
        unseen or empty."""
        if self.kind != "histogram":
            raise MetricError(
                f"metric {self.name!r} is a {self.kind}; only histograms "
                f"estimate quantiles")
        key = tuple(str(value) for value in label_values)
        child = self._children.get(key)
        return None if child is None else child.quantile(q)

    def render(self) -> List[str]:
        """This family's exposition lines (``# HELP``/``# TYPE`` first)."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} "
                     f"{_EXPOSITION_TYPE.get(self.kind, self.kind)}")
        for key, child in self.child_items():
            if self.kind == "histogram":
                lines.extend(self._render_histogram(key, child))
            else:
                lines.append(
                    f"{self.name}{_label_pairs(self.label_names, key)} "
                    f"{_format_value(child.value)}")
        if self.kind == "histogram" and self.summary_quantiles:
            lines.extend(self._render_summary())
        return lines

    def _render_summary(self) -> List[str]:
        """``<name>_summary{quantile=...}`` gauges next to the buckets.

        Quantile estimates derived from the bucket counts (so a plain
        scraper gets p50/p99 without PromQL); empty series render no
        summary samples — there is no honest estimate to publish.
        """
        lines: List[str] = []
        samples: List[str] = []
        names = self.label_names + ("quantile",)
        for key, child in self.child_items():
            if child.count == 0:
                continue
            for q in self.summary_quantiles:
                estimate = child.quantile(q)
                labels = _label_pairs(names, key + (_format_value(q),))
                samples.append(f"{self.name}_summary{labels} "
                               f"{_format_value(estimate)}")
        if samples:
            lines.append(f"# TYPE {self.name}_summary gauge")
            lines.extend(samples)
        return lines

    def _render_histogram(self, key: Tuple[str, ...],
                          child: _HistogramChild) -> List[str]:
        # Copy the per-bucket counts in one atomic list() so the
        # cumulative series is internally consistent even if an
        # observation lands mid-render.
        counts = list(child.counts)
        lines = []
        cumulative = 0
        names = self.label_names + ("le",)
        for boundary, count in zip(child.boundaries, counts):
            cumulative += count
            labels = _label_pairs(names, key + (_format_value(boundary),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        cumulative += counts[-1]
        labels = _label_pairs(names, key + ("+Inf",))
        lines.append(f"{self.name}_bucket{labels} {cumulative}")
        plain = _label_pairs(self.label_names, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


class MetricsRegistry:
    """All of one deployment's metrics, renderable as a text exposition.

    Registration is idempotent when the signature matches (same kind,
    labels and buckets) so independently-constructed components can
    share instrument definitions; a mismatched re-registration raises
    :class:`MetricError` rather than silently splitting a series.

    ``summary_quantiles`` (e.g. ``(0.5, 0.9, 0.99)``) makes every
    histogram family also render a ``<name>_summary`` gauge family of
    bucket-derived quantile estimates.  ``bind_clock`` attaches the
    clock (usually the engine's virtual ``now``) that stamps window
    counters and decay gauges — retroactively, including children
    created before the bind.
    """

    def __init__(self, summary_quantiles: Sequence[float] = ()) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = named_lock("obs.registry")
        self._clock = _ClockBox()
        self.summary_quantiles: Tuple[float, ...] = \
            tuple(float(q) for q in summary_quantiles)
        for q in self.summary_quantiles:
            if not 0.0 <= q <= 1.0:
                raise MetricError(
                    f"summary quantiles must be within [0, 1], got {q}")

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the clock time-aware instruments are stamped with."""
        self._clock.fn = clock

    def now(self) -> float:
        """The registry clock's current reading (0.0 unbound)."""
        return self._clock.now()

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str],
                  buckets: Tuple[float, ...] = (),
                  extra: float = 0.0) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or \
                        existing.label_names != tuple(labels) or \
                        existing.buckets != buckets or \
                        existing.extra != extra:
                    raise MetricError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{list(existing.label_names)}")
                return existing
            metric = Metric(name, kind, help=help, label_names=labels,
                            buckets=buckets, extra=extra,
                            clock=self._clock,
                            summary_quantiles=self.summary_quantiles)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Metric:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Metric:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Metric:
        """Register (or fetch) a histogram family with fixed buckets."""
        boundaries = tuple(sorted(set(float(b) for b in buckets)))
        if not boundaries:
            raise MetricError("a histogram needs at least one bucket "
                              "boundary")
        return self._register(name, "histogram", help, labels,
                              buckets=boundaries)

    def window_counter(self, name: str, help: str = "",
                       labels: Sequence[str] = (),
                       window: float = 300.0) -> Metric:
        """Register (or fetch) a sliding-window counter family.

        Renders as a gauge whose value is the amount observed within
        the trailing ``window`` seconds of the registry clock.
        """
        if window <= 0:
            raise MetricError("window must be positive")
        return self._register(name, "window", help, labels,
                              extra=float(window))

    def decay_gauge(self, name: str, help: str = "",
                    labels: Sequence[str] = (),
                    half_life: float = 300.0) -> Metric:
        """Register (or fetch) an exponential-decay gauge family.

        Renders as a gauge holding an exponentially-decayed sum: each
        recorded amount loses half its weight every ``half_life``
        seconds of the registry clock.
        """
        if half_life <= 0:
            raise MetricError("half_life must be positive")
        return self._register(name, "decay", help, labels,
                              extra=float(half_life))

    def absorb(self, other: "MetricsRegistry", label: str, value: str,
               rename: Optional[Callable[[str], str]] = None) -> None:
        """Fold another registry's series into this one under a label.

        Every family in ``other`` is re-registered here with ``label``
        appended to its label names and every series merged in under
        ``value`` — counters and window/decay state add, gauges set,
        histograms merge bucket-by-bucket.  The default ``rename``
        marks the absorbed families as per-cell aggregates
        (``repro_x_total`` → ``repro_cell_x_total``) so they can never
        collide with this registry's own top-level families.  Absorb
        each child registry **once**: a second absorb of the same
        ``value`` adds counts again.
        """
        if rename is None:
            rename = _cell_rename
        for name in other.names():
            family = other._metrics[name]
            target = self._register(
                rename(name), family.kind, family.help,
                labels=family.label_names + (label,),
                buckets=family.buckets, extra=family.extra)
            for key, child in family.child_items():
                mine = target.labels(*(key + (value,)))
                if family.kind == "histogram":
                    counts = list(child.counts)
                    for index, count in enumerate(counts):
                        mine.counts[index] += count
                    mine.sum += child.sum
                    mine.count += sum(counts)
                elif family.kind == "gauge":
                    mine.set(child.value)
                else:  # counter / window / decay: totals add
                    amount = child.value
                    if amount:
                        mine.inc(amount)

    def get(self, name: str) -> Optional[Metric]:
        """Look up a registered family by name (``None`` if absent)."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered family names, sorted."""
        return sorted(self._metrics)

    def render(self) -> str:
        """The full Prometheus text exposition (sorted, deterministic)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")
