"""The analysis layer: exposition parsing, trace summaries, reports."""

import json

import pytest

from repro.experiments import obs_report as harness
from repro.obs import (
    MetricsRegistry,
    Observability,
    ObsReport,
    build_summary,
    histogram_quantiles,
    load_trace,
    parse_exposition,
    render_html,
    render_rollup_html,
    rollup_summaries,
)
from repro.obs.report import ExpositionParseError, summary_json
from repro.obs.tracing import SpanTracer


# ----------------------------------------------------------------------
# parse_exposition
# ----------------------------------------------------------------------

def test_parse_exposition_families_and_values():
    text = (
        "# HELP jobs_total Jobs processed.\n"
        "# TYPE jobs_total counter\n"
        "jobs_total 5\n"
        "# TYPE temp gauge\n"
        'temp{site="lab"} -3.5\n'
        "untyped_thing 1\n")
    families = parse_exposition(text)
    assert families["jobs_total"].kind == "counter"
    assert families["jobs_total"].help == "Jobs processed."
    assert families["jobs_total"].samples[0].value == 5
    (sample,) = families["temp"].samples
    assert sample.labels == {"site": "lab"}
    assert sample.value == -3.5
    assert families["untyped_thing"].kind == "untyped"


def test_parse_exposition_unescapes_label_values():
    text = ('# TYPE c counter\n'
            'c{path="a\\"b\\\\c\\nd",other="x,y={z}"} 1\n')
    families = parse_exposition(text)
    (sample,) = families["c"].samples
    assert sample.labels["path"] == 'a"b\\c\nd'
    assert sample.labels["other"] == "x,y={z}"


def test_parse_exposition_folds_histogram_components():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "Latency.", labels=("op",),
                              buckets=(0.1, 1.0))
    hist.labels("read").observe(0.05)
    hist.labels("read").observe(0.5)
    families = parse_exposition(registry.render())
    family = families["lat"]
    assert family.kind == "histogram"
    names = {sample.name for sample in family.samples}
    assert names == {"lat_bucket", "lat_sum", "lat_count"}
    inf = [s for s in family.samples
           if s.name == "lat_bucket" and s.labels["le"] == "+Inf"]
    assert inf[0].value == 2


def test_parse_exposition_inf_values_and_errors():
    families = parse_exposition("# TYPE g gauge\ng +Inf\nh -Inf\n")
    assert families["g"].samples[0].value == float("inf")
    assert families["h"].samples[0].value == float("-inf")
    with pytest.raises(ExpositionParseError):
        parse_exposition("broken_line_without_value\n")
    with pytest.raises(ExpositionParseError):
        parse_exposition('c{unterminated="x 1\n')


def test_histogram_quantiles_match_the_live_metric():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", labels=("shard",),
                              buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.2, 0.3, 5.0):
        hist.labels("0").observe(value)
    families = parse_exposition(registry.render())
    (row,) = histogram_quantiles(families["lat"], quantiles=(0.5, 0.99))
    assert row["labels"] == {"shard": "0"}
    assert row["count"] == 4
    assert row["quantiles"]["p50"] == pytest.approx(hist.quantile(0.5, "0"))
    assert row["quantiles"]["p99"] == pytest.approx(
        hist.quantile(0.99, "0"))


# ----------------------------------------------------------------------
# Trace summaries
# ----------------------------------------------------------------------

def _scripted_trace():
    """Two workers; worker 1's shard 1 finishes last (critical path)."""
    clock = harness._ScriptedClock()
    tracer = SpanTracer(seed=5, clock=clock)
    with tracer.trace_round(0, worker="0") as round_span:
        with tracer.trace_shard(round_span, 0, devices=2) as shard:
            clock.advance(1.0)
            tracer.record_device_verify(shard, "dev-a", "healthy")
            tracer.record_device_verify(shard, "dev-b", "infected")
    with tracer.trace_round(0, worker="1") as round_span:
        with tracer.trace_shard(round_span, 1, devices=1) as shard:
            clock.advance(3.0)
            tracer.record_device_verify(shard, "dev-c", "healthy")
    return tracer.export_rows()


def test_build_summary_reconstructs_the_tree():
    summary = build_summary(_scripted_trace(), title="t")
    (round_row,) = summary["rounds"]
    assert round_row["round"] == 0
    assert [w["worker"] for w in round_row["workers"]] == ["0", "1"]
    assert round_row["devices"] == 3
    assert round_row["statuses"] == {"healthy": 2, "infected": 1}
    assert round_row["shard_count"] == 2
    # Shard durations are 1.0 and 3.0 → skew 2.0.
    assert round_row["shard_skew"] == pytest.approx(2.0)
    assert summary["totals"] == {
        "rounds": 1, "spans": len(_scripted_trace()),
        "device_verifies": 3, "statuses": {"healthy": 2, "infected": 1}}


def test_critical_path_follows_the_latest_finisher():
    summary = build_summary(_scripted_trace(), title="t")
    chain = summary["rounds"][0]["critical_path"]
    assert [link["kind"] for link in chain] == ["round", "shard",
                                                "device_verify"]
    assert chain[0]["path"] == "round:0/worker:1"
    assert chain[1]["path"] == "round:0/worker:1/shard:1"
    assert chain[2]["path"].endswith("device:dev-c")
    assert chain[2]["status"] == "healthy"


def test_shard_attrs_surface_in_the_summary():
    rows = harness.build_trace(devices=20, rounds=1, shards=2)
    summary = build_summary(rows, title="t")
    shards = [shard for worker in summary["rounds"][0]["workers"]
              for shard in worker["shards"]]
    assert len(shards) == 2
    for shard in shards:
        assert shard["devices"] == 10
        assert shard["received"] + shard["lost"] == 10


def test_summary_is_byte_identical_for_same_seed_traces():
    one = harness.build_trace(devices=60, rounds=2, shards=3, seed=11)
    two = harness.build_trace(devices=60, rounds=2, shards=3, seed=11)
    assert summary_json(build_summary(one, title="x")) == \
        summary_json(build_summary(two, title="x"))
    # A different seed changes span ids but not the derived analysis,
    # which depends only on paths/times/attrs.
    other = harness.build_trace(devices=60, rounds=2, shards=3, seed=12)
    assert summary_json(build_summary(other, title="x")) == \
        summary_json(build_summary(one, title="x"))


def test_metrics_section_appears_only_with_an_exposition():
    rows = _scripted_trace()
    assert "metrics" not in build_summary(rows)
    exposition = harness.build_exposition(devices=40, shards=2)
    summary = build_summary(rows, exposition=exposition)
    assert summary["metrics"]["counters"]["repro_rounds_total"]["_"] == 2
    latency = summary["metrics"]["verify_latency"]
    assert {row["labels"]["shard"] for row in latency} == {"0", "1"}
    for row in latency:
        assert row["quantiles"]["p50"] is not None


# ----------------------------------------------------------------------
# Artifacts: files, HTML, rollups
# ----------------------------------------------------------------------

def test_obs_report_from_files_round_trip(tmp_path):
    clock_rows = _scripted_trace()
    trace_path = tmp_path / "trace.jsonl"
    with open(trace_path, "w", encoding="utf-8") as handle:
        for row in clock_rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    metrics_path = tmp_path / "metrics.prom"
    metrics_path.write_text(harness.build_exposition(devices=10, shards=2),
                            encoding="utf-8")
    assert load_trace(str(trace_path)) == clock_rows
    report = ObsReport.from_files(str(trace_path),
                                  metrics_path=str(metrics_path),
                                  title="from-files")
    assert report.summary["totals"]["device_verifies"] == 3
    assert "verify_latency" in report.summary["metrics"]
    written = report.write(html_path=str(tmp_path / "r.html"),
                           json_path=str(tmp_path / "r.json"))
    assert json.loads((tmp_path / "r.json").read_text()) == report.summary
    assert set(written) == {"html", "json"}


def test_html_report_is_self_contained_and_embeds_the_summary():
    rows = _scripted_trace()
    summary = build_summary(rows, title="page <title>")
    html = render_html(summary, rows=rows)
    assert html.startswith("<!doctype html>")
    assert "<svg" in html and "</svg>" in html
    assert "critical path" in html
    assert "page &lt;title&gt;" in html  # escaped
    assert "http://" not in html.replace(
        "http://www.w3.org/2000/svg", "")  # no external assets
    embedded = html.split("id='obs-summary'>", 1)[1].split("</script>")[0]
    assert json.loads(embedded) == summary


def test_observability_report_facade():
    obs = Observability(seed=3)
    with obs.trace_round(0) as round_span:
        with obs.trace_shard(round_span, 0) as shard:
            obs.record_device_verify(shard, "dev-a", "healthy")
    report = obs.report(title="facade")
    assert report.summary["totals"]["device_verifies"] == 1
    assert "metrics" in report.summary  # exposition included


def test_rollup_aggregates_cells():
    one = build_summary(harness.build_trace(devices=20, rounds=1,
                                            shards=2), title="a")
    two = build_summary(harness.build_trace(devices=40, rounds=2,
                                            shards=2), title="b")
    rollup = rollup_summaries({"a": one, "b": two})
    assert set(rollup["cells"]) == {"a", "b"}
    assert rollup["totals"]["rounds"] == 3
    assert rollup["totals"]["device_verifies"] == 20 + 80
    assert rollup["cells"]["b"]["max_shard_skew"] >= 0.0
    html = render_rollup_html(rollup, title="campaign")
    assert "Campaign rollup" in html and "<table>" in html
