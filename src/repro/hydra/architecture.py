"""HYDRA architecture simulation (Figure 7(b)).

Compared to SMART+, the key and the attestation code live in *writable*
memory (flash/RAM); their protection comes from seL4 capabilities plus
secure boot rather than from ROM.  The RROC is the software clock built
from the i.MX6 General Purpose Timer, and measurements are scheduled by
the EPIT periodic timer.
"""

from __future__ import annotations

import contextlib

from repro.arch.base import ArchitectureError, SecurityArchitecture
from repro.hw.clock import SoftwareClock, WrappingCounter
from repro.hw.codesize import CodeSizeModel
from repro.hw.devices import ApplicationCPUModel
from repro.hw.memory import (
    AccessContext,
    AccessPolicy,
    DeviceMemory,
    MemoryRegion,
    RegionKind,
)
from repro.hydra.pratt import KEY_OBJECT, PrAttProcess
from repro.hydra.secure_boot import SecureBoot
from repro.hydra.sel4 import Microkernel, Right

#: Region names used by the HYDRA memory map.
KERNEL_IMAGE_REGION = "sel4_kernel"
PRATT_IMAGE_REGION = "pratt_image"
KEY_REGION = "key_region"
APPLICATION_REGION = "application"
MEASUREMENT_BUFFER_REGION = "measurement_buffer"

#: i.MX6 GPT: a 32-bit counter clocked at 66 MHz (wraps every ~65 s).
_GPT_FREQUENCY_HZ = 66_000_000.0


class HydraArchitecture(SecurityArchitecture):
    """HYDRA model implementing :class:`repro.arch.SecurityArchitecture`.

    Parameters
    ----------
    key:
        The attestation key ``K`` (stored in a capability-protected
        writable region, unlike SMART+'s ROM).
    mac_name:
        MAC algorithm used for measurements.
    application_size:
        Size of the measured application region (Figure 8 sweeps this
        from 0 to 10 MB).
    cost_model:
        i.MX6-class cost model (defaults to the calibrated one).
    """

    def __init__(self, key: bytes, mac_name: str = "keyed-blake2s",
                 application_size: int = 10 * 1024 * 1024,
                 measurement_buffer_size: int = 64 * 1024,
                 cost_model: ApplicationCPUModel | None = None,
                 code_size_model: CodeSizeModel | None = None) -> None:
        if not key:
            raise ValueError("the attestation key K must be non-empty")
        if application_size <= 0:
            raise ValueError("application size must be positive")
        size_model = code_size_model if code_size_model is not None \
            else CodeSizeModel()
        kernel_image = self._synthetic_image(b"sel4-kernel", 160 * 1024)
        pratt_size = size_model.report("hydra", "erasmus", mac_name).total_bytes
        pratt_image = self._synthetic_image(
            f"pratt/{mac_name}".encode(), pratt_size)

        memory = self._build_memory_map(
            kernel_image, pratt_image, key, application_size,
            measurement_buffer_size)
        super().__init__(
            memory=memory,
            cost_model=cost_model if cost_model is not None
            else ApplicationCPUModel(),
            mac_name=mac_name,
            measured_regions=(APPLICATION_REGION,),
        )

        # Secure boot: verify the kernel and PrAtt images, then bring up
        # the microkernel with PrAtt as the initial, highest-priority
        # process holding exclusive key capabilities.
        self.secure_boot = SecureBoot.provision({
            KERNEL_IMAGE_REGION: kernel_image,
            PRATT_IMAGE_REGION: pratt_image,
        })
        self.secure_boot.boot({
            KERNEL_IMAGE_REGION: kernel_image,
            PRATT_IMAGE_REGION: pratt_image,
        })
        self.kernel = Microkernel()
        self.pratt = PrAttProcess.boot(self.kernel)
        self.clock = SoftwareClock(
            WrappingCounter(frequency_hz=_GPT_FREQUENCY_HZ, width_bits=32))
        self._in_pratt = False

    @staticmethod
    def _synthetic_image(seed: bytes, size: int) -> bytes:
        from repro.crypto.sha256 import sha256_digest
        pattern = sha256_digest(seed)
        return (pattern * (size // len(pattern) + 1))[:size]

    @staticmethod
    def _build_memory_map(kernel_image: bytes, pratt_image: bytes, key: bytes,
                          application_size: int,
                          measurement_buffer_size: int) -> DeviceMemory:
        memory = DeviceMemory()
        cursor = 0
        for name, data, policy in (
                (KERNEL_IMAGE_REGION, kernel_image,
                 AccessPolicy.attestation_private()),
                (PRATT_IMAGE_REGION, pratt_image,
                 AccessPolicy.attestation_private()),
                (KEY_REGION, key, AccessPolicy.attestation_private()),
        ):
            memory.add_region(MemoryRegion(
                name=name, base=cursor, size=len(data), kind=RegionKind.FLASH,
                policy=policy, data=bytearray(data)))
            cursor += len(data)
        memory.add_region(MemoryRegion(
            name=APPLICATION_REGION, base=cursor, size=application_size,
            kind=RegionKind.RAM, policy=AccessPolicy.open()))
        cursor += application_size
        memory.add_region(MemoryRegion(
            name=MEASUREMENT_BUFFER_REGION, base=cursor,
            size=measurement_buffer_size, kind=RegionKind.RAM,
            policy=AccessPolicy.open()))
        return memory

    # ------------------------------------------------------------------
    # SecurityArchitecture interface
    # ------------------------------------------------------------------
    def read_clock(self) -> float:
        """Read the software RROC (GPT counter + PrAtt-owned high bits)."""
        return self.clock.read()

    def advance_clock(self, time_seconds: float) -> None:
        """Advance the GPT; PrAtt services wrap-around interrupts."""
        self.pratt.update_rroc_high_bits()
        self.clock.advance_to(time_seconds, trusted=True)

    def _read_key(self) -> bytes:
        if not self._in_pratt:
            raise ArchitectureError(
                "K may only be read by the PrAtt process")
        self.kernel.require_access(self.pratt.name, KEY_OBJECT, Right.READ)
        return self.memory.read_region(KEY_REGION, AccessContext.ATTESTATION)

    @contextlib.contextmanager
    def _protected_execution(self):
        if self._in_pratt:
            raise ArchitectureError(
                "PrAtt is single-threaded; nested measurement is impossible")
        if not self.pratt.is_highest_priority():
            raise ArchitectureError(
                "PrAtt lost its scheduling priority; atomicity is broken")
        if not self.pratt.has_exclusive_key_access():
            raise ArchitectureError(
                "key capability leaked; exclusive access is broken")
        self._in_pratt = True
        try:
            yield
        finally:
            self._in_pratt = False

    # ------------------------------------------------------------------
    # HYDRA-specific behaviour
    # ------------------------------------------------------------------
    def spawn_application(self, name: str, priority: int | None = None) -> None:
        """Spawn a user-space application process below PrAtt's priority."""
        self.pratt.spawn_user_process(name, priority)

    def load_application(self, image: bytes) -> None:
        """Load (or let malware overwrite) the application image."""
        region = self.memory.region(APPLICATION_REGION)
        if len(image) > region.size:
            raise ValueError(
                f"application image of {len(image)} bytes exceeds the "
                f"{region.size}-byte application region")
        padded = image + bytes(region.size - len(image))
        self.memory.write_region(APPLICATION_REGION, padded,
                                 context=AccessContext.NORMAL)


def build_hydra_architecture(
        key: bytes, mac_name: str = "keyed-blake2s",
        application_size: int = 10 * 1024 * 1024,
        measurement_buffer_size: int = 64 * 1024,
        cost_model: ApplicationCPUModel | None = None) -> HydraArchitecture:
    """Convenience factory: build a HYDRA device ready for ERASMUS."""
    return HydraArchitecture(
        key=key, mac_name=mac_name, application_size=application_size,
        measurement_buffer_size=measurement_buffer_size,
        cost_model=cost_model)
