"""Core of the invariant lint engine: findings, pragmas, file scanning.

The engine is deliberately small: each file is read and parsed once,
every active :class:`Checker` walks the same AST, and the resulting
:class:`Finding`s are filtered through same-line / preceding-line
``# statics: ok(<rule>)`` pragmas before they reach the report layer.
Nothing here imports the rest of ``repro`` — the engine must be able
to lint a broken tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Rule id used for files the engine itself could not process.
PARSE_RULE = "parse"
#: Rule id used for pragmas naming a rule the engine does not know.
PRAGMA_RULE = "pragma"

_PRAGMA_RE = re.compile(r"#\s*statics:\s*ok\(([^)]*)\)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule, message) so sorted findings —
    and therefore the JSON report — are byte-stable for a given tree.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def to_row(self) -> Dict[str, object]:
        """JSON-friendly row (plain types, stable key order via sort)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        """The classic ``path:line:col: rule: message`` lint line."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")


class FileContext:
    """Everything a checker needs to know about one source file."""

    def __init__(self, path: Path, relpath: str, text: str,
                 tree: ast.AST) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        name = path.name
        self.is_test = ("tests" in relpath.split("/")
                        or name.startswith("test_")
                        or name == "conftest.py")

    def matches(self, *suffixes: str) -> bool:
        """True when the file's posix relpath ends with any suffix."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def finding(self, rule: str, node: ast.AST, message: str,
                severity: str = "error") -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(path=self.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule, message=message, severity=severity)


class Checker:
    """Base class for one invariant rule.

    Subclasses set :attr:`rule` (the id pragmas and baselines use),
    :attr:`description` (one line, for ``--list-rules``) and
    :attr:`invariant` (the repo/paper invariant the rule protects, for
    the catalog), then implement :meth:`check`.
    """

    rule: str = ""
    description: str = ""
    invariant: str = ""
    #: Rules whose point is adversary-facing production code skip test
    #: files (a test asserting ``mac == expected`` is the test's job).
    applies_to_tests: bool = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test and not self.applies_to_tests:
            return iter(())
        return self.check(ctx)


def split_name(name: str) -> List[str]:
    """Lower-cased word parts of an identifier (``device_key`` → ...)."""
    return [part for part in re.split(r"[^a-zA-Z0-9]+", name.lower())
            if part]


def dotted_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` as ``["a", "b", "c"]`` (empty for non-name chains)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier a comparison operand answers to."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            return index.value
        return terminal_name(node.value)
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    return None


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def parse_pragmas(text: str) -> Dict[int, Set[str]]:
    """Map source line number → rules suppressed on that line.

    Pragmas live in real comments only — tokenize finds them, so a
    docstring *describing* the pragma syntax does not suppress
    anything.  A pragma at the end of a code line covers that line; a
    pragma on a comment-only line covers the *next* line (for
    statements too long to carry a trailing comment).  ``ok(*)``
    suppresses every rule.  Text after the rule list (``—
    justification``) is free-form.
    """
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = {rule.strip() for rule in match.group(1).split(",")
                 if rule.strip()}
        line = token.start[0]
        own_line = token.line.lstrip().startswith("#")
        target = line + 1 if own_line else line
        suppressed.setdefault(target, set()).update(rules)
    return suppressed


# ----------------------------------------------------------------------
# Scanning
# ----------------------------------------------------------------------

@dataclass
class ScanResult:
    """Outcome of one engine run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    checkers: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if path.is_dir():
            yield from sorted(
                candidate for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts))


def _relpath(path: Path, relative_to: Path) -> str:
    try:
        return path.resolve().relative_to(relative_to.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_checks(ctx: FileContext, checkers: Sequence[Checker],
               known_rules: Optional[Set[str]] = None
               ) -> tuple[List[Finding], int]:
    """Run every checker over one parsed file, applying pragmas.

    Returns ``(findings, suppressed_count)``.  Pragmas naming a rule
    outside ``known_rules`` produce a ``pragma`` finding of their own —
    a stale suppression is itself a defect.
    """
    pragmas = parse_pragmas(ctx.text)
    raw: List[Finding] = []
    for checker in checkers:
        raw.extend(checker.run(ctx))
    if known_rules:
        for line, rules in sorted(pragmas.items()):
            for rule in sorted(rules):
                if rule != "*" and rule not in known_rules:
                    raw.append(Finding(
                        path=ctx.relpath, line=line, col=0,
                        rule=PRAGMA_RULE,
                        message=f"pragma suppresses unknown rule "
                                f"{rule!r}"))
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        allowed = pragmas.get(finding.line, ())
        if finding.rule in allowed or "*" in allowed:
            suppressed += 1
        else:
            findings.append(finding)
    return findings, suppressed


def scan_paths(paths: Sequence[Path], checkers: Sequence[Checker],
               baseline: Optional["Baseline"] = None,
               relative_to: Optional[Path] = None) -> ScanResult:
    """Lint every Python file under ``paths`` with the given checkers."""
    from repro.statics.baseline import Baseline  # cycle-free at runtime
    root = relative_to if relative_to is not None else Path.cwd()
    known = {checker.rule for checker in checkers}
    result = ScanResult(checkers=sorted(known))
    collected: List[Finding] = []
    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            collected.append(Finding(path=relpath, line=line, col=0,
                                     rule=PARSE_RULE,
                                     message=f"could not parse: {exc}"))
            result.files_scanned += 1
            continue
        ctx = FileContext(path, relpath, text, tree)
        findings, suppressed = run_checks(ctx, checkers, known_rules=known)
        collected.extend(findings)
        result.suppressed += suppressed
        result.files_scanned += 1
    collected.sort()
    if baseline is None:
        baseline = Baseline()
    for finding in collected:
        if baseline.matches(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
