"""Tests for schedule-aware malware (Section 3.5 adversary)."""

import pytest

from repro.adversary.roving import EvasionResult, ScheduleAwareMalware
from repro.core.scheduler import IrregularScheduler, LenientScheduler, \
    RegularScheduler


def test_short_dwell_always_evades_regular_schedule():
    malware = ScheduleAwareMalware(dwell=50.0, seed=1)
    result = malware.simulate(RegularScheduler(60.0), trials=500)
    assert result.evasion_probability == 1.0
    assert result.detection_probability == 0.0


def test_long_dwell_never_evades_regular_schedule():
    malware = ScheduleAwareMalware(dwell=70.0, seed=1)
    result = malware.simulate(RegularScheduler(60.0), trials=500)
    assert result.evasion_probability == 0.0


def test_irregular_schedule_breaks_certainty():
    malware = ScheduleAwareMalware(dwell=55.0, seed=2)
    irregular = IrregularScheduler(b"key", lower=30.0, upper=90.0)
    result = malware.simulate(irregular, trials=1500)
    # Analytically P(evade) = (90 - 55) / 60 ≈ 0.58.
    assert 0.45 < result.evasion_probability < 0.70


def test_dwell_below_lower_bound_still_evades_irregular():
    malware = ScheduleAwareMalware(dwell=25.0, seed=3)
    irregular = IrregularScheduler(b"key", lower=30.0, upper=90.0)
    assert malware.simulate(irregular, trials=300).evasion_probability == 1.0


def test_best_case_dwell():
    malware = ScheduleAwareMalware(dwell=10.0)
    assert malware.best_case_dwell(RegularScheduler(60.0)) == 60.0
    assert malware.best_case_dwell(
        IrregularScheduler(b"key", 30.0, 90.0)) == 30.0
    assert malware.best_case_dwell(LenientScheduler(60.0, 2.0)) == 60.0


def test_evasion_result_properties():
    result = EvasionResult(trials=10, evasions=4)
    assert result.evasion_probability == pytest.approx(0.4)
    assert result.detection_probability == pytest.approx(0.6)
    assert EvasionResult(trials=0, evasions=0).evasion_probability == 0.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        ScheduleAwareMalware(dwell=0.0)
    with pytest.raises(ValueError):
        ScheduleAwareMalware(dwell=1.0).simulate(RegularScheduler(10.0),
                                                 trials=0)
