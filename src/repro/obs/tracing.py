"""Span tracing for collection rounds — deterministic and reproducible.

A collection round is traced as a small tree::

    round:3/worker:0                     (one span per round per worker)
      round:3/worker:0/shard:1           (one span per in-flight shard)
        round:3/worker:0/shard:1/device:dev-0261   (one per verify)

Span identifiers are *derived*, not drawn: each span's id is a keyed
BLAKE2s digest of its path, keyed by the tracer seed, so the same
(round, shard, device) coordinates always produce the same id — and a
whole trace exported twice from identically-seeded runs is
byte-identical.  That property is what lets perf PRs diff traces
across commits instead of eyeballing them.

To keep the bytes reproducible, spans are stamped with the *virtual*
clock (the simulation engine's ``now``), never the wall clock: wall
durations are machine noise and belong in the metrics histograms, not
the trace.  Export sorts spans by path, so the arrival order of
concurrently-finishing shards (or sharded workers on real threads)
cannot leak into the artifact either.

The per-device hot path is deliberately cheap: recording a device
verify appends one tuple; the span row — id derivation included — is
materialized only at export time.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.statics.runtime import named_lock

#: Hex characters in a derived span id (8 bytes of keyed BLAKE2s).
SPAN_ID_BYTES = 8


def derive_span_id(path: str, seed: int = 0) -> str:
    """The deterministic id of the span at ``path`` under one seed."""
    key = seed.to_bytes(8, "big", signed=True)
    return hashlib.blake2s(path.encode("utf-8"), digest_size=SPAN_ID_BYTES,
                           key=key).hexdigest()


def derive_child_seed(seed: int, label: str) -> int:
    """A deterministic sub-seed forked from ``seed`` for one ``label``.

    Used for per-cell campaign tracers: every cell gets its own tracer
    (so concurrent cells cannot interleave in one span list) whose
    seed is a pure function of the parent seed and the cell label —
    same campaign, same per-cell traces, byte for byte.  The BLAKE2s
    keying mirrors :func:`derive_span_id`, and the result stays within
    the signed 64-bit range ``to_bytes`` accepts.
    """
    key = seed.to_bytes(8, "big", signed=True)
    digest = hashlib.blake2s(label.encode("utf-8"), digest_size=8,
                             key=key).digest()
    return int.from_bytes(digest, "big", signed=True)


class Span:
    """One open span: a path, virtual start/end stamps, and attributes.

    Built through :class:`SpanTracer`'s context managers rather than
    directly; ``attrs`` may be extended while the span is open (shard
    spans record their response counts this way).
    """

    __slots__ = ("kind", "path", "start", "end", "attrs")

    def __init__(self, kind: str, path: str, start: float,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.kind = kind
        self.path = path
        self.start = start
        self.end = start
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}


def _parent_path(path: str) -> Optional[str]:
    head, sep, _tail = path.rpartition("/")
    return head if sep else None


class SpanTracer:
    """Collects one deployment's spans; exports deterministic JSONL.

    ``clock`` supplies the virtual timestamps (usually the simulation
    engine's ``now``); without one, spans are stamped 0.0 — still
    deterministic, just flat.  The tracer is thread-safe by
    construction: finished spans and device rows are appended to lists
    (atomic under the GIL) and never mutated afterwards.
    """

    def __init__(self, seed: int = 0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.seed = seed
        self._clock = clock
        #: Finished round/shard spans, in completion order.
        self.spans: List[Span] = []
        #: Device verifies as lean tuples:
        #: (shard_path, device_id, virtual_time, status).
        self._device_rows: List[Tuple[str, str, float, str]] = []
        self._lock = named_lock("obs.tracer")

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or replace) the virtual clock spans are stamped with."""
        self._clock = clock

    def now(self) -> float:
        """The current virtual timestamp (0.0 without a clock)."""
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def trace_round(self, round_index: int, worker: str = "0",
                    **attrs: object) -> "_SpanContext":
        """Context manager for one collection round on one worker."""
        path = f"round:{round_index}/worker:{worker}"
        return _SpanContext(self, Span("round", path, self.now(),
                                       dict(attrs)))

    def trace_shard(self, round_span: Span, shard_index: int,
                    **attrs: object) -> "_SpanContext":
        """Context manager for one shard of an open round span."""
        path = f"{round_span.path}/shard:{shard_index}"
        return _SpanContext(self, Span("shard", path, self.now(),
                                       dict(attrs)))

    def record_device_verify(self, shard_span: Span, device_id: str,
                             status: str) -> None:
        """Record one device's verify under an open shard span (cheap)."""
        self._device_rows.append(
            (shard_span.path, device_id, self.now(), status))

    def _finish(self, span: Span) -> None:
        span.end = self.now()
        self.spans.append(span)

    def clear(self) -> None:
        """Drop every recorded span (a fresh deployment on one tracer)."""
        with self._lock:
            self.spans = []
            self._device_rows = []

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _iter_rows(self) -> Iterator[Dict[str, object]]:
        spans = list(self.spans)
        device_rows = list(self._device_rows)
        rows: List[Tuple[str, Dict[str, object]]] = []
        for span in spans:
            rows.append((span.path, {
                "path": span.path,
                "kind": span.kind,
                "span_id": derive_span_id(span.path, self.seed),
                "parent_id": self._parent_id(span.path),
                "start": span.start,
                "end": span.end,
                **({"attrs": dict(sorted(span.attrs.items()))}
                   if span.attrs else {}),
            }))
        for shard_path, device_id, time, status in device_rows:
            path = f"{shard_path}/device:{device_id}"
            rows.append((path, {
                "path": path,
                "kind": "device_verify",
                "span_id": derive_span_id(path, self.seed),
                "parent_id": derive_span_id(shard_path, self.seed),
                "start": time,
                "end": time,
                "attrs": {"device_id": device_id, "status": status},
            }))
        rows.sort(key=lambda item: item[0])
        for _path, row in rows:
            yield row

    def _parent_id(self, path: str) -> Optional[str]:
        parent = _parent_path(path)
        # A round span's path carries two segments (round + worker), so
        # a single-segment "parent" is not a real span: round spans are
        # roots.
        if parent is None or "/" not in parent:
            return None
        return derive_span_id(parent, self.seed)

    def export_rows(self) -> List[Dict[str, object]]:
        """Every finished span as a JSON-friendly row, sorted by path."""
        return list(self._iter_rows())

    def export_jsonl(self) -> str:
        """The whole trace as JSONL text (deterministic bytes)."""
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self._iter_rows())

    def write_jsonl(self, path: str) -> int:
        """Write the trace to ``path``; returns the number of rows."""
        text = self.export_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text.count("\n")

    @property
    def span_count(self) -> int:
        """Finished spans recorded so far (device verifies included)."""
        return len(self.spans) + len(self._device_rows)


class _SpanContext:
    """Context manager that finishes its span on exit (even on error)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: SpanTracer, span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self.span)
        return False
