"""Tests for the measurement record and its wire encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.base import encode_timestamp
from repro.core import Measurement, MeasurementDecodeError


def make(timestamp=12.5, digest=b"\xAB" * 32, tag=b"\xCD" * 32):
    return Measurement(timestamp=timestamp, digest=digest, tag=tag,
                       duration=0.7)


def test_encode_decode_roundtrip():
    original = make()
    decoded = Measurement.decode(original.encode())
    assert decoded.timestamp == pytest.approx(original.timestamp)
    assert decoded.digest == original.digest
    assert decoded.tag == original.tag


def test_size_bytes_matches_encoding():
    measurement = make()
    assert measurement.size_bytes == len(measurement.encode())


def test_authenticated_payload_binds_time_and_digest():
    measurement = make()
    assert measurement.authenticated_payload() == \
        encode_timestamp(12.5) + b"\xAB" * 32
    shifted = measurement.with_timestamp(13.0)
    assert shifted.authenticated_payload() != \
        measurement.authenticated_payload()
    assert shifted.tag == measurement.tag  # tags cannot be re-forged


def test_decode_rejects_truncated_record():
    encoded = make().encode()
    with pytest.raises(MeasurementDecodeError):
        Measurement.decode(encoded[:5])
    with pytest.raises(MeasurementDecodeError):
        Measurement.decode(encoded[:-3])


def test_decode_rejects_trailing_garbage():
    with pytest.raises(MeasurementDecodeError):
        Measurement.decode(make().encode() + b"extra")


def test_from_output_copies_fields(smartplus_arch):
    smartplus_arch.advance_clock(3.0)
    output = smartplus_arch.perform_measurement()
    measurement = Measurement.from_output(output)
    assert measurement.timestamp == output.timestamp
    assert measurement.digest == output.digest
    assert measurement.tag == output.tag
    assert measurement.duration == output.duration


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0, max_value=1e9, allow_nan=False),
       st.binary(min_size=1, max_size=64),
       st.binary(min_size=1, max_size=64))
def test_roundtrip_property(timestamp, digest, tag):
    measurement = Measurement(timestamp=timestamp, digest=digest, tag=tag)
    decoded = Measurement.decode(measurement.encode())
    assert decoded.digest == digest
    assert decoded.tag == tag
    assert abs(decoded.timestamp - timestamp) <= 1e-6
