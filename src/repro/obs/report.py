"""Trace & metrics analysis: answers, not counters.

PR 7 left the raw telemetry — span JSONL from the
:class:`~repro.obs.tracing.SpanTracer`, a Prometheus exposition from
the :class:`~repro.obs.metrics.MetricsRegistry`.  This module is the
layer above it: feed both into an :class:`ObsReport` and get

* a **machine-readable JSON summary** — the round → shard →
  device-verify tree reconstructed, per-round critical paths (which
  chain of spans actually determined when the round ended), shard skew
  (how unevenly the shard workers finished), and verify-outcome
  breakdowns, plus latency quantiles recomputed from the scraped
  histogram buckets when an exposition is supplied;
* a **self-contained HTML flame/timeline view** — one SVG timeline per
  round (shard bars in worker lanes, device-verify ticks), the summary
  tables alongside, zero external assets.

Everything trace-derived is a pure function of the span rows, which
are themselves deterministic under the virtual clock — so two
same-seed runs produce **byte-identical JSON summaries** (the obs test
suite pins this).  Metrics-derived figures (wall-clock latency
quantiles) are machine-dependent by nature and live in their own
``metrics`` section.

The module also hosts :func:`parse_exposition`, a minimal Prometheus
text-format parser (names, HELP/TYPE, label escaping, ``+Inf``), used
by the report generator to read scraped expositions and by the test
suite to round-trip :meth:`MetricsRegistry.render` output.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Quantiles the report recomputes from scraped histogram buckets.
REPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Histogram sample-name suffixes folded into their base family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


# ----------------------------------------------------------------------
# Prometheus text-format parsing
# ----------------------------------------------------------------------

@dataclass
class Sample:
    """One exposition sample line: full name, labels, value."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One ``# TYPE`` family and every sample attached to it."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


class ExpositionParseError(ValueError):
    """The exposition text violated the Prometheus text format."""


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:  # unknown escape: the backslash is literal
                out.append(ch)
                out.append(nxt)
            index += 2
            continue
        out.append(ch)
        index += 1
    return "".join(out)


def _unescape_help(text: str) -> str:
    # One left-to-right scan: sequential str.replace would corrupt a
    # literal backslash followed by "n" (escaped "\\n" reads as "\n").
    out: List[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "\\" and index + 1 < len(text):
            nxt = text[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
        out.append(ch)
        index += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # float() accepts NaN / scientific notation


def _parse_labels(block: str, line: str) -> Dict[str, str]:
    """Parse one ``name="value",...`` block (without the braces)."""
    labels: Dict[str, str] = {}
    index = 0
    length = len(block)
    while index < length:
        eq = block.find("=", index)
        if eq < 0:
            raise ExpositionParseError(f"malformed label block: {line!r}")
        name = block[index:eq].strip()
        if eq + 1 >= length or block[eq + 1] != '"':
            raise ExpositionParseError(f"unquoted label value: {line!r}")
        cursor = eq + 2
        raw: List[str] = []
        while cursor < length:
            ch = block[cursor]
            if ch == "\\" and cursor + 1 < length:
                raw.append(block[cursor:cursor + 2])
                cursor += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            cursor += 1
        else:
            raise ExpositionParseError(f"unterminated label value: {line!r}")
        labels[name] = _unescape_label_value("".join(raw))
        index = cursor + 1
        if index < length:
            if block[index] != ",":
                raise ExpositionParseError(
                    f"expected ',' between labels: {line!r}")
            index += 1
    return labels


def parse_exposition(text: str) -> Dict[str, MetricFamily]:
    """Parse a Prometheus text exposition into metric families.

    Returns families keyed by family name.  Histogram component
    samples (``_bucket`` / ``_sum`` / ``_count``) fold into their base
    family when it was declared a histogram; anything sampled without
    a ``# TYPE`` line becomes an ``untyped`` family of its own.
    Label values are unescaped (``\\\\``, ``\\"``, ``\\n``), and
    ``+Inf`` / ``-Inf`` / ``NaN`` values parse to their floats.
    """
    families: Dict[str, MetricFamily] = {}

    def family(name: str) -> MetricFamily:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = MetricFamily(name)
        return entry

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family(parts[2]).kind = parts[3] if len(parts) > 3 \
                    else "untyped"
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2]).help = _unescape_help(
                    parts[3] if len(parts) > 3 else "")
            continue  # other comments are ignored per the format
        brace = line.find("{")
        if brace >= 0:
            name = line[:brace]
            close = line.rfind("}")
            if close < brace:
                raise ExpositionParseError(f"unbalanced braces: {line!r}")
            labels = _parse_labels(line[brace + 1:close], line)
            rest = line[close + 1:].strip()
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            rest = rest.strip()
        if not rest:
            raise ExpositionParseError(f"sample without a value: {line!r}")
        value = _parse_value(rest.split()[0])  # optional timestamp ignored
        base = name
        for suffix in _HISTOGRAM_SUFFIXES:
            if name.endswith(suffix):
                candidate = name[:-len(suffix)]
                if candidate in families and \
                        families[candidate].kind == "histogram":
                    base = candidate
                    break
        family(base).samples.append(Sample(name, labels, value))
    return families


def histogram_quantiles(family: MetricFamily,
                        quantiles: Sequence[float] = REPORT_QUANTILES
                        ) -> List[Dict[str, object]]:
    """Quantile estimates per labelled series of a scraped histogram.

    The same bucket-interpolation model as
    :meth:`repro.obs.metrics.Metric.quantile`, recomputed from the
    cumulative ``_bucket`` samples a scrape carries.  Returns one row
    per series: its labels (minus ``le``), observation count, and the
    estimate per quantile (``None`` for an empty series).
    """
    series: Dict[Tuple[Tuple[str, str], ...],
                 List[Tuple[float, float]]] = {}
    for sample in family.samples:
        if not sample.name.endswith("_bucket"):
            continue
        key = tuple(sorted((k, v) for k, v in sample.labels.items()
                           if k != "le"))
        series.setdefault(key, []).append(
            (_parse_value(sample.labels.get("le", "+Inf")), sample.value))
    rows: List[Dict[str, object]] = []
    for key in sorted(series):
        buckets = sorted(series[key])
        total = buckets[-1][1] if buckets else 0.0
        row: Dict[str, object] = {
            "labels": dict(key),
            "count": total,
            "quantiles": {},
        }
        for q in quantiles:
            row["quantiles"][f"p{round(q * 100):02d}"] = \
                _quantile_from_cumulative(buckets, q) if total else None
        rows.append(row)
    return rows


def _quantile_from_cumulative(buckets: List[Tuple[float, float]],
                              q: float) -> Optional[float]:
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    previous_bound = 0.0 if buckets and buckets[0][0] > 0 else None
    previous_cumulative = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank and cumulative > previous_cumulative:
            if bound == float("inf"):
                # No resolution past the last finite boundary.
                finite = [b for b, _ in buckets if b != float("inf")]
                return finite[-1] if finite else None
            lower = previous_bound if previous_bound is not None else bound
            inside = cumulative - previous_cumulative
            fraction = (rank - previous_cumulative) / inside
            fraction = min(max(fraction, 0.0), 1.0)
            return lower + (bound - lower) * fraction
        previous_bound = bound
        previous_cumulative = cumulative
    finite = [b for b, _ in buckets if b != float("inf")]
    return finite[-1] if finite else None


# ----------------------------------------------------------------------
# Trace-tree reconstruction
# ----------------------------------------------------------------------

def load_trace(path: str) -> List[Dict[str, object]]:
    """Read one span-trace JSONL file back into rows."""
    rows: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _segments(path: str) -> List[Tuple[str, str]]:
    parts: List[Tuple[str, str]] = []
    for segment in path.split("/"):
        kind, _, value = segment.partition(":")
        parts.append((kind, value))
    return parts


@dataclass
class _ShardNode:
    row: Dict[str, object]
    devices: List[Dict[str, object]] = field(default_factory=list)


@dataclass
class _WorkerNode:
    row: Dict[str, object]
    shards: Dict[int, _ShardNode] = field(default_factory=dict)


def _build_tree(rows: Iterable[Dict[str, object]]
                ) -> Dict[int, Dict[str, _WorkerNode]]:
    """Round index → worker id → its shard/device subtree."""
    rounds: Dict[int, Dict[str, _WorkerNode]] = {}
    shard_index: Dict[str, _ShardNode] = {}
    deferred: List[Dict[str, object]] = []
    for row in rows:
        kind = row.get("kind")
        segments = _segments(str(row["path"]))
        if kind == "round":
            round_no = int(segments[0][1])
            worker = segments[1][1]
            rounds.setdefault(round_no, {})[worker] = _WorkerNode(row)
        elif kind == "shard":
            round_no = int(segments[0][1])
            worker = segments[1][1]
            shard_no = int(segments[2][1])
            worker_node = rounds.setdefault(round_no, {}).setdefault(
                worker, _WorkerNode({"path": "/".join(
                    f"{k}:{v}" for k, v in segments[:2]),
                    "kind": "round", "start": row["start"],
                    "end": row["end"]}))
            node = _ShardNode(row)
            worker_node.shards[shard_no] = node
            shard_path = "/".join(f"{k}:{v}" for k, v in segments[:3])
            shard_index[shard_path] = node
        elif kind == "device_verify":
            deferred.append(row)
    for row in deferred:
        shard_path, _, _device = str(row["path"]).rpartition("/")
        node = shard_index.get(shard_path)
        if node is not None:
            node.devices.append(row)
    return rounds


def _span_entry(row: Mapping[str, object]) -> Dict[str, object]:
    start = float(row["start"])
    end = float(row["end"])
    return {"path": row["path"], "start": start, "end": end,
            "duration": end - start}


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------

def build_summary(rows: Sequence[Dict[str, object]],
                  exposition: Optional[str] = None,
                  title: str = "trace") -> Dict[str, object]:
    """The machine-readable analysis of one span trace.

    Pure function of ``rows`` (plus the optional scraped
    ``exposition``, whose wall-clock figures go to the separate
    ``metrics`` section): same trace in, byte-identical JSON out.
    """
    tree = _build_tree(rows)
    rounds_out: List[Dict[str, object]] = []
    status_totals: Dict[str, int] = {}
    device_total = 0
    for round_no in sorted(tree):
        workers = tree[round_no]
        worker_rows: List[Dict[str, object]] = []
        shard_durations: List[float] = []
        round_statuses: Dict[str, int] = {}
        round_devices = 0
        starts: List[float] = []
        ends: List[float] = []
        for worker_id in sorted(workers):
            node = workers[worker_id]
            entry = _span_entry(node.row)
            starts.append(entry["start"])
            ends.append(entry["end"])
            shards_out: List[Dict[str, object]] = []
            for shard_no in sorted(node.shards):
                shard = node.shards[shard_no]
                shard_entry = _span_entry(shard.row)
                shard_durations.append(shard_entry["duration"])
                statuses: Dict[str, int] = {}
                for device in shard.devices:
                    attrs = device.get("attrs", {})
                    status = str(attrs.get("status", "unknown"))
                    statuses[status] = statuses.get(status, 0) + 1
                    round_statuses[status] = \
                        round_statuses.get(status, 0) + 1
                round_devices += len(shard.devices)
                attrs = node.shards[shard_no].row.get("attrs", {})
                shard_entry.update({
                    "shard": shard_no,
                    "devices": attrs.get(
                        "devices", len(shard.devices) or None),
                    "received": attrs.get("received"),
                    "lost": attrs.get("lost"),
                    "statuses": dict(sorted(statuses.items())),
                })
                shards_out.append(shard_entry)
            worker_rows.append({
                "worker": worker_id,
                **entry,
                "shards": shards_out,
            })
        device_total += round_devices
        for status, count in round_statuses.items():
            status_totals[status] = status_totals.get(status, 0) + count
        round_start = min(starts) if starts else 0.0
        round_end = max(ends) if ends else 0.0
        skew = (max(shard_durations) - min(shard_durations)) \
            if shard_durations else 0.0
        rounds_out.append({
            "round": round_no,
            "start": round_start,
            "end": round_end,
            "duration": round_end - round_start,
            "workers": worker_rows,
            "shard_count": len(shard_durations),
            "shard_skew": skew,
            "devices": round_devices,
            "statuses": dict(sorted(round_statuses.items())),
            "critical_path": _critical_path(workers),
        })
    summary: Dict[str, object] = {
        "title": title,
        "rounds": rounds_out,
        "totals": {
            "rounds": len(rounds_out),
            "spans": len(rows),
            "device_verifies": device_total,
            "statuses": dict(sorted(status_totals.items())),
        },
    }
    if exposition is not None:
        summary["metrics"] = _metrics_section(exposition)
    return summary


def _critical_path(workers: Mapping[str, _WorkerNode]
                   ) -> List[Dict[str, object]]:
    """The span chain that determined when the round ended.

    Walk down from the latest-finishing worker through its
    latest-finishing shard to that shard's last device verify: every
    link is the element whose completion the level above was waiting
    on, so shortening any link shortens the round.
    """
    if not workers:
        return []
    worker_id = max(sorted(workers),
                    key=lambda wid: float(workers[wid].row["end"]))
    node = workers[worker_id]
    chain = [{**_span_entry(node.row), "kind": "round"}]
    if not node.shards:
        return chain
    shard_no = max(sorted(node.shards),
                   key=lambda s: float(node.shards[s].row["end"]))
    shard = node.shards[shard_no]
    chain.append({**_span_entry(shard.row), "kind": "shard"})
    if shard.devices:
        last = max(shard.devices,
                   key=lambda d: (float(d["end"]), str(d["path"])))
        chain.append({**_span_entry(last), "kind": "device_verify",
                      "status": str(last.get("attrs", {}).get("status",
                                                              "unknown"))})
    return chain


#: Counter families surfaced verbatim in the summary's metrics section.
_REPORT_COUNTERS = (
    "repro_reports_total",
    "repro_rounds_total",
    "repro_requests_sent_total",
    "repro_responses_lost_total",
    "repro_stale_responses_total",
    "repro_slo_violations_total",
)


def _metrics_section(exposition: str) -> Dict[str, object]:
    families = parse_exposition(exposition)
    section: Dict[str, object] = {"counters": {}, "verify_latency": []}
    for name in _REPORT_COUNTERS:
        family = families.get(name)
        if family is None:
            continue
        rows = {}
        for sample in family.samples:
            key = ",".join(f"{k}={v}" for k, v in
                           sorted(sample.labels.items())) or "_"
            rows[key] = sample.value
        section["counters"][name] = rows
    verify = families.get("repro_device_verify_seconds")
    if verify is not None:
        section["verify_latency"] = histogram_quantiles(verify)
    return section


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------

_HTML_STYLE = """
body { font: 13px/1.45 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.6em 0; }
td, th { border: 1px solid #d8d8e0; padding: 0.25em 0.7em;
         text-align: right; }
th { background: #f4f4f8; } td.l, th.l { text-align: left; }
svg { background: #fafafc; border: 1px solid #e4e4ec;
      display: block; margin: 0.6em 0; }
.lane-label { font-size: 10px; fill: #555; }
.crit { color: #b3261e; }
footer { margin-top: 3em; color: #888; font-size: 0.85em; }
"""

#: Flat, order-stable shard palette (cycled by shard index).
_SHARD_COLORS = ("#4c6ef5", "#12b886", "#f59f00", "#e64980",
                 "#7950f2", "#15aabf", "#fa5252", "#74b816")

_STATUS_COLORS = {"healthy": "#12b886", "infected": "#e64980",
                  "tampered": "#b3261e", "no_data": "#868e96"}


def _format_seconds(value: float) -> str:
    return f"{value:.6g}s"


def _svg_timeline(round_row: Mapping[str, object],
                  max_device_ticks: int = 400) -> str:
    """One round's flame/timeline view as an inline SVG."""
    start = float(round_row["start"])
    end = float(round_row["end"])
    span = max(end - start, 1e-9)
    width = 900.0
    left = 90.0
    lane_height = 18.0

    def x(t: float) -> float:
        return left + (float(t) - start) / span * (width - left - 10)

    lanes: List[str] = []
    y = 4.0
    for worker in round_row["workers"]:
        wy = y
        lanes.append(
            f'<text class="lane-label" x="4" y="{wy + 12:.1f}">'
            f'worker {_html.escape(str(worker["worker"]))}</text>')
        lanes.append(
            f'<rect x="{x(worker["start"]):.2f}" y="{wy:.1f}" '
            f'width="{max(x(worker["end"]) - x(worker["start"]), 1.0):.2f}"'
            f' height="{lane_height - 4:.1f}" rx="2" fill="#dbe4ff">'
            f'<title>{_html.escape(str(worker["path"]))} '
            f'({_format_seconds(worker["duration"])})</title></rect>')
        y += lane_height
        for shard in worker["shards"]:
            color = _SHARD_COLORS[int(shard["shard"]) % len(_SHARD_COLORS)]
            lanes.append(
                f'<text class="lane-label" x="18" y="{y + 11:.1f}">'
                f'shard {shard["shard"]}</text>')
            lanes.append(
                f'<rect x="{x(shard["start"]):.2f}" y="{y:.1f}" '
                f'width="{max(x(shard["end"]) - x(shard["start"]), 1.0):.2f}'
                f'" height="{lane_height - 6:.1f}" rx="2" fill="{color}" '
                f'fill-opacity="0.75"><title>'
                f'{_html.escape(str(shard["path"]))} '
                f'({_format_seconds(shard["duration"])}, '
                f'devices={shard.get("devices")})</title></rect>')
            y += lane_height
        y += 4.0
    ticks: List[str] = []
    device_rows = round_row.get("_device_ticks") or []
    if 0 < len(device_rows) <= max_device_ticks:
        for tick in device_rows:
            color = _STATUS_COLORS.get(str(tick["status"]), "#495057")
            ticks.append(
                f'<line x1="{x(tick["time"]):.2f}" y1="{y:.1f}" '
                f'x2="{x(tick["time"]):.2f}" y2="{y + 8:.1f}" '
                f'stroke="{color}" stroke-width="1">'
                f'<title>{_html.escape(str(tick["device"]))} '
                f'{_html.escape(str(tick["status"]))}</title></line>')
        y += 14.0
    height = y + 18.0
    axis = (f'<line x1="{left}" y1="{height - 14:.1f}" x2="{width - 10}" '
            f'y2="{height - 14:.1f}" stroke="#adb5bd"/>'
            f'<text class="lane-label" x="{left}" y="{height - 2:.1f}">'
            f'{start:.3f}s</text>'
            f'<text class="lane-label" x="{width - 70:.1f}" '
            f'y="{height - 2:.1f}">{end:.3f}s</text>')
    return (f'<svg width="{width:.0f}" height="{height:.0f}" '
            f'viewBox="0 0 {width:.0f} {height:.0f}" '
            f'xmlns="http://www.w3.org/2000/svg">'
            + "".join(lanes) + "".join(ticks) + axis + "</svg>")


def _device_ticks(rows: Sequence[Dict[str, object]]
                  ) -> Dict[int, List[Dict[str, object]]]:
    ticks: Dict[int, List[Dict[str, object]]] = {}
    for row in rows:
        if row.get("kind") != "device_verify":
            continue
        segments = _segments(str(row["path"]))
        round_no = int(segments[0][1])
        attrs = row.get("attrs", {})
        ticks.setdefault(round_no, []).append({
            "time": float(row["start"]),
            "device": attrs.get("device_id", segments[-1][1]),
            "status": attrs.get("status", "unknown"),
        })
    return ticks


def render_html(summary: Mapping[str, object],
                rows: Optional[Sequence[Dict[str, object]]] = None,
                title: Optional[str] = None) -> str:
    """The self-contained flame/timeline report for one summary.

    ``rows`` (the original span rows) add per-device tick marks to the
    timelines; without them the report still renders every table and
    shard bar from the summary alone.  The JSON summary is embedded in
    a ``<script type="application/json">`` block so the HTML file *is*
    the machine-readable artifact too.
    """
    title = title if title is not None else str(summary.get("title",
                                                            "trace"))
    ticks = _device_ticks(rows) if rows is not None else {}
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>obs report: {_html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Observability report — {_html.escape(title)}</h1>",
    ]
    totals = summary.get("totals", {})
    parts.append("<table><tr><th class='l'>rounds</th>"
                 "<th>spans</th><th>device verifies</th></tr>"
                 f"<tr><td class='l'>{totals.get('rounds', 0)}</td>"
                 f"<td>{totals.get('spans', 0)}</td>"
                 f"<td>{totals.get('device_verifies', 0)}</td></tr>"
                 "</table>")
    statuses = totals.get("statuses", {})
    if statuses:
        parts.append("<table><tr>" + "".join(
            f"<th>{_html.escape(str(status))}</th>"
            for status in statuses) + "</tr><tr>" + "".join(
            f"<td>{count}</td>" for count in statuses.values())
            + "</tr></table>")
    for round_row in summary.get("rounds", []):
        round_no = round_row["round"]
        parts.append(
            f"<h2>Round {round_no} — "
            f"{_format_seconds(round_row['duration'])} virtual, "
            f"{round_row['shard_count']} shard(s), skew "
            f"{_format_seconds(round_row['shard_skew'])}</h2>")
        enriched = dict(round_row)
        enriched["_device_ticks"] = ticks.get(int(round_no), [])
        parts.append(_svg_timeline(enriched))
        chain = round_row.get("critical_path", [])
        if chain:
            parts.append("<p class='crit'>critical path: " + " → ".join(
                f"{_html.escape(str(link['path']))} "
                f"({_format_seconds(link['duration'])})"
                for link in chain) + "</p>")
    metrics = summary.get("metrics")
    if metrics:
        verify = metrics.get("verify_latency") or []
        if verify:
            parts.append("<h2>Verify latency (wall clock, scraped)</h2>"
                         "<table><tr><th class='l'>series</th><th>count"
                         "</th><th>p50</th><th>p90</th><th>p99</th></tr>")
            for row in verify:
                labels = ",".join(f"{k}={v}" for k, v in
                                  sorted(row["labels"].items())) or "—"
                cells = "".join(
                    f"<td>{_format_seconds(q) if q is not None else '—'}"
                    f"</td>"
                    for q in (row["quantiles"].get("p50"),
                              row["quantiles"].get("p90"),
                              row["quantiles"].get("p99")))
                parts.append(f"<tr><td class='l'>{_html.escape(labels)}"
                             f"</td><td>{row['count']:.0f}</td>{cells}"
                             f"</tr>")
            parts.append("</table>")
    parts.append("<footer>generated by repro.obs.report — timelines are "
                 "virtual (engine) time; wall-clock figures only in the "
                 "scraped-metrics tables</footer>")
    parts.append("<script type='application/json' id='obs-summary'>"
                 + summary_json(summary) + "</script>")
    parts.append("</body></html>")
    return "".join(parts)


def summary_json(summary: Mapping[str, object]) -> str:
    """The summary's canonical (byte-stable) JSON text."""
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------

class ObsReport:
    """One analysis run: span rows in, JSON summary and HTML view out."""

    def __init__(self, rows: Sequence[Dict[str, object]],
                 exposition: Optional[str] = None,
                 title: str = "trace") -> None:
        self.rows = list(rows)
        self.exposition = exposition
        self.title = title
        self.summary = build_summary(self.rows, exposition=exposition,
                                     title=title)

    @classmethod
    def from_tracer(cls, tracer, exposition: Optional[str] = None,
                    title: str = "trace") -> "ObsReport":
        """Analyze a live :class:`~repro.obs.tracing.SpanTracer`."""
        return cls(tracer.export_rows(), exposition=exposition,
                   title=title)

    @classmethod
    def from_observability(cls, obs, title: str = "trace") -> "ObsReport":
        """Analyze one :class:`~repro.obs.Observability`: its tracer's
        rows plus its registry's current exposition."""
        return cls(obs.tracer.export_rows(),
                   exposition=obs.render_metrics(), title=title)

    @classmethod
    def from_files(cls, trace_path: str,
                   metrics_path: Optional[str] = None,
                   title: Optional[str] = None) -> "ObsReport":
        """Analyze an exported trace JSONL (and optional scraped
        exposition text file)."""
        exposition = None
        if metrics_path is not None:
            with open(metrics_path, "r", encoding="utf-8") as handle:
                exposition = handle.read()
        return cls(load_trace(trace_path), exposition=exposition,
                   title=title if title is not None else trace_path)

    def to_json(self) -> str:
        """The canonical JSON summary text (byte-stable)."""
        return summary_json(self.summary)

    def to_html(self) -> str:
        """The self-contained HTML flame/timeline report."""
        return render_html(self.summary, rows=self.rows, title=self.title)

    def write(self, html_path: Optional[str] = None,
              json_path: Optional[str] = None) -> Dict[str, str]:
        """Write the HTML and/or JSON artifacts; returns written paths."""
        written: Dict[str, str] = {}
        if json_path is not None:
            with open(json_path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
            written["json"] = json_path
        if html_path is not None:
            with open(html_path, "w", encoding="utf-8") as handle:
                handle.write(self.to_html())
            written["html"] = html_path
        return written


def rollup_summaries(cell_summaries: Mapping[str, Mapping[str, object]]
                     ) -> Dict[str, object]:
    """A fleet-level rollup over per-cell report summaries.

    One row per cell (rounds, device verifies, total virtual duration,
    worst shard skew, status counts) plus campaign-wide totals — the
    companion artifact :meth:`repro.campaign.runner.CampaignRunner.
    write_reports` emits next to the per-cell reports.
    """
    cells_out: Dict[str, object] = {}
    totals = {"rounds": 0, "device_verifies": 0, "statuses": {}}
    for cell in sorted(cell_summaries):
        summary = cell_summaries[cell]
        cell_totals = summary.get("totals", {})
        rounds = summary.get("rounds", [])
        duration = sum(float(r["duration"]) for r in rounds)
        skew = max((float(r["shard_skew"]) for r in rounds), default=0.0)
        cells_out[cell] = {
            "rounds": cell_totals.get("rounds", 0),
            "device_verifies": cell_totals.get("device_verifies", 0),
            "virtual_duration": duration,
            "max_shard_skew": skew,
            "statuses": cell_totals.get("statuses", {}),
        }
        totals["rounds"] += cell_totals.get("rounds", 0)
        totals["device_verifies"] += cell_totals.get("device_verifies", 0)
        for status, count in cell_totals.get("statuses", {}).items():
            totals["statuses"][status] = \
                totals["statuses"].get(status, 0) + count
    totals["statuses"] = dict(sorted(totals["statuses"].items()))
    return {"cells": cells_out, "totals": totals}


def render_rollup_html(rollup: Mapping[str, object],
                       title: str = "campaign") -> str:
    """A compact HTML table view of a campaign rollup."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>obs rollup: {_html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Campaign rollup — {_html.escape(title)}</h1>",
        "<table><tr><th class='l'>cell</th><th>rounds</th>"
        "<th>device verifies</th><th>virtual duration</th>"
        "<th>max shard skew</th><th class='l'>statuses</th></tr>",
    ]
    for cell, row in rollup.get("cells", {}).items():
        statuses = ", ".join(f"{k}={v}"
                             for k, v in row.get("statuses", {}).items())
        parts.append(
            f"<tr><td class='l'>{_html.escape(str(cell))}</td>"
            f"<td>{row['rounds']}</td><td>{row['device_verifies']}</td>"
            f"<td>{_format_seconds(row['virtual_duration'])}</td>"
            f"<td>{_format_seconds(row['max_shard_skew'])}</td>"
            f"<td class='l'>{_html.escape(statuses)}</td></tr>")
    totals = rollup.get("totals", {})
    parts.append(
        f"<tr><th class='l'>total</th><th>{totals.get('rounds', 0)}</th>"
        f"<th>{totals.get('device_verifies', 0)}</th><th></th><th></th>"
        f"<th class='l'>{_html.escape(', '.join(f'{k}={v}' for k, v in totals.get('statuses', {}).items()))}</th></tr>")
    parts.append("</table>")
    parts.append("<script type='application/json' id='obs-rollup'>"
                 + json.dumps(rollup, sort_keys=True, indent=2)
                 + "</script>")
    parts.append("</body></html>")
    return "".join(parts)
