"""Tests for ShardedFleetVerifier: shard assignment, merge exactness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeviceStatus
from repro.fleet import (
    Fleet,
    FleetVerifier,
    MemorySink,
    ShardedFleetVerifier,
)
from repro.store import MemoryStore
from tests.fleet.helpers import health_bytes, report_key
from tests.fleet.helpers import small_profile as _small_profile

FIRMWARE = b"sharded-test-firmware"
MALWARE = b"sharded-test-implant!"


def small_profile():
    return _small_profile(FIRMWARE)


def provision_pair(count, shards, infected=(), rounds=1, **sharded_kwargs):
    """Two deterministic twin fleets: single-verifier and sharded.

    Provisioning is a pure function of profile and master secret, so
    both fleets carry identical devices with identical measurement
    histories; only the verifier topology differs.
    """
    outcomes = []
    for shard_count in (None, shards):
        fleet = Fleet.provision(small_profile(), count,
                                master_secret=b"master",
                                shards=shard_count,
                                **(sharded_kwargs if shard_count else {}))
        horizon = 0.0
        all_reports = []
        for _ in range(rounds):
            horizon += 60.0
            fleet.run_until(horizon)
            for device_id in infected:
                fleet.device(device_id).load_application(MALWARE)
            fleet.run_until(horizon + 20.0)
            horizon += 20.0
            for device_id in infected:
                fleet.device(device_id).load_application(FIRMWARE)
            all_reports.append(fleet.collect_all())
        outcomes.append((fleet, all_reports))
    return outcomes


def test_sharded_round_matches_single_verifier():
    (single, single_rounds), (sharded, sharded_rounds) = provision_pair(
        20, shards=3, infected=("dev-0004", "dev-0011"))
    for single_reports, sharded_reports in zip(single_rounds, sharded_rounds):
        assert [report_key(r) for r in single_reports] == \
            [report_key(r) for r in sharded_reports]
    assert health_bytes(single.verifier) == health_bytes(sharded.verifier)
    assert sharded.health.flagged_devices == {"dev-0004", "dev-0011"}


def test_shard_assignment_is_stable_round_robin():
    verifier = ShardedFleetVerifier(small_profile().config, shards=3)
    profile = small_profile()
    for index in range(7):
        verifier.enroll_device(
            profile.provision(f"s-{index}", master_secret=b"master"))
    assert [verifier.shard_of(f"s-{index}") for index in range(7)] == \
        [0, 1, 2, 0, 1, 2, 0]
    assert verifier.device_count == 7
    assert verifier.enrolled_ids() == [f"s-{index}" for index in range(7)]
    assert [worker.device_count for worker in verifier.workers] == [3, 2, 2]
    with pytest.raises(KeyError):
        verifier.shard_of("ghost")


def test_sharded_requires_at_least_one_shard_and_known_mode():
    config = small_profile().config
    with pytest.raises(ValueError):
        ShardedFleetVerifier(config, shards=0)
    with pytest.raises(ValueError):
        ShardedFleetVerifier(config, worker_mode="fork")


@settings(max_examples=12, deadline=None)
@given(count=st.integers(min_value=1, max_value=16),
       shards=st.integers(min_value=1, max_value=5),
       infected_seed=st.integers(min_value=0, max_value=2 ** 16),
       rounds=st.integers(min_value=1, max_value=2))
def test_shard_merge_health_byte_identical_property(count, shards,
                                                    infected_seed, rounds):
    """ShardedFleetVerifier health == single-verifier health, bytewise.

    Whatever the fleet size, shard count, infection pattern and number
    of rounds, merging the per-shard aggregates must reproduce the
    single verifier's aggregate exactly — floats included, thanks to
    the exact freshness accumulator.
    """
    infected = tuple(f"dev-{index:04d}"
                     for index in range(count)
                     if (infected_seed >> index) & 1)
    (single, _), (sharded, _) = provision_pair(count, shards,
                                               infected=infected,
                                               rounds=rounds)
    assert health_bytes(single.verifier) == health_bytes(sharded.verifier)
    assert single.health.reports_total == count * rounds


def test_sharded_shared_store_checkpoint_identical_to_single():
    single_store, sharded_store = MemoryStore(), MemoryStore()
    single = Fleet.provision(small_profile(), 10, master_secret=b"master",
                             store=single_store)
    sharded = Fleet.provision(small_profile(), 10, master_secret=b"master",
                              shards=4, store=sharded_store)
    for fleet in (single, sharded):
        fleet.run_until(30.0)
        fleet.device("dev-0002").load_application(MALWARE)
        fleet.run_until(60.0)
        fleet.collect_all()
    assert single_store.state_bytes() == sharded_store.state_bytes()
    assert single_store.state_bytes()  # a checkpoint was actually written
    assert sharded.health.flagged_devices == {"dev-0002"}


def test_sharded_thread_mode_matches_loop_mode():
    (loop_fleet, loop_rounds), _ = provision_pair(12, shards=3)
    thread_fleet = Fleet.provision(small_profile(), 12,
                                   master_secret=b"master", shards=3)
    thread_fleet.verifier.worker_mode = "thread"
    thread_fleet.run_until(80.0)
    thread_reports = thread_fleet.collect_all()
    assert [report_key(r) for r in loop_rounds[0]] == \
        [report_key(r) for r in thread_reports]
    assert health_bytes(loop_fleet.verifier) == \
        health_bytes(thread_fleet.verifier)


def test_sharded_thread_mode_rejects_engine_bound_transport():
    fleet = Fleet.provision(small_profile(), 6, master_secret=b"master",
                            shards=2, transport="simulated-network")
    fleet.verifier.worker_mode = "thread"
    fleet.run_until(60.0)
    with pytest.raises(ValueError, match="worker_mode='loop'"):
        fleet.collect_all()


def test_sharded_loop_mode_overlaps_simulated_network_rounds():
    fleet = Fleet.provision(small_profile(), 12, master_secret=b"master",
                            shards=4, transport="simulated-network")
    fleet.run_until(60.0)
    before = fleet.now
    reports = fleet.collect_all(batch_size=3)
    assert len(reports) == 12
    assert {r.status for r in reports} == {DeviceStatus.HEALTHY}
    # Four shard workers' rounds overlapped in virtual time: the whole
    # fleet cost scarcely more than one round trip, not one per shard.
    assert fleet.now - before < 4 * (2 * 0.005)


def test_sharded_sinks_receive_reports_in_enrollment_order():
    sink = MemorySink()
    fleet = Fleet.provision(small_profile(), 9, master_secret=b"master",
                            shards=2, sinks=(sink,))
    fleet.run_until(60.0)
    fleet.collect_all()
    assert [report.device_id for report in sink.reports] == fleet.device_ids()


def test_sharded_round_stats_merge():
    fleet = Fleet.provision(small_profile(), 10, master_secret=b"master",
                            shards=2)
    fleet.run_until(60.0)
    reports = fleet.collect_all(batch_size=3)
    stats = reports.stats
    assert stats.requests_sent == 10
    assert stats.responses_received == 10
    assert stats.responses_lost == 0
    # Shards of 5 devices with batch_size 3: two pipeline shards each.
    assert stats.shards == 4
    assert stats.wall_seconds > 0
    assert fleet.health.round_stats == [stats]


def test_sharded_last_collection_time_and_enrollment_lookups():
    fleet = Fleet.provision(small_profile(), 6, master_secret=b"master",
                            shards=3)
    fleet.run_until(60.0)
    fleet.collect_all()
    verifier = fleet.verifier
    assert verifier.is_enrolled("dev-0000")
    assert not verifier.is_enrolled("ghost")
    assert verifier.last_collection_time("dev-0003") == pytest.approx(60.0)
    assert verifier.last_collection_time("ghost") is None
    assert verifier.worker_for("dev-0004").is_enrolled("dev-0004")


def test_sharded_close_is_idempotent():
    sink = MemorySink()
    verifier = ShardedFleetVerifier(small_profile().config, shards=2,
                                    sinks=(sink,), store=MemoryStore())
    verifier.close()
    verifier.close()  # second close must be a no-op


class _ExplodingSink(MemorySink):
    """A sink that dies mid-fanout, then refuses further emits."""

    def __init__(self):
        super().__init__()
        self.closed = False

    def emit(self, report):
        if self.closed:
            raise ValueError("emit on a closed sink")
        if len(self.reports) >= 3:
            raise ConnectionError("log pipeline gone")
        super().emit(report)

    def close(self):
        self.closed = True


def test_sharded_retry_round_survives_sink_failure():
    """A dead sink is pruned so the retry streams to the survivors."""
    exploding, survivor = _ExplodingSink(), MemorySink()
    fleet = Fleet.provision(small_profile(), 8, master_secret=b"master",
                            shards=2, sinks=(exploding, survivor))
    fleet.run_until(60.0)
    with pytest.raises(ConnectionError):
        fleet.collect_all()
    assert exploding not in fleet.verifier.sinks
    assert survivor in fleet.verifier.sinks
    fleet.run_until(120.0)
    retry = fleet.collect_all()
    assert len(retry) == 8
    # Three before the failure, eight from the retry round.
    assert len(survivor.reports) == 11


def test_sharded_collect_refuses_to_block_running_loop():
    import asyncio

    fleet = Fleet.provision(small_profile(), 4, master_secret=b"master",
                            shards=2)
    fleet.run_until(60.0)

    async def scenario():
        fleet.collect_all()

    with pytest.raises(RuntimeError, match="synchronous code"):
        asyncio.run(scenario())


def test_single_shard_equals_plain_fleet_verifier():
    (single, single_rounds), (sharded, sharded_rounds) = provision_pair(
        5, shards=1)
    assert [report_key(r) for r in single_rounds[0]] == \
        [report_key(r) for r in sharded_rounds[0]]
    assert isinstance(sharded.verifier, ShardedFleetVerifier)
    assert isinstance(single.verifier, FleetVerifier)
    assert health_bytes(single.verifier) == health_bytes(sharded.verifier)


def test_more_workers_than_devices_counts_real_shards_only():
    fleet = Fleet.provision(small_profile(), 2, master_secret=b"master",
                            shards=4)
    fleet.run_until(60.0)
    reports = fleet.collect_all()
    assert len(reports) == 2
    # Two device-less workers must not invent shards in the merge.
    assert reports.stats.shards == 2
    assert reports.stats.requests_sent == 2


def test_sharded_thread_mode_shares_one_sqlite_store(tmp_path):
    """Worker threads must be able to write the shared SQLite store."""
    from repro.store import SqliteStore

    fleet = Fleet.provision(small_profile(), 8, master_secret=b"master",
                            shards=2, store=SqliteStore(tmp_path / "s.db"))
    fleet.verifier.worker_mode = "thread"
    fleet.run_until(60.0)
    reports = fleet.collect_all()
    assert len(reports) == 8
    assert fleet.verifier.store.state_bytes()  # checkpoint written
    fleet.close()


class _LockProbeStore(MemoryStore):
    """Records whether the shared-store lock was held at checkpoint."""

    def __init__(self):
        super().__init__()
        self.shared_lock = None
        self.checkpoint_lock_held = []

    def checkpoint(self, health, last_collection_times,
                   rounds_completed=0):
        if self.shared_lock is not None:
            self.checkpoint_lock_held.append(
                self.shared_lock._is_owned())
        super().checkpoint(health, last_collection_times,
                           rounds_completed=rounds_completed)


def test_sharded_checkpoint_goes_through_the_locked_store():
    """The merged checkpoint must hold the same lock shard writes take.

    A pipelined round can still have a straggler shard appending report
    rows when the parent checkpoints; writing around the lock would
    interleave with it on the single-writer backends.
    """
    probe = _LockProbeStore()
    fleet = Fleet.provision(small_profile(), 8, master_secret=b"master",
                            shards=2, store=probe)
    probe.shared_lock = fleet.verifier._shared_store._lock
    fleet.run_until(30.0)
    fleet.collect_all()
    assert probe.checkpoint_lock_held
    assert all(probe.checkpoint_lock_held)
