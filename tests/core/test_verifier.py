"""Tests for the ERASMUS verifier."""

import pytest

from repro.adversary import TamperingMalware
from repro.core import CollectResponse, DeviceStatus, ErasmusVerifier, \
    Measurement
from repro.core.verifier import MeasurementVerdict


def run_schedule(prover, engine, until):
    prover.attach(engine)
    engine.run(until=until)


def collect(prover, verifier, time, k=None):
    response = prover.handle_collect(verifier.create_collect_request(k))
    return verifier.verify_collection(prover.device_id, response, time)


def test_healthy_history_verifies(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    report = collect(prover, verifier, 60.0)
    assert report.status is DeviceStatus.HEALTHY
    assert report.measurement_count == 6
    assert report.freshness == pytest.approx(0.0)
    assert not report.detected_infection()


def test_unenrolled_device_rejected(erasmus_setup, config):
    prover, _verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 30.0)
    stranger = ErasmusVerifier(config)
    response = prover.handle_collect(stranger.create_collect_request())
    with pytest.raises(KeyError):
        stranger.verify_collection(prover.device_id, response, 30.0)


def test_infected_measurements_detected(erasmus_setup, malware_image,
                                        firmware):
    prover, verifier, engine, arch = erasmus_setup
    run_schedule(prover, engine, 30.0)
    arch.load_application(malware_image)
    engine.run(until=60.0)
    arch.load_application(firmware)
    engine.run(until=90.0)
    report = collect(prover, verifier, 90.0)
    assert report.status is DeviceStatus.INFECTED
    assert set(report.infected_timestamps) == {40.0, 50.0, 60.0}


def test_empty_response_is_tampered(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    report = verifier.verify_collection(prover.device_id, CollectResponse(),
                                        60.0)
    assert report.status is DeviceStatus.TAMPERED


def test_forged_mac_detected(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    response = prover.handle_collect(verifier.create_collect_request())
    forged = [Measurement(m.timestamp, m.digest, b"\x00" * len(m.tag))
              for m in response.measurements]
    report = verifier.verify_collection(prover.device_id,
                                        CollectResponse(forged), 60.0)
    assert report.status is DeviceStatus.TAMPERED
    assert any("MAC" in anomaly for anomaly in report.anomalies)


def test_deleted_latest_measurements_detected(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    TamperingMalware(prover.store).delete_latest(3)
    report = collect(prover, verifier, 60.0)
    assert report.status is DeviceStatus.TAMPERED
    assert report.missing_intervals >= 1


def test_deleted_middle_measurement_detected(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    slot = prover.store.slot_for_time(30.0)
    prover.store.overwrite_slot(slot, None)
    report = collect(prover, verifier, 60.0)
    assert report.status is DeviceStatus.TAMPERED


def test_allowed_missing_policy_tolerates_gaps(erasmus_setup, config, key):
    prover, strict_verifier, engine, arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    slot = prover.store.slot_for_time(30.0)
    prover.store.overwrite_slot(slot, None)

    lenient_verifier = ErasmusVerifier(config, allowed_missing=2)
    healthy = strict_verifier.healthy_digests(prover.device_id)
    lenient_verifier.enroll(prover.device_id, key, healthy)
    response = prover.handle_collect(lenient_verifier.create_collect_request())
    report = lenient_verifier.verify_collection(prover.device_id, response,
                                                60.0)
    assert report.status is DeviceStatus.HEALTHY
    assert report.missing_intervals == 1
    del arch


def test_duplicate_timestamps_detected(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    TamperingMalware(prover.store).replay_old_measurement()
    report = collect(prover, verifier, 60.0)
    assert report.status is DeviceStatus.TAMPERED


def test_future_timestamp_detected(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    response = prover.handle_collect(verifier.create_collect_request())
    # Collection claimed to happen before the newest measurement.
    report = verifier.verify_collection(prover.device_id, response, 45.0)
    assert report.status is DeviceStatus.TAMPERED


def test_redundant_recollection_is_not_flagged(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    first = collect(prover, verifier, 60.0)
    engine.run(until=70.0)
    # Collecting again very soon re-fetches mostly known measurements;
    # the paper calls this redundant, not suspicious.
    second = collect(prover, verifier, 70.0)
    assert first.status is DeviceStatus.HEALTHY
    assert second.status is DeviceStatus.HEALTHY


def test_reports_accumulate_per_device(erasmus_setup):
    prover, verifier, engine, _arch = erasmus_setup
    run_schedule(prover, engine, 60.0)
    collect(prover, verifier, 60.0)
    engine.run(until=120.0)
    collect(prover, verifier, 120.0)
    assert len(verifier.reports_for(prover.device_id)) == 2
    assert verifier.last_collection_time(prover.device_id) == 120.0


def test_software_update_whitelisting(erasmus_setup, malware_image):
    prover, verifier, engine, arch = erasmus_setup
    run_schedule(prover, engine, 30.0)
    # Treat the new image as a legitimate update instead of malware.
    arch.load_application(malware_image)
    from repro.arch.base import hash_for_mac
    verifier.add_healthy_digest(prover.device_id, hash_for_mac(
        arch.mac_name)(arch.read_measured_memory()))
    engine.run(until=60.0)
    report = collect(prover, verifier, 60.0)
    assert report.status is DeviceStatus.HEALTHY


def test_measurement_verdict_acceptable_logic():
    measurement = Measurement(1.0, b"\x00" * 32, b"\x00" * 32)
    good = MeasurementVerdict(measurement, authentic=True, healthy=True)
    assert good.acceptable
    assert not MeasurementVerdict(measurement, authentic=False,
                                  healthy=True).acceptable
    assert not MeasurementVerdict(measurement, authentic=True, healthy=True,
                                  from_future=True).acceptable


def test_verifier_parameter_validation(config):
    with pytest.raises(ValueError):
        ErasmusVerifier(config, schedule_tolerance=1.5)
    with pytest.raises(ValueError):
        ErasmusVerifier(config, allowed_missing=-1)
    verifier = ErasmusVerifier(config)
    with pytest.raises(ValueError):
        verifier.enroll("dev", b"", [])


def test_enrollment_epoch_tracks_material_changes(config):
    verifier = ErasmusVerifier(config)
    start = verifier._enrollment_epoch
    verifier.enroll("dev", b"k" * 16, [b"d" * 32])
    assert verifier._enrollment_epoch == start + 1
    # Identical re-enrollment: nothing changed, caches stay valid.
    verifier.enroll("dev", b"k" * 16, [b"d" * 32])
    assert verifier._enrollment_epoch == start + 1
    # New key: precompiled judges must be rebuilt.
    verifier.enroll("dev", b"j" * 16, [b"d" * 32])
    assert verifier._enrollment_epoch == start + 2
    # New whitelist: ditto.
    verifier.enroll("dev", b"j" * 16, [b"e" * 32])
    assert verifier._enrollment_epoch == start + 3


def test_enrollment_key_change_check_is_constant_time(config, monkeypatch):
    """Re-enrollment key comparison routes through compare_digests."""
    verifier = ErasmusVerifier(config)
    verifier.enroll("dev", b"k" * 16, [b"d" * 32])
    calls = []
    real = verifier.crypto_backend.compare_digests

    def recorder(left, right):
        calls.append((bytes(left), bytes(right)))
        return real(left, right)

    monkeypatch.setattr(verifier.crypto_backend, "compare_digests",
                        recorder)
    verifier.enroll("dev", b"k" * 16, [b"d" * 32])
    assert (b"k" * 16, b"k" * 16) in calls
