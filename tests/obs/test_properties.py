"""Property: streaming SLO verdicts equal post-hoc verdicts, exactly.

The streaming path folds reports in one at a time and settles at the
round boundary; the post-hoc path recomputes the same objective from a
finished :class:`FleetHealth` — possibly *merged* from per-shard
aggregates, the way a :class:`ShardedFleetVerifier` builds its
fleet-wide view.  Both sides accumulate freshness as exact rationals,
so the verdicts must agree bit-for-bit for any report stream and any
shard layout (:class:`AttestationWindowRule` is excluded by design:
report timing does not survive into a post-hoc aggregate).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.verification import DeviceStatus, VerificationReport
from repro.fleet.sinks import FleetHealth
from repro.obs import (
    CoverageRule,
    FreshnessRule,
    LostBudgetRule,
    StreamingHealthSink,
)

# A report is (status, freshness); NO_DATA reports carry no freshness,
# exactly as the verifier produces them.
_statuses = st.sampled_from([DeviceStatus.HEALTHY, DeviceStatus.INFECTED,
                             DeviceStatus.NO_DATA])
_freshness = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                       allow_infinity=False)
_reports = st.lists(st.tuples(_statuses, _freshness), min_size=1,
                    max_size=40)


def _materialize(stream):
    return [VerificationReport(
        device_id=f"dev-{index:04d}", collection_time=0.0, status=status,
        freshness=None if status is DeviceStatus.NO_DATA else freshness)
        for index, (status, freshness) in enumerate(stream)]


def _rules(report_count, lost_budget, min_coverage, max_freshness,
           expect_devices):
    return [
        LostBudgetRule(lost_budget),
        CoverageRule(min_coverage,
                     expected_devices=report_count if expect_devices
                     else None),
        FreshnessRule(max_freshness),
    ]


@settings(max_examples=60, deadline=None)
@given(stream=_reports,
       lost_budget=st.integers(min_value=0, max_value=5),
       min_coverage=st.floats(min_value=0.05, max_value=1.0,
                              allow_nan=False),
       max_freshness=st.floats(min_value=1.0, max_value=1e5,
                               allow_nan=False),
       expect_devices=st.booleans(),
       shard_count=st.integers(min_value=1, max_value=5))
def test_streaming_verdict_equals_merged_post_hoc_verdict(
        stream, lost_budget, min_coverage, max_freshness, expect_devices,
        shard_count):
    reports = _materialize(stream)
    rules = _rules(len(reports), lost_budget, min_coverage, max_freshness,
                   expect_devices)
    sink = StreamingHealthSink(rules)
    for report in reports:
        sink.emit(report)
    sink.flush()  # the round boundary settles every verdict
    streamed = {violation.rule
                for violation in sink.violations_for_round(1)}

    # Post-hoc: the same reports dealt round-robin onto shard
    # aggregates, merged the way the sharded verifier merges them.
    shards = [FleetHealth() for _ in range(shard_count)]
    for index, report in enumerate(reports):
        shards[index % shard_count].record(report)
    merged = FleetHealth.merged(shards)
    post_hoc = {rule.name for rule in rules if rule.violated_by(merged)}

    assert streamed == post_hoc


@settings(max_examples=40, deadline=None)
@given(stream=_reports, lost_budget=st.integers(min_value=0, max_value=3))
def test_mid_round_fire_is_never_retracted_by_the_boundary(stream,
                                                           lost_budget):
    """A rule that fires mid-round is violated at end-of-round too —
    streaming events are irrevocable, never false alarms."""
    reports = _materialize(stream)
    rule = LostBudgetRule(lost_budget)
    sink = StreamingHealthSink([rule])
    for report in reports:
        sink.emit(report)
    fired_mid_round = any(v.streamed for v in sink.violations)
    sink.flush()
    if fired_mid_round:
        health = FleetHealth()
        for report in reports:
            health.record(report)
        assert rule.violated_by(health)


# ----------------------------------------------------------------------
# Property: the exposition round-trips through the text-format parser
# ----------------------------------------------------------------------
#
# ``repro.obs.report.parse_exposition`` is a minimal Prometheus
# text-format reader; rendering any registry and parsing the text back
# must recover every family (name, TYPE), every sample's labels —
# escaping included — and every value exactly, with histogram bucket
# series cumulative and monotone.

from repro.obs import MetricsRegistry, parse_exposition

_label_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
# Label values exercise the escapes (backslash, quote, newline) plus
# the characters that would confuse a naive splitter.
_label_values = st.text(
    alphabet='abcXYZ0 9\\"\n{},=', min_size=0, max_size=12)
# Help text: no leading/trailing blanks (the format cannot carry them).
_help_text = st.text(alphabet='help textn\\"\n', min_size=0,
                     max_size=20).map(lambda s: s.strip())
_values = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False,
                    allow_infinity=False)
_amounts = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

_metric_spec = st.fixed_dictionaries({
    "kind": st.sampled_from(["counter", "gauge", "histogram"]),
    "help": _help_text,
    "labels": st.lists(_label_names, min_size=0, max_size=2,
                       unique=True),
    "children": st.integers(min_value=1, max_value=3),
})


@settings(max_examples=60, deadline=None)
@given(specs=st.lists(_metric_spec, min_size=1, max_size=4),
       label_values=st.data())
def test_exposition_round_trips_through_the_parser(specs, label_values):
    registry = MetricsRegistry()
    expected = []  # (family, kind, samples: {labels-tuple: value-ish})
    for index, spec in enumerate(specs):
        name = f"m{index}_family"
        labels = tuple(spec["labels"])
        if spec["kind"] == "counter":
            metric = registry.counter(name, spec["help"], labels=labels)
        elif spec["kind"] == "gauge":
            metric = registry.gauge(name, spec["help"], labels=labels)
        else:
            metric = registry.histogram(name, spec["help"], labels=labels,
                                        buckets=(0.1, 1.0, 10.0))
        children = {}
        for _ in range(spec["children"]):
            key = tuple(
                label_values.draw(_label_values, label="label value")
                for _ in labels)
            child = metric.labels(*key)
            if spec["kind"] == "counter":
                amount = label_values.draw(_amounts, label="amount")
                child.inc(amount)
                children[key] = child.value
            elif spec["kind"] == "gauge":
                value = label_values.draw(_values, label="value")
                child.set(value)
                children[key] = child.value
            else:
                child.observe(label_values.draw(_values, label="obs"))
                children[key] = (child.sum, child.count,
                                 tuple(child.counts))
        expected.append((name, spec["kind"], spec["help"], labels,
                         children))

    families = parse_exposition(registry.render())

    for name, kind, help_text, labels, children in expected:
        family = families[name]
        assert family.kind == kind
        assert family.help == help_text  # HELP escaping round-trips
        for key, want in children.items():
            key_map = dict(zip(labels, (str(v) for v in key)))
            if kind in ("counter", "gauge"):
                matches = [s for s in family.samples
                           if s.name == name and s.labels == key_map]
                assert len(matches) == 1
                assert matches[0].value == want
            else:
                want_sum, want_count, counts = want
                buckets = sorted(
                    (float("inf") if s.labels["le"] == "+Inf"
                     else float(s.labels["le"]), s.value)
                    for s in family.samples
                    if s.name == f"{name}_bucket"
                    and {k: v for k, v in s.labels.items() if k != "le"}
                    == key_map)
                # Cumulative and monotone, ending at the total count.
                assert [b for b, _ in buckets] == [0.1, 1.0, 10.0,
                                                   float("inf")]
                cumulative = [c for _, c in buckets]
                assert cumulative == sorted(cumulative)
                assert cumulative[-1] == want_count
                (count_sample,) = [s for s in family.samples
                                   if s.name == f"{name}_count"
                                   and s.labels == key_map]
                assert count_sample.value == want_count
                (sum_sample,) = [s for s in family.samples
                                 if s.name == f"{name}_sum"
                                 and s.labels == key_map]
                assert sum_sample.value == want_sum
