"""Benchmark: regenerate Figure 6 (MSP430 measurement run-time)."""

import pytest

from repro.experiments import fig6_msp430_runtime


def test_fig6_series_regeneration(benchmark):
    rows = benchmark(fig6_msp430_runtime.run)
    at_10kb = {row["mac"]: row for row in rows if row["memory_kb"] == 10}
    for mac, expected in fig6_msp430_runtime.PAPER_RUNTIME_AT_10KB_S.items():
        assert at_10kb[mac]["erasmus_s"] == pytest.approx(expected, rel=0.05)
    # Linearity and ERASMUS ~= on-demand, as in the figure.
    for mac in ("hmac-sha256", "keyed-blake2s"):
        points = fig6_msp430_runtime.series(rows, mac, "erasmus")
        assert fig6_msp430_runtime.linearity_error(points) < 0.05
    # "Roughly equivalent" holds over the figure's visible range; at tiny
    # memory sizes the constant request-authentication cost dominates.
    for row in rows:
        if row["memory_kb"] >= 4:
            assert row["on_demand_s"] == pytest.approx(row["erasmus_s"],
                                                       rel=0.15)
        assert row["on_demand_s"] > row["erasmus_s"]


def test_fig6_actual_measurement_on_simulated_device(benchmark, key=b"k" * 16):
    """Also time one *functional* measurement (real MAC over 10 KB)."""
    from repro.smartplus import build_smartplus_architecture

    architecture = build_smartplus_architecture(key,
                                                application_size=10 * 1024)
    architecture.load_application(b"firmware" * 100)

    counter = {"time": 0.0}

    def measure():
        counter["time"] += 1.0
        architecture.advance_clock(counter["time"])
        return architecture.perform_measurement()

    output = benchmark(measure)
    assert output.memory_bytes == 10 * 1024
    assert output.duration == pytest.approx(5.0, rel=0.05)
