"""The stdlib HTTP scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.verification import DeviceStatus, VerificationReport
from repro.obs import (
    LostBudgetRule,
    MetricsRegistry,
    MetricsServer,
    StreamingHealthSink,
)
from repro.obs.server import EXPOSITION_CONTENT_TYPE


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), \
            response.read().decode("utf-8")


def test_metrics_endpoint_serves_the_exposition():
    registry = MetricsRegistry()
    registry.counter("up_total").inc(3)
    with MetricsServer(registry) as server:
        status, content_type, body = _get(server.metrics_url)
    assert status == 200
    assert content_type == EXPOSITION_CONTENT_TYPE
    assert "up_total 3" in body
    assert body == registry.render()


def test_slo_endpoint_serves_violations_as_json():
    sink = StreamingHealthSink([LostBudgetRule(0)])
    sink.emit(VerificationReport(device_id="d", collection_time=0.0,
                                 status=DeviceStatus.NO_DATA))
    with MetricsServer(MetricsRegistry(), health=sink) as server:
        status, content_type, body = _get(server.url + "/slo")
    assert status == 200
    assert content_type == "application/json"
    (row,) = json.loads(body)
    assert row["rule"] == "lost_budget"


def test_slo_endpoint_without_sink_is_empty_list():
    with MetricsServer(MetricsRegistry()) as server:
        _status, _ct, body = _get(server.url + "/slo")
    assert json.loads(body) == []


def test_healthz_and_unknown_path():
    with MetricsServer(MetricsRegistry()) as server:
        status, _ct, body = _get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


def test_close_is_idempotent_and_releases_the_socket():
    server = MetricsServer(MetricsRegistry())
    url = server.metrics_url
    server.close()
    server.close()
    assert server.closed
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url, timeout=0.5)
