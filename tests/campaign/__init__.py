"""Test package (keeps basenames like test_runner.py unambiguous)."""
