"""Benchmark: Section 6 coverage under mobility, on real provisioned provers."""

import pytest

from repro.experiments import swarm_mobility_fleet

_SPEEDS = (0.0, 6.0)


def test_mobile_fleet_collection_sweep(benchmark):
    rows = benchmark(swarm_mobility_fleet.run, device_count=36,
                     speeds=_SPEEDS, rounds=2)
    static = swarm_mobility_fleet.coverage_by_protocol(rows, 0.0)
    mobile = swarm_mobility_fleet.coverage_by_protocol(rows, 6.0)

    # Speed 0 is a static geometric graph: the fleet collection reaches
    # exactly the gateway's connected component (no loss configured).
    static_connected = swarm_mobility_fleet.connected_coverage_at(rows, 0.0)
    assert static["erasmus-fleet"] == pytest.approx(static_connected)

    # Under mobility the collection still tracks the connected
    # component while the on-demand cost-model protocols collapse.
    assert mobile["erasmus-fleet"] >= static_connected - 0.1
    assert mobile["seda"] < mobile["erasmus-fleet"]
    assert mobile["lisa-alpha"] < mobile["erasmus-fleet"]
    assert mobile["seda"] < static["seda"]

    # Real-prover rounds finish in network round-trip time, orders of
    # magnitude below the on-demand instance duration.
    durations = {row["protocol"]: row["duration_s"]
                 for row in rows if row["speed"] == 6.0}
    assert durations["erasmus-fleet"] < durations["seda"] / 10
