"""End-to-end integration tests combining every layer of the stack."""

import pytest

from repro.adversary import MalwareCampaign, MobileMalware, TamperingMalware
from repro.arch.base import hash_for_mac
from repro.core import (
    CollectResponse,
    DeviceStatus,
    ErasmusConfig,
    ErasmusProver,
    ErasmusVerifier,
    ScheduleKind,
)
from repro.hydra import build_hydra_architecture
from repro.net import Link, Network, NetworkNode
from repro.sim import SimulationEngine
from repro.smartplus import build_smartplus_architecture


def build_stack(key, firmware, mac_name="keyed-blake2s", architecture="smart+",
                schedule=ScheduleKind.REGULAR, allowed_missing=0):
    config = ErasmusConfig(measurement_interval=10.0, collection_interval=60.0,
                           buffer_slots=16, schedule=schedule,
                           mac_name=mac_name)
    if architecture == "smart+":
        arch = build_smartplus_architecture(key, mac_name=mac_name,
                                            application_size=512)
    else:
        arch = build_hydra_architecture(key, mac_name=mac_name,
                                        application_size=4096,
                                        measurement_buffer_size=4096)
    arch.load_application(firmware)
    healthy = hash_for_mac(mac_name)(arch.read_measured_memory())
    prover = ErasmusProver(arch, config, device_id="device",
                           scheduling_key=key)
    verifier = ErasmusVerifier(config, allowed_missing=allowed_missing)
    verifier.enroll("device", key, [healthy])
    engine = SimulationEngine()
    prover.attach(engine)
    return config, arch, prover, verifier, engine


@pytest.mark.parametrize("architecture", ["smart+", "hydra"])
@pytest.mark.parametrize("mac_name", ["hmac-sha256", "keyed-blake2s"])
def test_full_cycle_on_both_architectures(key, firmware, architecture,
                                          mac_name):
    _config, _arch, prover, verifier, engine = build_stack(
        key, firmware, mac_name=mac_name, architecture=architecture)
    engine.run(until=120.0)
    response = prover.handle_collect(verifier.create_collect_request())
    report = verifier.verify_collection("device", response, 120.0)
    assert report.status is DeviceStatus.HEALTHY
    assert report.measurement_count >= 6


def test_mobile_malware_campaign_detected_in_history(key, firmware,
                                                     malware_image):
    _config, arch, prover, verifier, engine = build_stack(key, firmware)
    malware = MobileMalware(arch, "device", clean_image=firmware,
                            malicious_image=malware_image)
    campaign = MalwareCampaign(arrival_rate=1 / 120.0, mean_dwell=25.0, seed=8)
    visits = campaign.deploy(engine, malware, horizon=600.0)
    assert visits

    detected_any = False
    for collection_index in range(1, 11):
        collection_time = collection_index * 60.0
        engine.run(until=collection_time)
        response = prover.handle_collect(verifier.create_collect_request())
        report = verifier.verify_collection("device", response,
                                            collection_time)
        if report.status is DeviceStatus.INFECTED:
            detected_any = True
    # Ground truth: at least one visit overlapped a measurement, and the
    # verifier noticed it even though the malware was gone by collection.
    measurement_times = [m.timestamp for m in prover.store.all_measurements()]
    del measurement_times
    assert detected_any
    assert not malware.currently_active


def test_tampering_after_infection_still_incriminates(key, firmware,
                                                      malware_image):
    _config, arch, prover, verifier, engine = build_stack(key, firmware)
    engine.run(until=30.0)
    arch.load_application(malware_image)
    engine.run(until=50.0)
    arch.load_application(firmware)
    # The malware tries to scrub the incriminating records before leaving.
    TamperingMalware(prover.store).delete_latest(3)
    engine.run(until=60.0)
    response = prover.handle_collect(verifier.create_collect_request())
    report = verifier.verify_collection("device", response, 60.0)
    assert report.status in (DeviceStatus.TAMPERED, DeviceStatus.INFECTED)
    assert report.detected_infection()


def test_irregular_schedule_end_to_end(key, firmware):
    _config, _arch, prover, verifier, engine = build_stack(
        key, firmware, schedule=ScheduleKind.IRREGULAR, allowed_missing=2)
    engine.run(until=300.0)
    response = prover.handle_collect(verifier.create_collect_request(k=16))
    report = verifier.verify_collection("device", response, 300.0)
    assert report.status is DeviceStatus.HEALTHY
    assert prover.measurements_taken >= 20


def test_collection_over_simulated_network(key, firmware):
    """The full Figure 2 exchange carried over the packet network."""
    config, _arch, prover, verifier, engine = build_stack(key, firmware)
    engine.run(until=60.0)

    network = Network(engine)
    reports = []

    def prover_receives(node, packet, _time):
        from repro.core.protocol import CollectRequest
        request = CollectRequest.decode(packet.payload)
        response = prover.handle_collect(request)
        node.send(packet.source, response.encode(), kind="collect-response")

    def verifier_receives(_node, packet, time):
        response = CollectResponse.decode(packet.payload)
        reports.append(verifier.verify_collection("device", response, time))

    network.add_node(NetworkNode("verifier", on_receive=verifier_receives))
    network.add_node(NetworkNode("device", on_receive=prover_receives))
    network.add_link(Link("verifier", "device", latency=0.005))

    request = verifier.create_collect_request()
    network.node("verifier").send("device", request.encode(), kind="collect")
    engine.run(until=61.0)

    assert len(reports) == 1
    assert reports[0].status is DeviceStatus.HEALTHY
    assert reports[0].measurement_count == config.measurements_per_collection
    assert network.delivered_packets == 2


# ----------------------------------------------------------------------
# Fleet API end-to-end (the same layers driven through repro.fleet)
# ----------------------------------------------------------------------

def _fleet_profile(firmware):
    from repro.fleet import DeviceProfile
    return DeviceProfile.smartplus(firmware=firmware, application_size=512,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=16)


@pytest.mark.parametrize("transport", ["in-process", "simulated-network"])
def test_fleet_round_matches_hand_wired_flow(key, firmware, transport):
    """The facade reproduces the hand-wired prover/verifier outcome."""
    from repro.fleet import Fleet
    del key
    fleet = Fleet.provision(_fleet_profile(firmware), 25,
                            master_secret=b"integration-master",
                            transport=transport)
    fleet.run_until(120.0)
    reports = fleet.collect_all()
    assert len(reports) == 25
    assert all(report.status is DeviceStatus.HEALTHY for report in reports)
    assert all(report.measurement_count >= 6 for report in reports)
    assert fleet.health.healthy_fraction == 1.0


def test_fleet_detects_transient_infection_like_legacy_api(key, firmware,
                                                           malware_image):
    """Mobile malware caught through the facade exactly as in build_stack."""
    from repro.fleet import Fleet
    del key
    fleet = Fleet.provision(_fleet_profile(firmware), 10,
                            master_secret=b"integration-master")
    fleet.run_until(30.0)
    fleet.device("dev-0004").load_application(malware_image)
    fleet.run_until(50.0)
    fleet.device("dev-0004").load_application(firmware)
    fleet.run_until(60.0)
    reports = {report.device_id: report for report in fleet.collect_all()}
    assert reports["dev-0004"].status is DeviceStatus.INFECTED
    assert all(report.status is DeviceStatus.HEALTHY
               for device_id, report in reports.items()
               if device_id != "dev-0004")


def test_legacy_shim_and_fleet_core_agree(key, firmware):
    """Old ErasmusVerifier and the fleet service verify identically."""
    from repro.fleet import FleetVerifier

    config, _arch, prover, legacy_verifier, engine = build_stack(key, firmware)
    engine.run(until=60.0)

    fleet_verifier = FleetVerifier(config)
    fleet_verifier.enroll("device", key,
                          legacy_verifier.healthy_digests("device"))
    response = prover.handle_collect(legacy_verifier.create_collect_request())

    legacy_report = legacy_verifier.verify_collection("device", response, 60.0)
    fleet_report = fleet_verifier.verify_collection("device", response, 60.0)
    assert legacy_report.status is fleet_report.status
    assert legacy_report.measurement_count == fleet_report.measurement_count
    assert legacy_report.freshness == fleet_report.freshness
    assert legacy_report.anomalies == fleet_report.anomalies
