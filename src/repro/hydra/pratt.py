"""The PrAtt attestation process.

In HYDRA, PrAtt is the initial user-space process.  It runs at the
highest scheduling priority, holds exclusive capabilities to the
attestation key region, to its own thread control block and to the
memory used for key-related computation, and spawns every other
user-space process at a strictly lower priority.  This module captures
that setup and the invariant checks the architecture relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hydra.sel4 import Capability, CapabilityError, Microkernel, Right

#: Kernel object names PrAtt needs exclusive access to.
KEY_OBJECT = "key_region"
SCRATCH_OBJECT = "mac_scratch"
TCB_OBJECT = "pratt_tcb"
RROC_OBJECT = "rroc_high_bits"


@dataclass
class PrAttProcess:
    """Handle to the attestation process inside the microkernel."""

    kernel: Microkernel
    name: str = "pratt"
    priority: int = Microkernel.MAX_PRIORITY

    @classmethod
    def boot(cls, kernel: Microkernel,
             priority: int = Microkernel.MAX_PRIORITY) -> "PrAttProcess":
        """Create PrAtt as the initial process with its exclusive capabilities."""
        for object_name in (KEY_OBJECT, SCRATCH_OBJECT, TCB_OBJECT, RROC_OBJECT):
            if object_name not in kernel.objects():
                kernel.register_object(object_name)
        capabilities = [
            Capability(KEY_OBJECT, Right.READ),
            Capability(SCRATCH_OBJECT, Right.READ | Right.WRITE),
            Capability(TCB_OBJECT, Right.READ | Right.WRITE),
            Capability(RROC_OBJECT, Right.READ | Right.WRITE),
        ]
        kernel.create_initial_process("pratt", priority, capabilities)
        return cls(kernel=kernel, name="pratt", priority=priority)

    def spawn_user_process(self, name: str, priority: int | None = None,
                           capabilities: tuple[Capability, ...] = ()) -> None:
        """Spawn an application process at a strictly lower priority."""
        if priority is None:
            priority = self.priority - 1
        if priority >= self.priority:
            raise CapabilityError(
                "user processes must run below PrAtt's priority")
        self.kernel.spawn(self.name, name, priority, capabilities)

    def can_read_key(self) -> bool:
        """True when PrAtt holds the READ capability on the key region."""
        return self.kernel.check_access(self.name, KEY_OBJECT, Right.READ)

    def has_exclusive_key_access(self) -> bool:
        """HYDRA's key-protection property: only PrAtt can read ``K``."""
        return self.kernel.exclusive_holder(KEY_OBJECT, Right.READ) == self.name

    def is_highest_priority(self) -> bool:
        """HYDRA's atomicity property: PrAtt outranks every other process."""
        scheduled = self.kernel.schedule()
        return scheduled is not None and scheduled.name == self.name

    def update_rroc_high_bits(self) -> None:
        """Check that PrAtt may service the GPT wrap-around interrupt."""
        self.kernel.require_access(self.name, RROC_OBJECT, Right.WRITE)
