"""Tests for the secure-boot model."""

import pytest

from repro.hydra.secure_boot import SecureBoot, SecureBootError


IMAGES = {"kernel": b"sel4-kernel-image", "pratt": b"pratt-binary"}


def test_boot_succeeds_with_provisioned_images():
    boot = SecureBoot.provision(IMAGES)
    boot.boot(dict(IMAGES))
    assert boot.booted


def test_boot_fails_on_modified_image():
    boot = SecureBoot.provision(IMAGES)
    tampered = dict(IMAGES)
    tampered["pratt"] = b"pratt-binary-with-backdoor"
    with pytest.raises(SecureBootError, match="pratt"):
        boot.boot(tampered)
    assert not boot.booted


def test_boot_fails_on_missing_image():
    boot = SecureBoot.provision(IMAGES)
    with pytest.raises(SecureBootError, match="missing"):
        boot.boot({"kernel": IMAGES["kernel"]})


def test_verify_image_individually():
    boot = SecureBoot.provision(IMAGES)
    assert boot.verify_image("kernel", IMAGES["kernel"])
    assert not boot.verify_image("kernel", b"other")
    assert not boot.verify_image("unknown", b"whatever")


def test_extra_unprovisioned_images_are_ignored():
    boot = SecureBoot.provision(IMAGES)
    images = dict(IMAGES)
    images["extra"] = b"not checked"
    boot.boot(images)
    assert boot.booted


def test_verify_image_compares_constant_time(monkeypatch):
    """The digest check must route through the constant-time seam."""
    calls = []
    import repro.hydra.secure_boot as secure_boot_module
    real = secure_boot_module.constant_time_compare

    def recorder(left, right):
        calls.append((bytes(left), bytes(right)))
        return real(left, right)

    monkeypatch.setattr(secure_boot_module, "constant_time_compare",
                        recorder)
    boot = SecureBoot.provision(IMAGES)
    assert boot.verify_image("kernel", IMAGES["kernel"])
    assert not boot.verify_image("kernel", b"forged")
    assert len(calls) == 2
