"""Malware-detection analysis over measurement / collection timelines.

The core question of Figure 1: given when measurements are taken, when
collections happen and when malware was present, which infections are
detected and how quickly can the verifier react?

Two levels of fidelity:

* the *timeline* functions (:func:`infection_detected`,
  :func:`simulate_detection`) match infections against abstract
  measurement/collection time lists — fast analytic sweeps;
* the *fleet* functions (:func:`match_fleet_reports`) match per-device
  ground-truth :class:`Infection` intervals against the stream of
  :class:`~repro.core.verification.VerificationReport`\\ s a real
  fleet collection produced — what the campaign engine scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.adversary.malware import Infection, MalwareCampaign
from repro.core.scheduler import MeasurementScheduler, RegularScheduler
from repro.core.verification import VerificationReport


def infection_detected(infection: Infection,
                       measurement_times: Sequence[float]) -> bool:
    """True when at least one measurement fell inside the infection window.

    A measurement taken while malware is present records an unhealthy
    digest; once recorded, the MAC makes the evidence indelible (any
    attempt to remove it is itself detected).
    """
    end = infection.end if infection.end is not None else float("inf")
    return any(infection.start <= time < end for time in measurement_times)


def detection_latency(infection: Infection,
                      measurement_times: Sequence[float],
                      collection_times: Sequence[float]) -> Optional[float]:
    """Time from infection start until the verifier can react.

    The verifier learns about the infection at the first collection that
    happens at or after the first incriminating measurement (Figure 1,
    infection 2).  Returns ``None`` when the infection is never detected
    within the given timelines.
    """
    end = infection.end if infection.end is not None else float("inf")
    incriminating = [time for time in measurement_times
                     if infection.start <= time < end]
    if not incriminating:
        return None
    first_evidence = min(incriminating)
    exposing = [time for time in collection_times if time >= first_evidence]
    if not exposing:
        return None
    return min(exposing) - infection.start


@dataclass
class DetectionSummary:
    """Aggregate outcome of a detection experiment."""

    total_infections: int
    detected_infections: int
    latencies: List[float]
    measurement_count: int
    collection_count: int

    @property
    def detection_rate(self) -> float:
        """Fraction of infections that were detected."""
        if self.total_infections == 0:
            return 1.0
        return self.detected_infections / self.total_infections

    @property
    def mean_latency(self) -> Optional[float]:
        """Mean infection-to-reaction latency over detected infections."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> Optional[float]:
        """Worst-case latency over detected infections."""
        return max(self.latencies) if self.latencies else None


def simulate_detection(measurement_interval: float,
                       collection_interval: float,
                       campaign: MalwareCampaign,
                       horizon: float,
                       scheduler: Optional[MeasurementScheduler] = None,
                       on_demand_only: bool = False) -> DetectionSummary:
    """Run one timeline-level detection experiment.

    Measurements follow ``scheduler`` (regular with ``measurement_interval``
    by default); collections happen every ``collection_interval``.  With
    ``on_demand_only=True`` the only measurements are the ones taken at
    collection time — the classic on-demand RA baseline, which is what
    makes mobile malware invisible to it.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    collection_times = _regular_times(collection_interval, horizon)
    if on_demand_only:
        measurement_times = list(collection_times)
    else:
        if scheduler is None:
            scheduler = RegularScheduler(measurement_interval)
        measurement_times = scheduler.schedule(0.0, horizon)

    visits = campaign.generate(horizon)
    infections = [Infection(device_id="prover", start=start, end=start + dwell)
                  for start, dwell in visits]

    detected = 0
    latencies: List[float] = []
    for infection in infections:
        if infection_detected(infection, measurement_times):
            detected += 1
            latency = detection_latency(infection, measurement_times,
                                        collection_times)
            if latency is not None:
                latencies.append(latency)
    return DetectionSummary(total_infections=len(infections),
                            detected_infections=detected,
                            latencies=latencies,
                            measurement_count=len(measurement_times),
                            collection_count=len(collection_times))


# ----------------------------------------------------------------------
# Fleet-level matching: ground truth vs a VerificationReport stream
# ----------------------------------------------------------------------

def first_exposing_report(infection: Infection,
                          reports: Sequence[VerificationReport]
                          ) -> Optional[VerificationReport]:
    """The earliest report that exposes one ground-truth infection.

    An infection is *detected* when the first anomalous report for its
    device lands after ``Infection.start``.  A report is anomalous when
    :meth:`~repro.core.verification.VerificationReport.
    detected_infection` holds; when it additionally carries
    incriminating measurement timestamps, at least one of them must
    fall inside the infection window, so an anomalous report caused by
    a *different* infection on the same device is never credited to
    this one.  Reports need not be sorted.
    """
    end = infection.end if infection.end is not None else float("inf")
    exposing = None
    for report in reports:
        if report.device_id != infection.device_id:
            continue
        if not report.detected_infection():
            continue
        if report.collection_time < infection.start:
            continue
        timestamps = report.infected_timestamps
        if timestamps and not any(infection.start <= time < end
                                  for time in timestamps):
            continue
        if exposing is None or report.collection_time < \
                exposing.collection_time:
            exposing = report
    return exposing


@dataclass
class FleetDetectionSummary:
    """Ground truth matched against one fleet's report stream."""

    total_infections: int = 0
    detected_infections: int = 0
    latencies: List[float] = field(default_factory=list)
    infected_devices: int = 0
    detected_devices: int = 0

    @property
    def detection_rate(self) -> float:
        """Fraction of ground-truth infections that were detected."""
        if self.total_infections == 0:
            return 1.0
        return self.detected_infections / self.total_infections

    @property
    def mean_latency(self) -> Optional[float]:
        """Mean infection-start-to-exposing-report latency."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> Optional[float]:
        """Worst-case latency over detected infections."""
        return max(self.latencies) if self.latencies else None


def match_fleet_reports(ground_truth: Mapping[str, Sequence[Infection]],
                        reports: Iterable[VerificationReport]
                        ) -> FleetDetectionSummary:
    """Match per-device ground truth against a fleet report stream.

    ``ground_truth`` maps device ids to their infection intervals (what
    :meth:`repro.adversary.FleetAdversary.ground_truth` records);
    ``reports`` is every report the verifier produced over the
    campaign, in any order — concatenate the rounds' report lists.
    Time-to-detection is measured from ``Infection.start`` to the
    exposing report's ``collection_time``: when the verifier could
    first have reacted, not when the incriminating measurement was
    taken.
    """
    by_device: Dict[str, List[VerificationReport]] = {}
    for report in reports:
        by_device.setdefault(report.device_id, []).append(report)
    summary = FleetDetectionSummary()
    for device_id in sorted(ground_truth):
        infections = ground_truth[device_id]
        if not infections:
            continue
        summary.infected_devices += 1
        device_detected = False
        for infection in infections:
            summary.total_infections += 1
            exposing = first_exposing_report(
                infection, by_device.get(device_id, ()))
            if exposing is None:
                continue
            summary.detected_infections += 1
            summary.latencies.append(
                exposing.collection_time - infection.start)
            device_detected = True
        if device_detected:
            summary.detected_devices += 1
    return summary


def _regular_times(interval: float, horizon: float) -> List[float]:
    if interval <= 0:
        raise ValueError("interval must be positive")
    times: List[float] = []
    time = interval
    while time <= horizon:
        times.append(time)
        time += interval
    return times
