"""Benchmark: store write-through overhead (devices/second per backend).

Runs one in-process fleet round per :mod:`repro.store` backend —
baseline (the plain provision path), :class:`MemoryStore`,
:class:`JsonlStore`, :class:`SqliteStore` — and records each backend's
devices/second in ``extra_info``, so persistence cost is tracked
against the in-memory yardstick from
:mod:`benchmarks.test_fleet_collection` as the subsystem evolves.

Each backend row is the best of three attempts with a fresh store, so
run-to-run jitter does not masquerade as write-through cost.
"""

from repro.experiments import fleet_collection

FLEET_SIZE = 300
REPEATS = 3


def test_store_backend_overhead(benchmark, tmp_path):
    rows = benchmark.pedantic(
        fleet_collection.run_store_comparison,
        args=(FLEET_SIZE,),
        kwargs={"directory": str(tmp_path), "repeats": REPEATS},
        rounds=1, iterations=1)
    by_backend = {row["store"]: row for row in rows}
    assert set(by_backend) == set(fleet_collection.STORE_BACKENDS)
    for backend, row in by_backend.items():
        assert row["reports"] == FLEET_SIZE
        assert row["healthy"] == FLEET_SIZE
        benchmark.extra_info[f"{backend}_devices_per_second"] = \
            row["devices_per_second"]

    # The default MemoryStore must not tax the PR 2 in-process baseline.
    # Structurally there is no overhead at all: store=None resolves to a
    # MemoryStore, so the two rows time the identical code path.
    from repro.fleet import DeviceProfile, FleetVerifier
    from repro.store import MemoryStore
    baseline_verifier = FleetVerifier(DeviceProfile.smartplus().config)
    assert isinstance(baseline_verifier.store, MemoryStore)
    # The timed comparison therefore only measures run-to-run jitter;
    # the exact ratio is recorded in extra_info (expected within 5%),
    # and the hard gate is set at 10% so shared-CI noise cannot fail
    # the workflow while a real hot-path regression still would.
    baseline = by_backend["baseline"]["devices_per_second"]
    memory = by_backend["memory"]["devices_per_second"]
    benchmark.extra_info["memory_vs_baseline"] = memory / baseline
    assert memory >= 0.90 * baseline, (
        f"MemoryStore round ran at {memory:.0f} dev/s vs baseline "
        f"{baseline:.0f} dev/s")

    # Durable backends pay real I/O but must stay the same order of
    # magnitude — a fleet round should never be dominated by the store.
    for backend in ("jsonl", "sqlite"):
        rate = by_backend[backend]["devices_per_second"]
        assert rate > 0.2 * baseline, (
            f"{backend} store overhead is pathological: {rate:.0f} dev/s "
            f"vs baseline {baseline:.0f} dev/s")
