"""Mobility models: topologies that change over time.

Section 6 argues that existing swarm RA protocols (SEDA, SANA, LISA)
need the topology to stay essentially static for the whole attestation
instance — whose duration is dominated by *computation* on every device
— whereas ERASMUS's collection phase is so short that high mobility is
harmless.  To exercise that claim we need topologies that actually
move; this module provides a random-waypoint model over a 2-D area with
a fixed radio range, producing a geometric connectivity graph that is
re-sampled as the devices move.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.net.link import Link


@dataclass
class DevicePosition:
    """Position and current waypoint of one mobile device."""

    x: float
    y: float
    target_x: float
    target_y: float
    speed: float


class MobilityModel(abc.ABC):
    """Produces the set of links that exist at a given time."""

    @abc.abstractmethod
    def links_at(self, time: float) -> List[Link]:
        """Return the links present at simulation time ``time``."""

    @abc.abstractmethod
    def device_names(self) -> List[str]:
        """Names of the devices this model moves."""


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint mobility over a square area with unit-disc links.

    Each device picks a random waypoint and moves towards it at its
    speed; on arrival it picks a new waypoint.  Two devices share a link
    whenever their distance is at most ``radio_range``.  ``speed = 0``
    degenerates to a static random geometric graph.
    """

    def __init__(self, device_names: List[str], area_size: float = 100.0,
                 radio_range: float = 30.0, speed: float = 1.0,
                 seed: int = 0, link_latency: float = 0.002,
                 link_bandwidth_bps: float = 1_000_000.0) -> None:
        if not device_names:
            raise ValueError("at least one device is required")
        if area_size <= 0 or radio_range <= 0:
            raise ValueError("area size and radio range must be positive")
        if speed < 0:
            raise ValueError("speed must be non-negative")
        self.area_size = area_size
        self.radio_range = radio_range
        self.speed = speed
        self.link_latency = link_latency
        self.link_bandwidth_bps = link_bandwidth_bps
        self._names = list(device_names)
        self._random = random.Random(seed)
        self._positions: Dict[str, DevicePosition] = {
            name: self._spawn_position() for name in self._names}
        self._last_update = 0.0

    def _spawn_position(self) -> DevicePosition:
        return DevicePosition(
            x=self._random.uniform(0, self.area_size),
            y=self._random.uniform(0, self.area_size),
            target_x=self._random.uniform(0, self.area_size),
            target_y=self._random.uniform(0, self.area_size),
            speed=self.speed,
        )

    def device_names(self) -> List[str]:
        """Names of the mobile devices."""
        return list(self._names)

    def position_of(self, name: str) -> tuple[float, float]:
        """Current (x, y) of one device."""
        position = self._positions[name]
        return (position.x, position.y)

    def _advance(self, elapsed: float) -> None:
        for position in self._positions.values():
            remaining = elapsed
            while remaining > 0:
                distance_x = position.target_x - position.x
                distance_y = position.target_y - position.y
                distance = math.hypot(distance_x, distance_y)
                travel = position.speed * remaining
                if position.speed == 0:
                    break
                if travel >= distance:
                    position.x = position.target_x
                    position.y = position.target_y
                    remaining -= distance / position.speed if position.speed \
                        else remaining
                    position.target_x = self._random.uniform(0, self.area_size)
                    position.target_y = self._random.uniform(0, self.area_size)
                else:
                    fraction = travel / distance
                    position.x += distance_x * fraction
                    position.y += distance_y * fraction
                    remaining = 0.0

    def links_at(self, time: float) -> List[Link]:
        """Advance positions to ``time`` and return the current links."""
        elapsed = time - self._last_update
        if elapsed < 0:
            raise ValueError("mobility time cannot move backwards")
        if elapsed > 0:
            self._advance(elapsed)
            self._last_update = time
        links: List[Link] = []
        for index, first in enumerate(self._names):
            for second in self._names[index + 1:]:
                first_position = self._positions[first]
                second_position = self._positions[second]
                distance = math.hypot(first_position.x - second_position.x,
                                      first_position.y - second_position.y)
                if distance <= self.radio_range:
                    links.append(Link(first, second,
                                      latency=self.link_latency,
                                      bandwidth_bps=self.link_bandwidth_bps))
        return links

    def churn_rate(self, horizon: float, step: float = 1.0) -> float:
        """Fraction of links that change per step over a time horizon.

        Used by the swarm experiments to characterize "how mobile" a
        deployment is independently of the protocol under test.
        """
        if horizon <= 0 or step <= 0:
            raise ValueError("horizon and step must be positive")
        start = self._last_update
        previous = {(link.node_a, link.node_b)
                    for link in self.links_at(start)}
        changes = 0
        samples = 0
        time = start
        while time < start + horizon:
            time += step
            current = {(link.node_a, link.node_b) for link in self.links_at(time)}
            union = previous | current
            if union:
                changes += len(previous ^ current) / len(union)
            samples += 1
            previous = current
        return changes / samples if samples else 0.0
