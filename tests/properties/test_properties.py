"""Cross-cutting property-based tests on the core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.base import encode_timestamp
from repro.core import (
    ErasmusConfig,
    IrregularScheduler,
    Measurement,
    MeasurementStore,
    QoA,
)
from repro.crypto.mac import get_mac


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=64),
       st.floats(min_value=0.5, max_value=1000.0, allow_nan=False),
       st.lists(st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
                min_size=1, max_size=100))
def test_store_never_exceeds_capacity(slots, interval, timestamps):
    """The rolling buffer never holds more than ``n`` measurements."""
    store = MeasurementStore(slots=slots, measurement_interval=interval)
    for timestamp in timestamps:
        store.store(Measurement(timestamp, b"\x01" * 32, b"\x02" * 32))
    assert store.occupancy() <= slots
    assert store.stored_count == len(timestamps)
    assert store.occupancy() + store.overwrites == len(timestamps)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=32),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.binary(min_size=16, max_size=64))
def test_mac_binds_timestamp_and_digest(key, timestamp, digest):
    """Changing the timestamp or digest always invalidates the tag."""
    algorithm = get_mac("keyed-blake2s")
    payload = encode_timestamp(timestamp) + digest
    tag = algorithm.mac(key, payload)
    assert algorithm.verify(key, payload, tag)
    tampered_time = encode_timestamp(timestamp + 1.0) + digest
    assert not algorithm.verify(key, tampered_time, tag)
    tampered_digest = encode_timestamp(timestamp) + \
        bytes(b ^ 0x01 for b in digest)
    assert not algorithm.verify(key, tampered_digest, tag)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=32),
       st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
       st.floats(min_value=1.0, max_value=3.0, allow_nan=False))
def test_irregular_intervals_always_within_bounds(seed, lower, spread):
    """Every CSPRNG-drawn interval respects the configured [L, U] bounds."""
    upper = lower * spread
    scheduler = IrregularScheduler(seed, lower=lower, upper=upper)
    previous = 0.0
    tolerance = 1e-6 * max(1.0, upper)
    for _ in range(30):
        current = scheduler.next_time(previous)
        assert lower - tolerance <= current - previous <= upper + tolerance
        previous = current


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
       st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
def test_qoa_k_covers_collection_interval(measurement_interval,
                                          collection_interval):
    """k measurements always span at least one collection interval."""
    qoa = QoA(measurement_interval, collection_interval)
    assert qoa.measurements_per_collection * measurement_interval >= \
        collection_interval - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
       st.integers(min_value=1, max_value=1024),
       st.integers(min_value=1, max_value=64))
def test_config_buffer_rule_consistency(measurement_interval, factor, slots):
    """validate_no_overwrite() agrees with the T_C <= n * T_M inequality."""
    collection_interval = measurement_interval * factor / 8.0
    config = ErasmusConfig(measurement_interval=measurement_interval,
                           collection_interval=collection_interval,
                           buffer_slots=slots)
    expected = collection_interval <= slots * measurement_interval
    assert config.validate_no_overwrite() == expected
    assert config.measurements_per_collection == \
        math.ceil(collection_interval / measurement_interval)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0, max_value=1e6, allow_nan=False),
       st.binary(min_size=0, max_size=80), st.binary(min_size=0, max_size=80))
def test_measurement_wire_format_roundtrip(timestamp, digest, tag):
    """Encoding and decoding a record never changes its content."""
    measurement = Measurement(timestamp=timestamp, digest=digest, tag=tag)
    decoded = Measurement.decode(measurement.encode())
    assert decoded.digest == digest
    assert decoded.tag == tag
    assert abs(decoded.timestamp - timestamp) <= 1e-6


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.binary(min_size=0, max_size=64),
       st.binary(min_size=0, max_size=64))
def test_measurement_wire_roundtrip_is_lossless(timestamp, digest, tag):
    """Encoding then decoding a record preserves every transmitted field."""
    from repro.core import Measurement
    original = Measurement(timestamp=timestamp, digest=digest, tag=tag)
    decoded = Measurement.decode(original.encode())
    assert decoded.digest == digest
    assert decoded.tag == tag
    assert abs(decoded.timestamp - timestamp) <= 1e-6
    assert decoded.size_bytes == original.size_bytes


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    st.binary(min_size=1, max_size=48),
    st.binary(min_size=1, max_size=48)), max_size=10))
def test_collect_response_preserves_order_and_bytes(records):
    """The response codec is a faithful, order-preserving container."""
    from repro.core import CollectResponse, Measurement
    measurements = [Measurement(timestamp=t, digest=d, tag=g)
                    for t, d, g in records]
    decoded = CollectResponse.decode(
        CollectResponse(measurements=measurements).encode())
    assert [(m.digest, m.tag) for m in decoded.measurements] == \
        [(m.digest, m.tag) for m in measurements]
