"""A tiny stdlib HTTP endpoint serving the metrics exposition.

One daemon thread runs a :class:`http.server.ThreadingHTTPServer`
scraping three paths:

* ``GET /metrics`` — the Prometheus text exposition of the bound
  :class:`~repro.obs.metrics.MetricsRegistry` (renders lock-free, so a
  scrape landing mid-round never blocks the collection hot path);
* ``GET /slo`` — the bound :class:`~repro.obs.slo.StreamingHealthSink`
  violations as JSON (empty list without a sink);
* ``GET /healthz`` — liveness (``ok``).

Binding port 0 picks a free ephemeral port — the test-suite default —
and :attr:`MetricsServer.url` reports where the scrape landed.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import StreamingHealthSink

#: Content type of the Prometheus text exposition format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve one registry (and optional SLO sink) over HTTP.

    The server starts on construction and runs on a daemon thread;
    :meth:`close` shuts it down idempotently.  Also usable as a
    context manager.
    """

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0,
                 health: Optional[StreamingHealthSink] = None) -> None:
        self.registry = registry
        self.health = health
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib contract)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.registry.render().encode("utf-8")
                    self._reply(200, EXPOSITION_CONTENT_TYPE, body)
                elif path == "/slo":
                    rows = server.health.violation_rows() \
                        if server.health is not None else []
                    body = json.dumps(rows, sort_keys=True).encode("utf-8")
                    self._reply(200, "application/json", body)
                elif path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"not found\n")

            def _reply(self, status: int, content_type: str,
                       body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args) -> None:
                pass  # scrapes must not spam the deployment's stdout

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name=f"metrics-server:{self.port}", daemon=True)
        self._thread.start()
        self.closed = False

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> str:
        """Full URL of the scrape path."""
        return f"{self.url}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
