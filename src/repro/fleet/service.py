"""The fleet attestation service: enrollment, batched collection, reports.

This is the canonical public API for running ERASMUS at fleet scale:

* :class:`FleetVerifier` — enrolls any number of provers and runs
  batched/sharded collection rounds over a :class:`~repro.fleet.transport.
  Transport`, streaming every :class:`VerificationReport` to the
  configured sinks and into a running :class:`FleetHealth` aggregate;
* :class:`Fleet` — the one-call facade: provision ``count`` devices
  from a :class:`DeviceProfile`, wire them to a transport and a shared
  simulation engine, and expose ``run_until`` / ``collect_all``.

The verification itself is the stateless
:class:`repro.core.verification.VerificationCore`, shared with the
legacy single-device :class:`repro.core.ErasmusVerifier`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.core.config import ErasmusConfig
from repro.core.protocol import (
    OnDemandResponse,
    ProtocolDecodeError,
    decode_response,
)
from repro.core.verification import (
    BaseVerifier,
    DeviceStatus,
    DuplicateEnrollmentError,
    VerificationReport,
)
from repro.fleet.profiles import DeviceProfile, ProvisionedDevice
from repro.fleet.sinks import FleetHealth, ReportSink, SinkFanout
from repro.fleet.transport import (
    InProcessTransport,
    SimulatedNetworkTransport,
    SwarmRelayTransport,
    Transport,
)
from repro.sim.engine import SimulationEngine
from repro.store import MemoryStore, StateStore

#: Default number of devices verified per shard of a collection round.
DEFAULT_BATCH_SIZE = 256


class FleetVerifier(BaseVerifier):
    """A verifier service managing an enrolled fleet of provers.

    Parameters mirror the legacy :class:`repro.core.ErasmusVerifier`
    (same ``schedule_tolerance`` / ``allowed_missing`` policy knobs);
    ``sinks`` is any iterable of :class:`ReportSink` that each finished
    report is streamed to, in enrollment-independent arrival order.

    ``store`` selects the :class:`repro.store.StateStore` backend the
    verifier's state is committed through — every enrollment change is
    written through immediately, every finished report is journaled,
    and the aggregate :class:`FleetHealth` is checkpointed at the end
    of each collection round.  The default :class:`repro.store.
    MemoryStore` keeps the historical in-process behaviour; pass a
    :class:`repro.store.JsonlStore` or :class:`repro.store.SqliteStore`
    to make the deployment restartable via :meth:`restore`.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 sinks: Iterable[ReportSink] = (),
                 store: Optional[StateStore] = None) -> None:
        super().__init__(config, schedule_tolerance=schedule_tolerance,
                         allowed_missing=allowed_missing,
                         store=store if store is not None else MemoryStore())
        self.sinks: List[ReportSink] = list(sinks)
        self.health = FleetHealth()
        self.rounds_completed = 0

    @classmethod
    def restore(cls, config: ErasmusConfig, store: StateStore,
                schedule_tolerance: float = 0.25,
                allowed_missing: int = 0,
                sinks: Iterable[ReportSink] = ()) -> "FleetVerifier":
        """Resume a deployment from a store's snapshot and journal.

        Replays the store's last checkpoint plus any journaled reports
        beyond it, so the returned verifier carries the pre-crash
        enrollments (keys, digests *and* last-seen timestamps), the
        aggregate :class:`FleetHealth` and per-device collection times.
        The store stays attached: new state keeps being committed
        through it.
        """
        state = store.restore_state()
        verifier = cls(config, schedule_tolerance=schedule_tolerance,
                       allowed_missing=allowed_missing, sinks=sinks,
                       store=store)
        # Installed directly — these records came *from* the store, so
        # writing them back through it would be a redundant journal round.
        verifier._enrollments = dict(state.enrollments)
        verifier._last_collection_time = dict(state.last_collection_times)
        verifier.health = state.health
        verifier.rounds_completed = state.rounds_completed
        return verifier

    # ------------------------------------------------------------------
    # Enrollment (shared store in BaseVerifier, fleet conveniences here)
    # ------------------------------------------------------------------
    def enroll_device(self, device: ProvisionedDevice, *,
                      re_enroll: bool = False) -> None:
        """Register a provisioned device (key and healthy digest bundled).

        Enrolling an already-enrolled device raises
        :class:`DuplicateEnrollmentError` — overwriting would silently
        reset the device's last-seen timestamp and digest whitelist.
        The check consults the attached store as well as this process's
        enrollments, so re-provisioning over an existing durable state
        directory (instead of :meth:`restore`-ing from it) fails loudly
        rather than erasing the rollback-detecting state.  Pass
        ``re_enroll=True`` to replace the enrollment deliberately
        (e.g. after re-provisioning the physical unit).
        """
        already = self.is_enrolled(device.device_id) or \
            (self.store is not None and
             self.store.has_enrollment(device.device_id))
        if already and not re_enroll:
            raise DuplicateEnrollmentError(
                f"device {device.device_id!r} is already enrolled (in this "
                f"verifier or its attached store); use FleetVerifier."
                f"restore to resume a deployment, or pass re_enroll=True "
                f"to deliberately replace the key, digest whitelist and "
                f"last-seen state")
        if already:
            # The replaced unit's collection history is void along with
            # its last-seen state.
            self._last_collection_time.pop(device.device_id, None)
        self.enroll(device.device_id, device.key, [device.healthy_digest])

    def enrolled_ids(self) -> List[str]:
        """All enrolled device ids, in enrollment order."""
        return list(self._enrollments)

    @property
    def device_count(self) -> int:
        """Number of enrolled devices."""
        return len(self._enrollments)

    def add_sink(self, sink: ReportSink) -> None:
        """Attach one more report sink."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------
    # Single-response verification (verify_collection inherited)
    # ------------------------------------------------------------------
    def _verify_payload(self, device_id: str, payload: Optional[bytes],
                        collection_time: float) -> VerificationReport:
        """Judge one raw transport response (``None`` = never answered)."""
        enrollment = self._enrollment_for(device_id)
        if payload is None:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.NO_DATA,
                anomalies=["no response received"])
        try:
            response = decode_response(payload)
        except ProtocolDecodeError as exc:
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=[f"response could not be decoded: {exc}"])
        if isinstance(response, OnDemandResponse):
            return VerificationReport(
                device_id=device_id, collection_time=collection_time,
                status=DeviceStatus.TAMPERED,
                anomalies=["unexpected on-demand response to a plain "
                           "collection"])
        return self.core.verify_measurements(
            enrollment, list(response.measurements), collection_time,
            expect_nonempty=True)

    def _commit(self, report: VerificationReport) -> VerificationReport:
        """Advance per-device bookkeeping and stream the report to sinks.

        The report is journaled *before* the enrollment advance so the
        store's write-ahead invariant holds: a crash between the two
        writes replays the report (which re-derives the advance) rather
        than leaving an advanced ``last_seen`` with no report behind it.
        """
        if self.store is not None:
            self.store.append_report(report)
        self._advance_bookkeeping(report)
        self.health.record(report)
        for sink in self.sinks:
            sink.emit(report)
        return report

    def checkpoint(self) -> None:
        """Fold the verifier's full state into a durable store snapshot.

        Called automatically at the end of every :meth:`collect_all`
        round; call it manually after out-of-band state changes (bulk
        enrollment, digest rollouts) worth persisting immediately.
        Checkpointing the same state twice produces byte-identical
        snapshots, so it is safe to call at any time.
        """
        if self.store is not None:
            self.store.checkpoint(self.health, self._last_collection_time,
                                  rounds_completed=self.rounds_completed)

    # ------------------------------------------------------------------
    # Batched collection rounds
    # ------------------------------------------------------------------
    def collect_all(self, transport: Transport,
                    collection_time: Optional[float] = None,
                    k: Optional[int] = None,
                    device_ids: Optional[Iterable[str]] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None,
                    checkpoint: bool = True
                    ) -> List[VerificationReport]:
        """Run one collection round over (a subset of) the fleet.

        The round is sharded into batches of ``batch_size`` devices;
        each batch's requests are exchanged through the transport in one
        go (networked transports overlap the round-trips), then verified
        — on a :class:`ThreadPoolExecutor` worker pool when
        ``max_workers`` exceeds one, mirroring
        :meth:`repro.analysis.sweep.ParameterSweep.run` — and committed
        in deterministic device order.  Returns this round's reports.

        With ``collection_time=None`` (the default) each batch is
        verified at the transport engine's clock *after* its exchange,
        so measurements taken while packets were in flight are never
        misjudged as "from the future".  Pass an explicit time only for
        engineless transports or deliberately retrospective audits.

        Sinks are guarded by a :class:`~repro.fleet.sinks.SinkFanout`:
        a clean round flushes them, a transport failure mid-round
        flushes *and closes* them so already-verified reports reach
        disk before the exception propagates.  Unless ``checkpoint=
        False``, a finished round also folds the verifier state into a
        store snapshot (see :meth:`checkpoint`).
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        engine = getattr(transport, "engine", None)
        if collection_time is None and engine is None:
            raise ValueError(
                "collection_time is required for transports without an "
                "engine clock")
        ids = list(device_ids) if device_ids is not None \
            else self.enrolled_ids()
        for device_id in ids:
            self._enrollment_for(device_id)
        request_bytes = self.create_collect_request(k).encode()

        reports: List[VerificationReport] = []
        try:
            self._run_round(transport, ids, request_bytes, collection_time,
                            engine, batch_size, max_workers, reports)
        except BaseException:
            # The fanout closed the sinks so nothing buffered was lost;
            # drop the closed ones so a retry round on this verifier
            # streams to the survivors instead of raising on dead sinks.
            self.sinks = [sink for sink in self.sinks if not sink.closed]
            raise
        self.rounds_completed += 1
        if checkpoint:
            self.checkpoint()
        return reports

    def _run_round(self, transport: Transport, ids: List[str],
                   request_bytes: bytes, collection_time: Optional[float],
                   engine, batch_size: int, max_workers: Optional[int],
                   reports: List[VerificationReport]) -> None:
        """The body of one collection round, inside the sink fan-out."""
        with SinkFanout(self.sinks):
            for start in range(0, len(ids), batch_size):
                batch = ids[start:start + batch_size]
                responses = transport.exchange_many(
                    {device_id: request_bytes for device_id in batch})
                batch_time = collection_time if collection_time is not None \
                    else engine.now

                def _verify(device_id: str, batch_time: float = batch_time
                            ) -> VerificationReport:
                    return self._verify_payload(device_id,
                                                responses.get(device_id),
                                                batch_time)

                if max_workers is not None and max_workers > 1 \
                        and len(batch) > 1:
                    with ThreadPoolExecutor(max_workers=max_workers) as pool:
                        batch_reports = list(pool.map(_verify, batch))
                else:
                    batch_reports = [_verify(device_id)
                                     for device_id in batch]
                for report in batch_reports:
                    reports.append(self._commit(report))


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------

#: Transport factories selectable by name in :meth:`Fleet.provision`.
TRANSPORT_FACTORIES: Dict[str, Callable[..., Transport]] = {
    "in-process": InProcessTransport,
    "simulated-network": SimulatedNetworkTransport,
    "swarm-relay": SwarmRelayTransport,
}
#: Convenience aliases.
TRANSPORT_FACTORIES["network"] = SimulatedNetworkTransport
TRANSPORT_FACTORIES["swarm"] = SwarmRelayTransport


class Fleet:
    """A provisioned fleet: devices, transport, engine and verifier service.

    Build one with :meth:`provision`; then alternate ``run_until`` (let
    provers self-measure on their schedules) with ``collect_all``
    (verify everyone's history).  The same scenario code runs unchanged
    over any transport.
    """

    def __init__(self, profile: DeviceProfile, verifier: FleetVerifier,
                 transport: Transport, engine: SimulationEngine,
                 devices: Dict[str, ProvisionedDevice]) -> None:
        self.profile = profile
        self.verifier = verifier
        self.transport = transport
        self.engine = engine
        self._devices = devices

    @classmethod
    def provision(cls, profile: DeviceProfile, count: int, *,
                  master_secret: bytes,
                  transport: Union[str, Transport,
                                   Callable[[SimulationEngine], Transport]]
                  = "in-process",
                  engine: Optional[SimulationEngine] = None,
                  sinks: Iterable[ReportSink] = (),
                  store: Optional[StateStore] = None,
                  schedule_tolerance: float = 0.25,
                  allowed_missing: int = 0,
                  name_prefix: str = "dev",
                  stagger: bool = True,
                  start_time: float = 0.0,
                  transport_options: Optional[Mapping[str, object]] = None
                  ) -> "Fleet":
        """Provision ``count`` devices from one profile, ready to attest.

        Each device gets a key derived from ``master_secret``, an imaged
        architecture, a prover attached to the shared engine (start
        times staggered across one measurement interval unless
        ``stagger=False``, so the fleet does not measure in lockstep),
        a transport registration and a verifier enrollment.

        ``transport`` may be a factory name from
        :data:`TRANSPORT_FACTORIES`, a ready :class:`Transport`
        instance, or a callable receiving the engine.  ``store`` backs
        the verifier with a :class:`repro.store.StateStore` so the
        deployment can be resumed after a verifier restart (see
        :meth:`FleetVerifier.restore`).
        """
        if count <= 0:
            raise ValueError("a fleet needs at least one device")
        if engine is None:
            engine = SimulationEngine()
        options = dict(transport_options or {})
        if isinstance(transport, str):
            try:
                factory = TRANSPORT_FACTORIES[transport]
            except KeyError as exc:
                known = ", ".join(sorted(TRANSPORT_FACTORIES))
                raise ValueError(f"unknown transport {transport!r}; "
                                 f"known: {known}") from exc
            built_transport = factory(engine, **options)
        elif isinstance(transport, Transport):
            if options:
                # A ready instance cannot absorb construction options;
                # dropping them silently would run the wrong network.
                raise ValueError(
                    "transport_options cannot be combined with a ready "
                    f"Transport instance (got {sorted(options)})")
            built_transport = transport
        else:
            built_transport = transport(engine, **options)

        verifier = FleetVerifier(profile.config,
                                 schedule_tolerance=schedule_tolerance,
                                 allowed_missing=allowed_missing,
                                 sinks=sinks, store=store)
        devices: Dict[str, ProvisionedDevice] = {}
        interval = profile.config.measurement_interval
        for index in range(count):
            device_id = f"{name_prefix}-{index:04d}"
            device = profile.provision(device_id,
                                       master_secret=master_secret)
            offset = start_time
            if stagger:
                offset += (index / count) * interval
            device.prover.attach(engine, start_time=offset)
            built_transport.register(device)
            verifier.enroll_device(device)
            devices[device_id] = device
        return cls(profile=profile, verifier=verifier,
                   transport=built_transport, engine=engine, devices=devices)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        """Number of provisioned devices."""
        return len(self._devices)

    def device_ids(self) -> List[str]:
        """All device ids, in provisioning order."""
        return list(self._devices)

    def device(self, device_id: str) -> ProvisionedDevice:
        """Look up one provisioned device."""
        try:
            return self._devices[device_id]
        except KeyError as exc:
            raise KeyError(f"no device {device_id!r} in this fleet") from exc

    def devices(self) -> List[ProvisionedDevice]:
        """All provisioned devices, in provisioning order."""
        return list(self._devices.values())

    @property
    def health(self) -> FleetHealth:
        """The verifier's running fleet-health aggregate."""
        return self.verifier.health

    @property
    def now(self) -> float:
        """Current virtual time of the shared engine."""
        return self.engine.now

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> int:
        """Advance the simulation (provers self-measure on schedule)."""
        return self.engine.run(until=time)

    def collect_all(self, k: Optional[int] = None,
                    collection_time: Optional[float] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    max_workers: Optional[int] = None,
                    checkpoint: bool = True
                    ) -> List[VerificationReport]:
        """Run one collection round over the whole fleet.

        ``collection_time=None`` stamps each batch at the engine clock
        after its exchange (see :meth:`FleetVerifier.collect_all`).
        """
        return self.verifier.collect_all(
            self.transport, collection_time, k=k,
            batch_size=batch_size, max_workers=max_workers,
            checkpoint=checkpoint)

    def close(self) -> None:
        """Close every attached report sink and the state store."""
        for sink in self.verifier.sinks:
            sink.close()
        if self.verifier.store is not None:
            self.verifier.store.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
