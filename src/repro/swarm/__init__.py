"""Swarm attestation (Section 6).

Swarm RA protocols attest a group of interconnected devices with a
single verifier interaction.  The paper's observation: on-demand swarm
protocols (SEDA, SANA, LISA) need the topology to stay essentially
static for the duration of the protocol — which is dominated by every
device's measurement computation — so they degrade badly in highly
mobile swarms.  ERASMUS's collection phase involves no computation, so
coupling self-measurement with a LISA-α-style relay protocol keeps
working under mobility.

This package provides:

* :mod:`repro.swarm.device` — the per-device description used by the
  swarm simulations;
* :mod:`repro.swarm.protocols` — SEDA-like aggregation, LISA-α / LISA-s
  relay baselines, and the ERASMUS-based collection protocol, all run
  against a mobility model;
* :mod:`repro.swarm.metrics` — QoSA levels and result records;
* :mod:`repro.swarm.scheduling` — staggered measurement schedules that
  bound the fraction of the swarm measuring concurrently (the
  availability argument at the end of Section 6).
"""

from repro.swarm.device import SwarmDevice, build_swarm
from repro.swarm.metrics import QoSALevel, SwarmAttestationResult
from repro.swarm.protocols import (
    ErasmusSwarmCollection,
    LisaAlphaProtocol,
    LisaSelfProtocol,
    SedaProtocol,
    SwarmRAProtocol,
)
from repro.swarm.scheduling import StaggeredSchedule

__all__ = [
    "ErasmusSwarmCollection",
    "LisaAlphaProtocol",
    "LisaSelfProtocol",
    "QoSALevel",
    "SedaProtocol",
    "StaggeredSchedule",
    "SwarmAttestationResult",
    "SwarmDevice",
    "SwarmRAProtocol",
    "build_swarm",
]
