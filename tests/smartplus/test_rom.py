"""Tests for the SMART+ ROM image builder."""

import pytest

from repro.smartplus import build_rom_image


def test_rom_image_size_matches_codesize_model():
    image = build_rom_image(b"K" * 16, mac_name="keyed-blake2s",
                            variant="on-demand")
    assert image.code_size == int(round(28.9 * 1024))


def test_rom_image_is_deterministic():
    first = build_rom_image(b"K" * 16, mac_name="hmac-sha256")
    second = build_rom_image(b"other key", mac_name="hmac-sha256")
    assert first.code == second.code
    assert first.code_digest() == second.code_digest()
    assert first.key != second.key


def test_different_variants_have_different_code():
    erasmus = build_rom_image(b"K", variant="erasmus")
    on_demand = build_rom_image(b"K", variant="on-demand")
    assert erasmus.code != on_demand.code
    assert erasmus.code_size < on_demand.code_size


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        build_rom_image(b"")
