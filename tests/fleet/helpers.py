"""Shared helpers for the fleet test modules."""

import json

from repro.fleet import DeviceProfile


def small_profile(firmware: bytes) -> DeviceProfile:
    """The compact SMART+ profile the fleet suites exercise."""
    return DeviceProfile.smartplus(firmware=firmware, application_size=256,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=8)


def report_key(report):
    """The observable identity of one report, for path-equivalence asserts.

    Every field a collection path could plausibly diverge on; extend
    here (once) when :class:`VerificationReport` grows.
    """
    return (report.device_id, report.status.value, report.measurement_count,
            report.freshness, report.missing_intervals,
            tuple(report.anomalies))


def health_bytes(verifier) -> bytes:
    """Canonical bytes of a verifier's health row (merge-identity asserts)."""
    return json.dumps(verifier.health.to_row(), sort_keys=True,
                      separators=(",", ":")).encode()
