"""Figure 8 — measurement run-time on the i.MX6 Sabre Lite @ 1 GHz.

Same sweep as Figure 6 but on the HYDRA target, with memory sizes from
0 to 10 MB.  Findings to preserve: linear scaling, ERASMUS ≈ on-demand,
and ~0.286 s for 10 MB with keyed BLAKE2s (the Table 2 footnote value).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hw.devices import ApplicationCPUModel

#: Anchor points from the paper (seconds at 10 MB, 1 GHz).
PAPER_RUNTIME_AT_10MB_S: Dict[str, float] = {
    "hmac-sha256": 0.55,
    "keyed-blake2s": 0.2856,
}

DEFAULT_MEMORY_SIZES_MB: Sequence[float] = (0.5, 1, 2, 4, 6, 8, 10)
DEFAULT_MACS: Sequence[str] = ("hmac-sha256", "keyed-blake2s")


def run(memory_sizes_mb: Sequence[float] = DEFAULT_MEMORY_SIZES_MB,
        mac_names: Sequence[str] = DEFAULT_MACS,
        model: ApplicationCPUModel | None = None) -> List[Dict[str, object]]:
    """Regenerate the Figure 8 series (run-times in seconds)."""
    model = model if model is not None else ApplicationCPUModel()
    rows: List[Dict[str, object]] = []
    for size_mb in memory_sizes_mb:
        memory_bytes = int(size_mb * 1024 * 1024)
        for mac_name in mac_names:
            erasmus = model.attestation_runtime(memory_bytes, mac_name,
                                                on_demand=False)
            on_demand = model.attestation_runtime(memory_bytes, mac_name,
                                                  on_demand=True)
            rows.append({
                "memory_mb": size_mb,
                "mac": mac_name,
                "erasmus_s": erasmus,
                "on_demand_s": on_demand,
            })
    return rows


def series(rows: List[Dict[str, object]], mac_name: str,
           variant: str) -> List[tuple[float, float]]:
    """Extract one curve: (memory_mb, runtime_s) points for a configuration."""
    key = "erasmus_s" if variant == "erasmus" else "on_demand_s"
    return [(float(row["memory_mb"]), float(row[key]))
            for row in rows if row["mac"] == mac_name]


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the Figure 8 series as a text table."""
    lines = ["Figure 8: Measurement run-time on i.MX6 @ 1 GHz (seconds)"]
    lines.append(f"{'memory (MB)':>12}{'MAC':>16}{'ERASMUS':>12}"
                 f"{'on-demand':>12}")
    for row in rows:
        lines.append(f"{row['memory_mb']:>12}{row['mac']:>16}"
                     f"{row['erasmus_s']:>12.4f}{row['on_demand_s']:>12.4f}")
    return "\n".join(lines)


def main() -> None:
    """Print the reproduced Figure 8 series."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
