"""The remote-write exporter: bounded buffer, retries, outage survival."""

import http.server
import json
import threading
import time

import pytest

from repro.fleet import DeviceProfile, Fleet
from repro.obs import Observability, RemoteWriteExporter


class _Collector:
    """An injectable ``post=`` that records payloads (thread-safe)."""

    def __init__(self, fail_first=0, outage=False):
        self.fail_first = fail_first
        self.outage = outage
        self.payloads = []
        self.attempts = 0
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.attempts += 1
            if self.outage or self.attempts <= self.fail_first:
                raise ConnectionError("endpoint down")
            self.payloads.append(payload)


def _exporter(post, **kwargs):
    kwargs.setdefault("_sleep", lambda _seconds: None)
    return RemoteWriteExporter("http://sink.invalid/write", post=post,
                               **kwargs)


def test_happy_path_delivers_in_order():
    collector = _Collector()
    with _exporter(collector) as exporter:
        for index in range(5):
            assert exporter.enqueue({"round": index})
        assert exporter.flush()
        assert exporter.pushes_total.value("ok") == 5
        assert exporter.pushes_total.value("error") == 0
        assert exporter.dropped_total.value() == 0
    assert [p["round"] for p in collector.payloads] == list(range(5))


def test_retry_then_success_counts_retries():
    sleeps = []
    collector = _Collector(fail_first=2)
    exporter = _exporter(collector, backoff=0.25, backoff_cap=4.0,
                         _sleep=sleeps.append)
    with exporter:
        exporter.enqueue({"round": 0})
        assert exporter.flush()
    assert collector.payloads == [{"round": 0}]
    assert exporter.retries_total.value() == 2
    assert exporter.pushes_total.value("ok") == 1
    assert exporter.pushes_total.value("error") == 0
    assert sleeps == [0.25, 0.5]  # doubling backoff


def test_backoff_is_capped():
    sleeps = []
    collector = _Collector(outage=True)
    exporter = _exporter(collector, max_retries=5, backoff=1.0,
                         backoff_cap=2.0, _sleep=sleeps.append)
    with exporter:
        exporter.enqueue({"round": 0})
        assert exporter.flush()
    assert sleeps == [1.0, 2.0, 2.0, 2.0, 2.0]
    assert exporter.pushes_total.value("error") == 1


def test_outage_fills_the_buffer_and_drops_the_oldest():
    # A permanently-down endpoint with retries disabled: the worker
    # burns through pushes as fast as we enqueue, so freeze it by
    # holding the condition via a blocking first post... simpler: use
    # max_retries=0 and a tiny buffer, then verify accounting.
    collector = _Collector(outage=True)
    exporter = _exporter(collector, max_buffer=4, max_retries=0)
    with exporter:
        for index in range(50):
            exporter.enqueue({"round": index})
        assert exporter.flush(timeout=10.0)
        pushed = exporter.pushes_total.value("error")
        dropped = exporter.dropped_total.value()
        assert pushed + dropped == 50  # every snapshot accounted for
        assert exporter.pushes_total.value("ok") == 0
        assert exporter.pending == 0
        assert exporter.buffered.value() == 0


def test_enqueue_returns_false_on_drop():
    blocker = threading.Event()

    def stuck_post(_payload):
        blocker.wait(timeout=10.0)

    exporter = _exporter(stuck_post, max_buffer=2)
    try:
        exporter.enqueue({"round": 0})  # picked up by the worker, stuck
        time.sleep(0.05)
        assert exporter.enqueue({"round": 1})
        assert exporter.enqueue({"round": 2})
        assert not exporter.enqueue({"round": 3})  # round 1 evicted
        assert exporter.dropped_total.value() == 1
    finally:
        blocker.set()
        exporter.close()


def test_close_without_drain_discards_and_counts():
    blocker = threading.Event()

    def stuck_post(_payload):
        blocker.wait(timeout=10.0)

    exporter = _exporter(stuck_post)
    exporter.enqueue({"round": 0})
    time.sleep(0.05)
    exporter.enqueue({"round": 1})
    exporter.enqueue({"round": 2})
    blocker.set()
    exporter.close(drain=False)
    assert exporter.dropped_total.value() == 2
    assert not exporter._thread.is_alive()
    # Enqueue after close is a counted drop, not an error.
    assert not exporter.enqueue({"round": 9})
    assert exporter.dropped_total.value() == 3
    exporter.close()  # idempotent


def test_flush_times_out_while_a_push_is_stuck():
    blocker = threading.Event()

    def stuck_post(_payload):
        blocker.wait(timeout=10.0)

    exporter = _exporter(stuck_post)
    try:
        exporter.enqueue({"round": 0})
        assert not exporter.flush(timeout=0.2)
    finally:
        blocker.set()
        exporter.close()


def test_invalid_buffer_bound():
    with pytest.raises(ValueError):
        RemoteWriteExporter("http://x.invalid/", max_buffer=0,
                            post=lambda _p: None)


# ----------------------------------------------------------------------
# The acceptance case: an endpoint outage must not perturb the round.
# ----------------------------------------------------------------------

def _tiny_fleet(obs):
    profile = DeviceProfile.smartplus(firmware=b"fw" + bytes(40),
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)
    return Fleet.provision(profile, 8, master_secret=b"remote-write-test",
                           obs=obs)


def _run_rounds(obs):
    fleet = _tiny_fleet(obs)
    try:
        fleet.run_until(600.0)
        fleet.collect_all()
        fleet.run_until(1200.0)
        fleet.collect_all()
    finally:
        fleet.close()
    return fleet


def test_outage_does_not_perturb_round_stats():
    # Baseline: no exporter at all.
    baseline = Observability(seed=9)
    _run_rounds(baseline)
    baseline_rows = baseline.tracer.export_jsonl()
    baseline_rounds = baseline.rounds_total.value()
    baseline.close()

    # Same seeded scenario with a permanently-down endpoint attached.
    observed = Observability(seed=9)
    exporter = observed.remote_write(
        "http://sink.invalid/write", max_buffer=2, max_retries=1,
        post=_Collector(outage=True), _sleep=lambda _s: None)
    _run_rounds(observed)
    exporter.flush(timeout=10.0)

    # The rounds, counters, and the span trace are byte-identical to
    # the unexported run; only the exporter's own meters moved.
    assert observed.rounds_total.value() == baseline_rounds == 2
    assert observed.tracer.export_jsonl() == baseline_rows
    assert exporter.pushes_total.value("error") + \
        exporter.dropped_total.value() == 2
    assert exporter.pushes_total.value("ok") == 0
    observed.close()  # closes the exporter too
    assert not exporter._thread.is_alive()


def test_round_edge_payloads_reach_a_real_http_endpoint():
    received = []

    class _Handler(http.server.BaseHTTPRequestHandler):
        def do_POST(self):
            length = int(self.headers["Content-Length"])
            received.append(json.loads(self.rfile.read(length)))
            self.send_response(200)
            self.end_headers()

        def log_message(self, *_args):
            pass

    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        endpoint = f"http://127.0.0.1:{server.server_address[1]}/write"
        obs = Observability(seed=3)
        exporter = obs.remote_write(endpoint)  # the default urllib POST
        _run_rounds(obs)
        assert exporter.flush(timeout=10.0)
        obs.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
    assert [p["round"] for p in received] == [1, 2]
    for payload in received:
        assert payload["stats"]["requests_sent"] == 8
        assert "repro_rounds_total" in payload["metrics"]
        assert payload["slo"] == []
    assert exporter.pushes_total.value("ok") == 2
