"""Hardware substrate models.

The paper's prototypes run on an openMSP430 core (modified for SMART+)
and an i.MX6 Sabre Lite board (under seL4 for HYDRA).  Neither is
available here, so this package provides functional + cost models of the
pieces ERASMUS needs:

* :mod:`repro.hw.memory` — memory regions with hardware access-control
  rules (ROM-resident code, exclusive key access, insecure measurement
  storage);
* :mod:`repro.hw.clock` — the Reliable Read-Only Clock (RROC), both as
  a hardware register (SMART+) and as the software construction over a
  wrapping GPT counter (HYDRA);
* :mod:`repro.hw.timers` — periodic timers that drive self-measurement;
* :mod:`repro.hw.devices` — cycle-cost models for the MSP430-class and
  i.MX6-class targets, calibrated to the paper's Figures 6 and 8;
* :mod:`repro.hw.codesize` — the executable-size model behind Table 1;
* :mod:`repro.hw.synthesis` — the register/LUT cost model behind the
  hardware-cost numbers in Section 4.1.
"""

from repro.hw.clock import ReliableClock, SoftwareClock, WrappingCounter
from repro.hw.codesize import CodeSizeModel, CodeSizeReport
from repro.hw.devices import (
    ApplicationCPUModel,
    DeviceCostModel,
    MCUModel,
    RuntimeBreakdown,
)
from repro.hw.memory import (
    AccessContext,
    AccessPolicy,
    AccessViolation,
    DeviceMemory,
    MemoryRegion,
    RegionKind,
)
from repro.hw.synthesis import SynthesisModel, SynthesisReport
from repro.hw.timers import PeriodicTimer, TimerExpiration

__all__ = [
    "AccessContext",
    "AccessPolicy",
    "AccessViolation",
    "ApplicationCPUModel",
    "CodeSizeModel",
    "CodeSizeReport",
    "DeviceCostModel",
    "DeviceMemory",
    "MCUModel",
    "MemoryRegion",
    "PeriodicTimer",
    "RegionKind",
    "ReliableClock",
    "RuntimeBreakdown",
    "SoftwareClock",
    "SynthesisModel",
    "SynthesisReport",
    "TimerExpiration",
    "WrappingCounter",
]
