"""MAC algorithm registry.

The paper evaluates three MAC constructions (Table 1): HMAC-SHA1,
HMAC-SHA256 and keyed BLAKE2s.  The registry gives the rest of the
library a single place to look up a MAC by name, together with the
metadata the hardware cost models need (block size, digest size,
per-block compression cost class and indicative ROM footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.backend import BackendSpec, resolve_backend
from repro.crypto.blake2s import Blake2s
from repro.crypto.hmac import Hmac


class MacAlgorithm:
    """A concrete MAC algorithm: ``mac(key, data) -> tag``.

    Tag computation dispatches through the pluggable backend registry
    when the selected backend knows the construction natively, and
    falls back to the registered ``mac_fn`` (the reference
    implementation) otherwise.  Instances also report the number of
    compression-function invocations a given message length requires,
    which the device cost models translate into cycles.
    """

    def __init__(self, name: str, block_size: int, digest_size: int,
                 mac_fn: Callable[[bytes, bytes], bytes],
                 extra_blocks: int, deprecated: bool = False) -> None:
        self.name = name
        self.block_size = block_size
        self.digest_size = digest_size
        self._mac_fn = mac_fn
        self.extra_blocks = extra_blocks
        self.deprecated = deprecated

    def mac(self, key: bytes, data: bytes,
            backend: BackendSpec = None) -> bytes:
        """Compute the MAC tag of ``data`` under ``key``."""
        provider = resolve_backend(backend)
        if provider.supports_mac(self.name):
            return provider.mac(self.name, key, data)
        return self._mac_fn(key, data)

    def verify(self, key: bytes, data: bytes, tag: bytes,
               backend: BackendSpec = None) -> bool:
        """Recompute and compare a tag in constant time."""
        from repro.crypto.constant_time import constant_time_compare
        return constant_time_compare(self.mac(key, data, backend=backend),
                                     tag)

    def compression_count(self, message_length: int) -> int:
        """Number of compression-function calls for a message of that size.

        Includes key-schedule and finalization blocks (``extra_blocks``),
        so multiplying by a per-compression cycle cost gives the total
        cryptographic work of one measurement.
        """
        if message_length < 0:
            raise ValueError("message length must be non-negative")
        blocks = (message_length + self.block_size - 1) // self.block_size
        return max(1, blocks) + self.extra_blocks

    def __repr__(self) -> str:
        return f"MacAlgorithm(name={self.name!r})"


@dataclass(frozen=True)
class MacDescriptor:
    """Static metadata about a registered MAC, used by code-size models."""

    name: str
    block_size: int
    digest_size: int
    deprecated: bool


_REGISTRY: Dict[str, MacAlgorithm] = {}


def register_mac(algorithm: MacAlgorithm) -> None:
    """Register a MAC algorithm under its (lower-cased) name."""
    _REGISTRY[algorithm.name.lower()] = algorithm


def get_mac(name: str) -> MacAlgorithm:
    """Look up a MAC algorithm by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown MAC {name!r}; known: {known}") from exc


def available_macs() -> list[MacDescriptor]:
    """Return descriptors for every registered MAC."""
    return [
        MacDescriptor(alg.name, alg.block_size, alg.digest_size,
                      alg.deprecated)
        for alg in sorted(_REGISTRY.values(), key=lambda a: a.name)
    ]


def _hmac_sha1(key: bytes, data: bytes) -> bytes:
    return Hmac(key, data, hash_name="sha1").digest()


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    return Hmac(key, data, hash_name="sha256").digest()


def _keyed_blake2s(key: bytes, data: bytes) -> bytes:
    return Blake2s(data, key=key).digest()


# HMAC processes one extra key block on the inner pass and two blocks on
# the outer pass (key block + digest block); keyed BLAKE2s only prepends
# one key block.
register_mac(MacAlgorithm("hmac-sha1", 64, 20, _hmac_sha1,
                          extra_blocks=3, deprecated=True))
register_mac(MacAlgorithm("hmac-sha256", 64, 32, _hmac_sha256,
                          extra_blocks=3))
register_mac(MacAlgorithm("keyed-blake2s", 64, 32, _keyed_blake2s,
                          extra_blocks=1))
