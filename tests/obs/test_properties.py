"""Property: streaming SLO verdicts equal post-hoc verdicts, exactly.

The streaming path folds reports in one at a time and settles at the
round boundary; the post-hoc path recomputes the same objective from a
finished :class:`FleetHealth` — possibly *merged* from per-shard
aggregates, the way a :class:`ShardedFleetVerifier` builds its
fleet-wide view.  Both sides accumulate freshness as exact rationals,
so the verdicts must agree bit-for-bit for any report stream and any
shard layout (:class:`AttestationWindowRule` is excluded by design:
report timing does not survive into a post-hoc aggregate).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.verification import DeviceStatus, VerificationReport
from repro.fleet.sinks import FleetHealth
from repro.obs import (
    CoverageRule,
    FreshnessRule,
    LostBudgetRule,
    StreamingHealthSink,
)

# A report is (status, freshness); NO_DATA reports carry no freshness,
# exactly as the verifier produces them.
_statuses = st.sampled_from([DeviceStatus.HEALTHY, DeviceStatus.INFECTED,
                             DeviceStatus.NO_DATA])
_freshness = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                       allow_infinity=False)
_reports = st.lists(st.tuples(_statuses, _freshness), min_size=1,
                    max_size=40)


def _materialize(stream):
    return [VerificationReport(
        device_id=f"dev-{index:04d}", collection_time=0.0, status=status,
        freshness=None if status is DeviceStatus.NO_DATA else freshness)
        for index, (status, freshness) in enumerate(stream)]


def _rules(report_count, lost_budget, min_coverage, max_freshness,
           expect_devices):
    return [
        LostBudgetRule(lost_budget),
        CoverageRule(min_coverage,
                     expected_devices=report_count if expect_devices
                     else None),
        FreshnessRule(max_freshness),
    ]


@settings(max_examples=60, deadline=None)
@given(stream=_reports,
       lost_budget=st.integers(min_value=0, max_value=5),
       min_coverage=st.floats(min_value=0.05, max_value=1.0,
                              allow_nan=False),
       max_freshness=st.floats(min_value=1.0, max_value=1e5,
                               allow_nan=False),
       expect_devices=st.booleans(),
       shard_count=st.integers(min_value=1, max_value=5))
def test_streaming_verdict_equals_merged_post_hoc_verdict(
        stream, lost_budget, min_coverage, max_freshness, expect_devices,
        shard_count):
    reports = _materialize(stream)
    rules = _rules(len(reports), lost_budget, min_coverage, max_freshness,
                   expect_devices)
    sink = StreamingHealthSink(rules)
    for report in reports:
        sink.emit(report)
    sink.flush()  # the round boundary settles every verdict
    streamed = {violation.rule
                for violation in sink.violations_for_round(1)}

    # Post-hoc: the same reports dealt round-robin onto shard
    # aggregates, merged the way the sharded verifier merges them.
    shards = [FleetHealth() for _ in range(shard_count)]
    for index, report in enumerate(reports):
        shards[index % shard_count].record(report)
    merged = FleetHealth.merged(shards)
    post_hoc = {rule.name for rule in rules if rule.violated_by(merged)}

    assert streamed == post_hoc


@settings(max_examples=40, deadline=None)
@given(stream=_reports, lost_budget=st.integers(min_value=0, max_value=3))
def test_mid_round_fire_is_never_retracted_by_the_boundary(stream,
                                                           lost_budget):
    """A rule that fires mid-round is violated at end-of-round too —
    streaming events are irrevocable, never false alarms."""
    reports = _materialize(stream)
    rule = LostBudgetRule(lost_budget)
    sink = StreamingHealthSink([rule])
    for report in reports:
        sink.emit(report)
    fired_mid_round = any(v.streamed for v in sink.violations)
    sink.flush()
    if fired_mid_round:
        health = FleetHealth()
        for report in reports:
            health.record(report)
        assert rule.violated_by(health)
