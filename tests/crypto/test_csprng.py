"""Tests for the HMAC-DRBG CSPRNG used by irregular scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.csprng import HmacDrbg


def test_deterministic_for_same_seed():
    first = HmacDrbg(b"seed material")
    second = HmacDrbg(b"seed material")
    assert first.generate(64) == second.generate(64)


def test_different_seeds_differ():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_personalization_changes_output():
    plain = HmacDrbg(b"seed")
    personalized = HmacDrbg(b"seed", personalization=b"device-7")
    assert plain.generate(32) != personalized.generate(32)


def test_successive_outputs_differ():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate(32) != drbg.generate(32)


def test_generate_length():
    drbg = HmacDrbg(b"seed")
    for length in (0, 1, 31, 32, 33, 100):
        assert len(drbg.generate(length)) == length


def test_generate_negative_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"")


def test_reseed_changes_stream():
    baseline = HmacDrbg(b"seed")
    baseline.generate(16)
    continued = baseline.generate(16)

    reseeded = HmacDrbg(b"seed")
    reseeded.generate(16)
    reseeded.reseed(b"fresh entropy")
    assert reseeded.generate(16) != continued


def test_reseed_requires_entropy():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").reseed(b"")


def test_random_uint_bits():
    drbg = HmacDrbg(b"seed")
    value = drbg.random_uint(16)
    assert 0 <= value < 2 ** 16
    with pytest.raises(ValueError):
        drbg.random_uint(12)


def test_uniform_bounds_and_mean():
    drbg = HmacDrbg(b"seed")
    samples = [drbg.uniform(30.0, 90.0) for _ in range(400)]
    assert all(30.0 <= sample < 90.0 for sample in samples)
    mean = sum(samples) / len(samples)
    assert 55.0 < mean < 65.0


def test_uniform_invalid_bounds():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").uniform(10.0, 5.0)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1,
                                                       max_value=200))
def test_reproducible_streams(seed, length):
    assert HmacDrbg(seed).generate(length) == HmacDrbg(seed).generate(length)
