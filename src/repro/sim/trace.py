"""Trace recording for simulation runs.

The analysis code (QoA, detection probability, swarm metrics) consumes
traces rather than inspecting live objects, which keeps experiments
reproducible and lets tests assert against exactly what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: a time, a category and free-form details."""

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only, time-ordered list of :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time: float, category: str, **details: Any) -> TraceEvent:
        """Append a trace event and return it."""
        event = TraceEvent(time=time, category=category, details=dict(details))
        self._events.append(event)
        return event

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """Return recorded events, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [event for event in self._events if event.category == category]

    def categories(self) -> set[str]:
        """Return the set of categories seen so far."""
        return {event.category for event in self._events}

    def between(self, start: float, end: float,
                category: str | None = None) -> list[TraceEvent]:
        """Return events with ``start <= time <= end``."""
        return [event for event in self.events(category)
                if start <= event.time <= end]

    def last(self, category: str) -> TraceEvent | None:
        """Return the most recent event of a category, if any."""
        for event in reversed(self._events):
            if event.category == category:
                return event
        return None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
