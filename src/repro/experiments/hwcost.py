"""Section 4.1 hardware cost — registers and look-up tables.

Paper numbers (openMSP430 on FPGA, Xilinx ISE 14.7):

* unmodified core: 579 registers, 1731 LUTs;
* with SMART+/ERASMUS modifications: 655 registers (+13 %), 1969 LUTs
  (+14 %);
* ERASMUS needs exactly the same hardware as on-demand attestation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.synthesis import SynthesisModel

#: Paper values for side-by-side comparison.
PAPER_HW_COST = {
    "unmodified": {"registers": 579, "luts": 1731},
    "on-demand": {"registers": 655, "luts": 1969},
    "erasmus": {"registers": 655, "luts": 1969},
}


def run(model: SynthesisModel | None = None) -> List[Dict[str, object]]:
    """Regenerate the hardware-cost comparison."""
    model = model if model is not None else SynthesisModel()
    rows: List[Dict[str, object]] = []
    for variant, report in model.comparison().items():
        rows.append({
            "variant": variant,
            "registers": report.registers,
            "luts": report.luts,
            "register_overhead_pct": report.register_overhead * 100,
            "lut_overhead_pct": report.lut_overhead * 100,
            "paper:registers": PAPER_HW_COST[variant]["registers"],
            "paper:luts": PAPER_HW_COST[variant]["luts"],
        })
    return rows


def erasmus_equals_ondemand(rows: List[Dict[str, object]]) -> bool:
    """The paper's key finding: ERASMUS costs exactly what on-demand costs."""
    by_variant = {row["variant"]: row for row in rows}
    erasmus = by_variant["erasmus"]
    on_demand = by_variant["on-demand"]
    return (erasmus["registers"] == on_demand["registers"] and
            erasmus["luts"] == on_demand["luts"])


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the hardware-cost rows as a text table."""
    lines = ["Hardware cost (openMSP430 synthesis model)"]
    lines.append(f"{'variant':<14}{'registers':>12}{'LUTs':>10}"
                 f"{'reg +%':>10}{'LUT +%':>10}")
    for row in rows:
        lines.append(f"{row['variant']:<14}{row['registers']:>12}"
                     f"{row['luts']:>10}{row['register_overhead_pct']:>10.1f}"
                     f"{row['lut_overhead_pct']:>10.1f}")
    return "\n".join(lines)


def main() -> None:
    """Print the reproduced hardware-cost comparison."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
