"""Cross-backend equivalence: reference vs accelerated crypto providers.

The pluggable backend registry promises that the two providers are
bit-for-bit interchangeable.  This suite pins both to the standard
FIPS 180 / RFC 2202 / RFC 4231 / RFC 7693 test vectors, fuzzes them
against each other on randomized keys and messages for every
registered MAC, and checks that HMAC-DRBG streams (single-call and
batched) are identical no matter which provider computes them.
"""

import random

import pytest

from repro.crypto import backend as backend_mod
from repro.crypto.backend import (
    AcceleratedBackend,
    ReferenceBackend,
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.crypto.csprng import HmacDrbg
from repro.crypto.hmac import hmac_digest
from repro.crypto.mac import available_macs, get_mac

REFERENCE = get_backend("reference")
ACCELERATED = get_backend("accelerated")
BACKENDS = (REFERENCE, ACCELERATED)

# (hash_name, message, expected digest) — FIPS 180-2 / RFC 7693.
HASH_VECTORS = [
    ("sha1", b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    ("sha256", b"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    ("blake2s", b"abc",
     "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"),
]

# (mac_name, key, message, expected tag) — RFC 2202 / RFC 4231 case 1
# and the RFC 7693 appendix E keyed BLAKE2s vector.
MAC_VECTORS = [
    ("hmac-sha1", b"\x0b" * 20, b"Hi There",
     "b617318655057264e28bc0b6fb378c8ef146be00"),
    ("hmac-sha256", b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    ("keyed-blake2s", bytes(range(32)), b"",
     "48a8997da407876b3d79c0d92325ad3b89cbb754d86ab71aee047ad345fd2c49"),
]


# ----------------------------------------------------------------------
# Known-answer vectors, both providers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hash_name,message,expected", HASH_VECTORS)
@pytest.mark.parametrize("provider", BACKENDS, ids=lambda b: b.name)
def test_hash_vectors(provider, hash_name, message, expected):
    assert provider.hash_digest(hash_name, message).hex() == expected


@pytest.mark.parametrize("mac_name,key,message,expected", MAC_VECTORS)
@pytest.mark.parametrize("provider", BACKENDS, ids=lambda b: b.name)
def test_mac_vectors(provider, mac_name, key, message, expected):
    assert provider.mac(mac_name, key, message).hex() == expected


@pytest.mark.parametrize("provider", BACKENDS, ids=lambda b: b.name)
def test_hmac_digest_helper_matches_backend(provider):
    tag = hmac_digest(b"\x0b" * 20, b"Hi There", hash_name="sha1",
                      backend=provider)
    assert tag.hex() == "b617318655057264e28bc0b6fb378c8ef146be00"


# ----------------------------------------------------------------------
# Randomized fuzz: reference == accelerated for every registered MAC
# ----------------------------------------------------------------------
def _fuzz_cases(seed, count, max_key_len=96):
    rng = random.Random(seed)
    for _ in range(count):
        key = rng.randbytes(rng.randint(1, max_key_len))
        message = rng.randbytes(rng.randint(0, 512))
        yield key, message


@pytest.mark.parametrize("descriptor", available_macs(),
                         ids=lambda d: d.name)
def test_mac_fuzz_equivalence(descriptor):
    algorithm = get_mac(descriptor.name)
    # BLAKE2s keys are at most 32 bytes; HMAC keys may be any length.
    max_key_len = 32 if "blake2s" in descriptor.name else 96
    for key, message in _fuzz_cases(seed=descriptor.name, count=40,
                                    max_key_len=max_key_len):
        reference_tag = algorithm.mac(key, message, backend="reference")
        accelerated_tag = algorithm.mac(key, message, backend="accelerated")
        assert reference_tag == accelerated_tag
        assert len(reference_tag) == descriptor.digest_size
        assert algorithm.verify(key, message, accelerated_tag,
                                backend="reference")


@pytest.mark.parametrize("hash_name", ["sha1", "sha256", "blake2s"])
def test_hash_fuzz_equivalence(hash_name):
    for _, message in _fuzz_cases(seed=hash_name, count=40):
        assert REFERENCE.hash_digest(hash_name, message) == \
            ACCELERATED.hash_digest(hash_name, message)


# ----------------------------------------------------------------------
# HMAC-DRBG streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hash_name", ["sha1", "sha256"])
def test_drbg_streams_identical_across_backends(hash_name):
    reference = HmacDrbg(b"equiv-seed", personalization=b"p",
                         hash_name=hash_name, backend="reference")
    accelerated = HmacDrbg(b"equiv-seed", personalization=b"p",
                           hash_name=hash_name, backend="accelerated")
    for length in (1, 16, 33, 64):
        assert reference.generate(length) == accelerated.generate(length)
    assert reference.uniform(10.0, 20.0) == accelerated.uniform(10.0, 20.0)
    reference.reseed(b"extra")
    accelerated.reseed(b"extra")
    assert reference.generate_batch(8, 5) == accelerated.generate_batch(8, 5)
    assert reference.uniform_batch(0.0, 1.0, 5) == \
        accelerated.uniform_batch(0.0, 1.0, 5)


def test_drbg_reports_backend_name():
    assert HmacDrbg(b"s", backend="reference").backend_name == "reference"
    assert HmacDrbg(b"s", backend=ACCELERATED).backend_name == "accelerated"


@pytest.mark.parametrize("provider", BACKENDS, ids=lambda b: b.name)
def test_hash_names_are_case_insensitive(provider):
    assert HmacDrbg(b"s", hash_name="SHA256",
                    backend=provider).generate(8) == \
        HmacDrbg(b"s", hash_name="sha256", backend=provider).generate(8)
    assert provider.hash_digest("SHA1", b"abc") == \
        provider.hash_digest("sha1", b"abc")


# ----------------------------------------------------------------------
# Registry and selection semantics
# ----------------------------------------------------------------------
def test_both_providers_registered():
    assert {"reference", "accelerated"} <= set(available_backends())


def test_get_backend_accepts_instances_and_names():
    assert get_backend(REFERENCE) is REFERENCE
    assert get_backend("Accelerated") is ACCELERATED
    assert isinstance(get_backend("reference"), ReferenceBackend)
    assert isinstance(get_backend("accelerated"), AcceleratedBackend)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown crypto backend"):
        get_backend("openssl3")
    with pytest.raises(ValueError, match="unknown crypto backend"):
        set_default_backend("openssl3")


def test_builtin_default_is_accelerated(monkeypatch):
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    monkeypatch.setattr(backend_mod, "_default_override", None)
    assert default_backend_name() == "accelerated"
    assert get_backend() is ACCELERATED


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setattr(backend_mod, "_default_override", None)
    monkeypatch.setenv(backend_mod.ENV_VAR, "REFERENCE")
    assert default_backend_name() == "reference"
    assert get_backend() is REFERENCE


def test_set_default_backend_overrides_env(monkeypatch):
    monkeypatch.setenv(backend_mod.ENV_VAR, "accelerated")
    set_default_backend("reference")
    try:
        assert get_backend() is REFERENCE
    finally:
        set_default_backend(None)
    assert get_backend() is ACCELERATED


def test_use_backend_scopes_the_override():
    before = default_backend_name()
    with use_backend("reference") as provider:
        assert provider is REFERENCE
        assert get_backend() is REFERENCE
    assert default_backend_name() == before


def test_unknown_primitives_rejected():
    for provider in BACKENDS:
        with pytest.raises(ValueError):
            provider.hash_digest("md5-but-wrong", b"")
        with pytest.raises(ValueError):
            provider.digest_size("md5-but-wrong")
        with pytest.raises(ValueError):
            provider.mac("cmac-aes", b"k", b"m")
        with pytest.raises(ValueError):
            provider.hmac_function("blake2s")


# ----------------------------------------------------------------------
# End-to-end: a full measurement is identical under either backend
# ----------------------------------------------------------------------
def test_measurement_identical_across_backends(key, firmware):
    from repro.smartplus import build_smartplus_architecture

    outputs = {}
    for name in ("reference", "accelerated"):
        architecture = build_smartplus_architecture(
            key, mac_name="keyed-blake2s", application_size=512)
        architecture.load_application(firmware)
        architecture.use_crypto_backend(name)
        output = architecture.perform_measurement()
        outputs[name] = (output.digest, output.tag)
    assert outputs["reference"] == outputs["accelerated"]
