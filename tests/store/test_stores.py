"""Contract tests: all three StateStore backends behave identically.

Every backend — memory, JSONL snapshot+journal, SQLite — must upsert
enrollments, journal reports, checkpoint deterministically, and replay
snapshot + journal tail into the same :class:`RestoredState`.
"""

import json

import pytest

from repro.core.verification import (
    DeviceStatus,
    Enrollment,
    VerificationReport,
)
from repro.fleet.sinks import FleetHealth
from repro.store import (
    JsonlStore,
    MemoryStore,
    SqliteStore,
    StoreError,
    encode_snapshot,
)

BACKENDS = ("memory", "jsonl", "sqlite")


def make_store(backend, tmp_path):
    if backend == "memory":
        return MemoryStore()
    if backend == "jsonl":
        return JsonlStore(tmp_path / "state")
    return SqliteStore(tmp_path / "state.sqlite")


def reopen(backend, store, tmp_path):
    """Simulate a process restart: close and reopen the same medium."""
    if backend == "memory":
        return store  # memory survives only within the process
    store.close()
    return make_store(backend, tmp_path)


def enrollment(device_id, last_seen=None):
    return Enrollment.create(device_id, b"\x01" * 16,
                             [b"\xaa" * 32], last_seen=last_seen)


def report(device_id, collection_time, status=DeviceStatus.HEALTHY,
           measurements=3, newest=None):
    row = {
        "device_id": device_id,
        "collection_time": collection_time,
        "status": status.value,
        "measurements": measurements,
        "freshness": 1.5,
        "missing_intervals": 0,
        "anomalies": [],
        "infected_timestamps": [],
        "newest_timestamp": newest if newest is not None
        else collection_time - 1.5,
    }
    return VerificationReport.from_row(row)


@pytest.mark.parametrize("backend", BACKENDS)
def test_enrollments_round_trip_and_upsert(backend, tmp_path):
    store = make_store(backend, tmp_path)
    first = enrollment("dev-α")
    store.save_enrollment(first)
    store.save_enrollment(enrollment("dev-b"))
    advanced = first.advanced(120.0)
    store.save_enrollment(advanced)  # upsert, not duplicate

    store = reopen(backend, store, tmp_path)
    state = store.restore_state()
    assert set(state.enrollments) == {"dev-α", "dev-b"}
    assert state.enrollments["dev-α"] == advanced
    assert state.enrollments["dev-b"].last_seen is None


@pytest.mark.parametrize("backend", BACKENDS)
def test_journal_tail_replayed_after_checkpoint(backend, tmp_path):
    """Reports appended after the last checkpoint are not lost."""
    store = make_store(backend, tmp_path)
    store.save_enrollment(enrollment("dev-1"))
    health = FleetHealth()
    checkpointed = report("dev-1", 100.0)
    health.record(checkpointed)
    store.append_report(checkpointed)
    store.checkpoint(health, {"dev-1": 100.0}, rounds_completed=1)

    # A crash strikes after two more reports but before any checkpoint.
    store.append_report(report("dev-1", 200.0, newest=198.0))
    store.append_report(
        report("dev-1", 300.0, status=DeviceStatus.INFECTED, newest=299.0))

    store = reopen(backend, store, tmp_path)
    state = store.restore_state()
    assert state.health.reports_total == 3
    assert state.health.count(DeviceStatus.INFECTED) == 1
    assert state.health.flagged_devices == {"dev-1"}
    assert state.last_collection_times["dev-1"] == 300.0
    assert state.enrollments["dev-1"].last_seen == 299.0
    assert state.rounds_completed == 1
    assert state.replayed_reports == 2  # only the un-checkpointed tail


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_is_deterministic(backend, tmp_path):
    store = make_store(backend, tmp_path)
    for index in range(3):
        store.save_enrollment(enrollment(f"dev-{index}", last_seen=50.0))
    health = FleetHealth()
    health.record(report("dev-0", 60.0))
    times = {"dev-0": 60.0}

    store.checkpoint(health, times, rounds_completed=1)
    first_bytes = store.state_bytes()
    assert first_bytes  # a checkpoint produced a snapshot
    store.checkpoint(health, times, rounds_completed=1)
    assert store.state_bytes() == first_bytes
    # And the snapshot is the canonical encoding of its own rows.
    assert encode_snapshot(store.state_rows()) == first_bytes


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_store_restores_to_blank_state(backend, tmp_path):
    store = make_store(backend, tmp_path)
    state = store.restore_state()
    assert state.enrollments == {}
    assert state.health.reports_total == 0
    assert state.rounds_completed == 0
    assert store.state_rows() is None
    assert store.state_bytes() == b""


@pytest.mark.parametrize("backend", BACKENDS)
def test_device_history_filters_and_limits(backend, tmp_path):
    store = make_store(backend, tmp_path)
    for time in (10.0, 20.0, 30.0):
        store.append_report(report("dev-a", time))
        store.append_report(report("dev-b", time + 1.0))
    rows = store.device_history("dev-a")
    assert [row["collection_time"] for row in rows] == [10.0, 20.0, 30.0]
    newest = store.device_history("dev-a", limit=2)
    assert [row["collection_time"] for row in newest] == [20.0, 30.0]
    assert store.device_history("dev-missing") == []


def test_sqlite_history_survives_checkpoints(tmp_path):
    """SQLite is the full-history backend: checkpoints drop nothing."""
    store = SqliteStore(tmp_path / "state.sqlite")
    store.save_enrollment(enrollment("dev-1"))
    for time in (10.0, 20.0, 30.0):
        store.append_report(report("dev-1", time))
        store.checkpoint(FleetHealth(), {})
    assert len(store.device_history("dev-1")) == 3


def test_jsonl_atomic_snapshot_and_torn_journal_tail(tmp_path):
    store = JsonlStore(tmp_path / "state")
    store.save_enrollment(enrollment("dev-1"))
    health = FleetHealth()
    store.checkpoint(health, {}, rounds_completed=1)
    store.append_report(report("dev-1", 100.0))
    store.close()

    # No temp file left behind by the atomic replace.
    leftovers = [path for path in (tmp_path / "state").iterdir()
                 if path.suffix == ".tmp"]
    assert leftovers == []

    # A crash mid-append leaves a torn final line; recovery must
    # tolerate it and keep every complete record.
    journal = tmp_path / "state" / "journal.jsonl"
    with open(journal, "a", encoding="utf-8") as stream:
        stream.write('{"seq": 99, "kind": "report", "row"')

    reopened = JsonlStore(tmp_path / "state")
    state = reopened.restore_state()
    assert state.health.reports_total == 1
    assert state.rounds_completed == 1


def test_jsonl_corrupt_middle_record_raises(tmp_path):
    store = JsonlStore(tmp_path / "state")
    store.append_report(report("dev-1", 10.0))
    store.close()
    journal = tmp_path / "state" / "journal.jsonl"
    lines = journal.read_text().splitlines()
    journal.write_text("not json at all\n" + "\n".join(lines) + "\n")
    with pytest.raises(StoreError):
        JsonlStore(tmp_path / "state")


def test_jsonl_checkpoint_truncates_journal(tmp_path):
    store = JsonlStore(tmp_path / "state")
    for index in range(5):
        store.append_report(report("dev-1", float(index)))
    store.flush()
    journal = tmp_path / "state" / "journal.jsonl"
    assert len(journal.read_text().splitlines()) == 5
    store.checkpoint(FleetHealth(), {})
    assert journal.read_text() == ""
    # Sequence numbering continues past the checkpoint.
    store.append_report(report("dev-1", 99.0))
    store.flush()
    record = json.loads(journal.read_text().splitlines()[0])
    assert record["seq"] == 6


def test_jsonl_flush_every_batches_journal_flushes(tmp_path):
    store = JsonlStore(tmp_path / "state", flush_every=10)
    store.append_report(report("dev-1", 1.0))
    # One record buffered, not yet flushed through to the file.
    journal = tmp_path / "state" / "journal.jsonl"
    buffered = journal.read_text() if journal.exists() else ""
    store.flush()
    flushed = journal.read_text()
    assert flushed.endswith("\n")
    assert len(flushed) >= len(buffered)
    with pytest.raises(ValueError):
        JsonlStore(tmp_path / "other", flush_every=0)


def test_memory_store_bounds_report_retention():
    store = MemoryStore(max_reports=4)
    health = FleetHealth()
    for index in range(3):
        record = report("dev-1", float(index))
        health.record(record)
        store.append_report(record)
    store.checkpoint(health, {}, rounds_completed=1)
    # Three more push the first (already checkpointed) reports out of
    # the window; restore still reproduces the full aggregate.
    for index in range(3, 6):
        store.append_report(report("dev-1", float(index)))
    assert len(store.device_history("dev-1")) == 4
    state = store.restore_state()
    assert state.health.reports_total == 6
    assert state.replayed_reports == 3


def test_memory_store_rejects_restore_after_uncheckpointed_eviction():
    store = MemoryStore(max_reports=2)
    for index in range(4):  # nothing checkpointed, two reports evicted
        store.append_report(report("dev-1", float(index)))
    with pytest.raises(StoreError):
        store.restore_state()
    with pytest.raises(ValueError):
        MemoryStore(max_reports=0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_replay_never_resurrects_a_reenrollment_reset(backend, tmp_path):
    """A deliberate re-enrollment (last_seen=None, new key) written after
    journaled reports must survive restore on every backend — replay may
    not re-advance past the reset."""
    store = make_store(backend, tmp_path)
    store.save_enrollment(enrollment("dev-1"))
    store.append_report(report("dev-1", 100.0, newest=100.0))
    reset = Enrollment.create("dev-1", b"\x02" * 16, [b"\xbb" * 32])
    store.save_enrollment(reset)  # re_enroll=True path, then crash

    store = reopen(backend, store, tmp_path)
    state = store.restore_state()
    assert state.enrollments["dev-1"].last_seen is None
    assert state.enrollments["dev-1"].key == b"\x02" * 16
    # The report itself is still part of the replayed aggregate.
    assert state.health.reports_total == 1
    # A report arriving *after* the reset advances normally again.
    store.append_report(report("dev-1", 200.0, newest=199.0))
    state = store.restore_state()
    assert state.enrollments["dev-1"].last_seen == 199.0


def test_jsonl_append_after_torn_tail_does_not_corrupt(tmp_path):
    """Recovery must repair a torn tail before the next append merges
    a new record onto the partial line."""
    store = JsonlStore(tmp_path / "state")
    store.append_report(report("dev-1", 10.0))
    store.close()
    journal = tmp_path / "state" / "journal.jsonl"
    with open(journal, "a", encoding="utf-8") as stream:
        stream.write('{"seq": 2, "kind": "rep')  # crash mid-append

    reopened = JsonlStore(tmp_path / "state")
    reopened.save_enrollment(enrollment("dev-2"))
    reopened.append_report(report("dev-2", 20.0))
    reopened.close()

    final = JsonlStore(tmp_path / "state")
    state = final.restore_state()
    assert state.health.reports_total == 2
    assert "dev-2" in state.enrollments


def test_jsonl_acknowledged_record_missing_newline_is_completed(tmp_path):
    """A record that parsed (and was re-served by replay) but lost only
    its newline must be completed on repair, never dropped."""
    store = JsonlStore(tmp_path / "state")
    store.save_enrollment(enrollment("dev-1"))
    store.save_enrollment(enrollment("dev-2"))
    store.close()
    journal = tmp_path / "state" / "journal.jsonl"
    data = journal.read_bytes()
    assert data.endswith(b"\n")
    journal.write_bytes(data[:-1])  # crash between record and newline

    reopened = JsonlStore(tmp_path / "state")
    assert reopened.has_enrollment("dev-2")  # acknowledged on reopen...
    reopened.save_enrollment(enrollment("dev-3"))
    reopened.close()
    final = JsonlStore(tmp_path / "state").restore_state()
    # ...so it must survive the next crash/recovery too.
    assert set(final.enrollments) == {"dev-1", "dev-2", "dev-3"}


def test_sqlite_close_is_idempotent(tmp_path):
    store = SqliteStore(tmp_path / "state.sqlite")
    with store:
        store.save_enrollment(enrollment("dev-1"))
        store.close()  # early close inside the context manager
    store.close()  # and once more for good measure
    assert SqliteStore(tmp_path / "state.sqlite").has_enrollment("dev-1")


@pytest.mark.parametrize("backend", BACKENDS)
def test_measurement_free_report_does_not_shield_a_reset(backend, tmp_path):
    """A NO_DATA report after a re-enrollment reset must not resurrect
    the decommissioned unit's collection time on restore."""
    store = make_store(backend, tmp_path)
    store.save_enrollment(enrollment("dev-1"))
    health = FleetHealth()
    first = report("dev-1", 100.0, newest=100.0)
    health.record(first)
    store.append_report(first)
    store.checkpoint(health, {"dev-1": 100.0}, rounds_completed=1)

    # Deliberate reset (live verifier popped the time), then the new
    # unit fails to answer a round; crash before any checkpoint.
    store.save_enrollment(
        Enrollment.create("dev-1", b"\x02" * 16, [b"\xbb" * 32]))
    store.append_report(report("dev-1", 200.0,
                               status=DeviceStatus.NO_DATA,
                               measurements=0, newest=None))

    store = reopen(backend, store, tmp_path)
    state = store.restore_state()
    assert state.enrollments["dev-1"].last_seen is None
    assert "dev-1" not in state.last_collection_times


def test_future_snapshot_version_is_rejected(tmp_path):
    store = JsonlStore(tmp_path / "state")
    store.save_enrollment(enrollment("dev-1"))
    store.checkpoint(FleetHealth(), {})
    store.close()
    snapshot = tmp_path / "state" / "snapshot.json"
    document = json.loads(snapshot.read_text())
    document["version"] = 99
    snapshot.write_text(json.dumps(document))
    with pytest.raises(StoreError):
        JsonlStore(tmp_path / "state")


@pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
def test_writes_after_close_raise_store_error(backend, tmp_path):
    store = make_store(backend, tmp_path)
    store.save_enrollment(enrollment("dev-1"))
    store.close()
    with pytest.raises(StoreError):
        store.append_report(report("dev-1", 10.0))
    with pytest.raises(StoreError):
        store.checkpoint(FleetHealth(), {})


def test_jsonl_tail_torn_inside_multibyte_character(tmp_path):
    """A crash can cut a record mid-way through a multi-byte UTF-8
    character; recovery must treat it as a torn tail, not die decoding."""
    store = JsonlStore(tmp_path / "state")
    store.save_enrollment(enrollment("dev-1"))
    store.close()
    journal = tmp_path / "state" / "journal.jsonl"
    # Partial record ending in the first byte of 'é' (0xC3 0xA9).
    with open(journal, "ab") as stream:
        stream.write(b'{"seq": 2, "kind": "enrollment", "row": {"de\xc3')

    reopened = JsonlStore(tmp_path / "state")
    assert reopened.has_enrollment("dev-1")
    reopened.save_enrollment(enrollment("dev-é"))
    reopened.close()
    state = JsonlStore(tmp_path / "state").restore_state()
    assert set(state.enrollments) == {"dev-1", "dev-é"}
