"""Figure 1 on a real fleet — campaign-engine dwell sweep.

:mod:`repro.experiments.qoa_detection` reproduces Figure 1's shape
from sampled timelines; this harness reproduces it from *end-to-end
campaigns*: every point provisions a real fleet of ERASMUS provers,
deploys :class:`~repro.adversary.fleet.FleetMobileMalware` onto the
shared engine, runs the collection rounds over a transport, and scores
the verifier's actual :class:`~repro.core.verification.
VerificationReport` stream against the adversary's ground truth.  The
expected shape is the same analytic law:

* ERASMUS detection rate ≈ min(1, dwell / T_M), saturating at 1 once
  the dwell time exceeds ``T_M``;
* on-demand detection rate ≈ min(1, dwell / T_C) — near zero for any
  malware that leaves before the next attestation request.

``flagship`` runs the headline single cell from the issue: a
1000-device fleet on the swarm-relay transport under partition-and-
merge mobility, with a store crash injected mid-round — proving the
adversary layer, the mobility model, the fault injectors and the
durable-verifier recovery path all compose at fleet scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaign import CampaignRunner, Scenario, ScenarioGrid

#: Dwell times as fractions of ``T_M`` (mirrors ``qoa_detection``).
DEFAULT_DWELL_FRACTIONS: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def build_grid(measurement_interval: float = 60.0,
               collection_interval: float = 600.0,
               dwell_fractions: Sequence[float] = DEFAULT_DWELL_FRACTIONS,
               devices: int = 120,
               horizon: float = 4 * 3600.0,
               seed: int = 7) -> ScenarioGrid:
    """The dwell-sweep grid: (dwell x protocol) mobile-malware cells."""
    base = Scenario(
        name="dwell-sweep", devices=devices, horizon=horizon,
        measurement_interval=measurement_interval,
        collection_interval=collection_interval,
        malware="mobile", arrival_rate=1.0 / (1.5 * collection_interval),
        victim_fraction=0.5, seed=seed)
    return ScenarioGrid(base=base, axes={
        "dwell": [fraction * measurement_interval
                  for fraction in dwell_fractions],
        "protocol": ["erasmus", "on-demand"],
    })


def run(measurement_interval: float = 60.0,
        collection_interval: float = 600.0,
        dwell_fractions: Sequence[float] = DEFAULT_DWELL_FRACTIONS,
        devices: int = 120,
        horizon: float = 4 * 3600.0,
        seed: int = 7,
        max_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """Sweep dwell time through full campaigns; one row per dwell value.

    Each row merges the ERASMUS and the on-demand cell for that dwell,
    so the output mirrors :func:`repro.experiments.qoa_detection.run`
    and the two harnesses can be compared column for column.
    """
    grid = build_grid(measurement_interval, collection_interval,
                      dwell_fractions, devices, horizon, seed)
    runner = CampaignRunner(grid, name="campaign-dwell-sweep",
                            max_workers=max_workers)
    results = runner.run()
    rows: List[Dict[str, object]] = []
    # cells() expands dwell (slow axis) x protocol (fast axis)
    for index, fraction in enumerate(dwell_fractions):
        erasmus = results[2 * index]
        ondemand = results[2 * index + 1]
        assert erasmus.scenario.protocol == "erasmus"
        assert ondemand.scenario.protocol == "on-demand"
        rows.append({
            "dwell_over_tm": fraction,
            "dwell_s": fraction * measurement_interval,
            "erasmus_detection_rate": erasmus.detection.detection_rate,
            "ondemand_detection_rate": ondemand.detection.detection_rate,
            "analytic_erasmus": erasmus.analytic_detection(),
            "analytic_ondemand": ondemand.analytic_detection(),
            "erasmus_infections": erasmus.detection.total_infections,
            "ondemand_infections": ondemand.detection.total_infections,
            "erasmus_mean_latency_s": erasmus.detection.mean_latency,
            "ondemand_mean_latency_s": ondemand.detection.mean_latency,
        })
    return rows


def flagship(devices: int = 1000,
             horizon: float = 3600.0,
             seed: int = 42) -> Scenario:
    """The issue's headline cell: 1k devices, mobility, fault injection.

    Mobile malware sweeps a 1000-device fleet collected over the
    swarm-relay transport while partition-and-merge mobility splits the
    swarm into islands, and the verifier's store crashes mid-round —
    the campaign must recover via the durable-verifier restart path.
    """
    return Scenario(
        name="flagship-1k", devices=devices, horizon=horizon,
        measurement_interval=60.0, collection_interval=600.0,
        malware="mobile", dwell=120.0, arrival_rate=1.0 / 900.0,
        victim_fraction=0.25,
        transport="swarm-relay", mobility="partition-merge",
        partition_period=600.0, merged_fraction=0.5,
        mobility_area=400.0, store_crash_round=2, seed=seed)


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the campaign dwell sweep as a text table."""
    lines = ["Campaign engine: fleet-wide mobile-malware dwell sweep"]
    lines.append(f"{'dwell/T_M':>10}{'ERASMUS':>10}{'on-dem.':>10}"
                 f"{'analytic E':>12}{'analytic OD':>12}{'infections':>12}")
    for row in rows:
        lines.append(
            f"{row['dwell_over_tm']:>10.2f}"
            f"{row['erasmus_detection_rate']:>10.2f}"
            f"{row['ondemand_detection_rate']:>10.2f}"
            f"{row['analytic_erasmus']:>12.2f}"
            f"{row['analytic_ondemand']:>12.2f}"
            f"{row['erasmus_infections']:>12d}")
    return "\n".join(lines)


def main() -> None:
    """Print the campaign dwell sweep."""
    rows = run()
    print(format_table(rows))


if __name__ == "__main__":
    main()
