"""Hardware-enforced secure boot for the HYDRA model.

HYDRA relies on secure boot to guarantee the integrity of the seL4
kernel image and the PrAtt process image at system initialization time;
everything after that is enforced by seL4's (formally verified)
capability system.  The model keeps a table of expected image digests
and refuses to boot when any measured image deviates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.crypto.constant_time import constant_time_compare
from repro.crypto.sha256 import sha256_digest


class SecureBootError(Exception):
    """Raised when an image fails secure-boot verification."""


@dataclass
class SecureBoot:
    """Boot-time verifier for a set of named firmware images."""

    expected_digests: Dict[str, bytes] = field(default_factory=dict)
    booted: bool = False

    @classmethod
    def provision(cls, images: Dict[str, bytes]) -> "SecureBoot":
        """Record the digests of known-good images (factory provisioning)."""
        return cls(expected_digests={
            name: sha256_digest(image) for name, image in images.items()})

    def verify_image(self, name: str, image: bytes) -> bool:
        """Check one image against its provisioned digest.

        Constant-time: boot-time verification is exactly where a
        byte-by-byte early exit would leak how much of a forged image's
        digest matches.
        """
        expected = self.expected_digests.get(name)
        if expected is None:
            return False
        return constant_time_compare(sha256_digest(image), expected)

    def boot(self, images: Dict[str, bytes]) -> None:
        """Verify every provisioned image and mark the device booted.

        All provisioned images must be present and match; any mismatch
        or missing image aborts the boot.
        """
        for name in self.expected_digests:
            if name not in images:
                raise SecureBootError(f"image {name!r} missing at boot")
            if not self.verify_image(name, images[name]):
                raise SecureBootError(f"image {name!r} failed verification")
        self.booted = True
