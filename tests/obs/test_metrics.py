"""The metrics registry: instruments, labels, and the text exposition."""

import math

import pytest

from repro.obs import MetricError, MetricsRegistry


def test_counter_counts_and_renders():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "Jobs processed.")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5
    text = registry.render()
    assert "# HELP jobs_total Jobs processed." in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 5" in text


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("inflight")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value() == 1
    gauge.set(7.5)
    assert gauge.value() == 7.5


def test_labelled_children_are_cached_and_sorted():
    registry = MetricsRegistry()
    counter = registry.counter("reports_total", labels=("status",))
    healthy = counter.labels("healthy")
    assert counter.labels("healthy") is healthy  # cached child
    counter.labels("no_data").inc(2)
    healthy.inc()
    text = registry.render()
    # Children render sorted by label value, whatever the touch order.
    assert text.index('status="healthy"') < text.index('status="no_data"')
    assert 'reports_total{status="no_data"} 2' in text
    assert counter.value("healthy") == 1
    assert counter.value("never_seen") == 0.0


def test_labels_by_keyword_and_arity_errors():
    counter = MetricsRegistry().counter("x", labels=("op", "outcome"))
    assert counter.labels(op="read", outcome="ok") is \
        counter.labels("read", "ok")
    with pytest.raises(MetricError):
        counter.labels("read")  # missing a value
    with pytest.raises(MetricError):
        counter.labels("read", outcome="ok")  # mixed styles
    with pytest.raises(MetricError):
        counter.labels(op="read", wrong="ok")


def test_histogram_buckets_are_cumulative_with_inf():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    text = registry.render()
    assert 'latency_bucket{le="0.1"} 2' in text
    assert 'latency_bucket{le="1"} 3' in text
    assert 'latency_bucket{le="+Inf"} 4' in text
    assert "latency_sum 5.6" in text
    assert "latency_count 4" in text


def test_histogram_boundary_observation_lands_in_its_bucket():
    hist = MetricsRegistry().histogram("h", buckets=(1.0,))
    hist.observe(1.0)  # le="1" is inclusive, Prometheus-style
    child = hist.labels()
    assert child.counts[0] == 1


def test_histogram_needs_buckets():
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("h", buckets=())


def test_reregistration_is_idempotent_on_matching_signature():
    registry = MetricsRegistry()
    first = registry.counter("c", labels=("op",))
    again = registry.counter("c", labels=("op",))
    assert again is first
    with pytest.raises(MetricError):
        registry.counter("c")  # different labels
    with pytest.raises(MetricError):
        registry.gauge("c", labels=("op",))  # different kind


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    counter = registry.counter("c", labels=("path",))
    counter.labels('a"b\\c\nd').inc()
    text = registry.render()
    assert 'path="a\\"b\\\\c\\nd"' in text


def test_render_is_deterministic_across_registries():
    def build():
        registry = MetricsRegistry()
        # Registration/touch order deliberately differs from sort order.
        registry.gauge("z_gauge").set(1)
        counter = registry.counter("a_total", labels=("s",))
        counter.labels("b").inc()
        counter.labels("a").inc(2)
        hist = registry.histogram("m_seconds", buckets=(0.5, 2.0))
        hist.observe(0.1)
        return registry

    one = build()
    two = MetricsRegistry()
    hist = two.histogram("m_seconds", buckets=(0.5, 2.0))
    hist.observe(0.1)
    counter = two.counter("a_total", labels=("s",))
    counter.labels("a").inc(2)
    counter.labels("b").inc()
    two.gauge("z_gauge").set(1)
    assert one.render() == two.render()


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""


# ----------------------------------------------------------------------
# v2: quantiles, summaries, windowed/decayed instruments, absorb
# ----------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_histogram_value_raises_metric_error():
    hist = MetricsRegistry().histogram("h", buckets=(1.0,))
    hist.observe(0.5)
    with pytest.raises(MetricError, match="histogram"):
        hist.value()
    # The explicit reads remain available.
    assert hist.labels().sum == 0.5
    assert hist.labels().count == 1


def test_quantile_on_known_distribution_within_bucket_error():
    # 100 uniform observations 0.5, 1.5, ..., 99.5 against decade-ish
    # bucket boundaries: every estimate must land inside its bucket
    # bound, and the bound must contain the true quantile.
    boundaries = tuple(float(b) for b in range(10, 101, 10))
    hist = MetricsRegistry().histogram("u", buckets=boundaries)
    values = [i + 0.5 for i in range(100)]
    for value in values:
        hist.observe(value)
    child = hist.labels()
    for q in (0.1, 0.25, 0.5, 0.9, 0.99):
        # The q-quantile of n observations is the ceil(q*n)-th smallest
        # (the rank convention the bucket search uses).
        true = sorted(values)[max(math.ceil(q * 100) - 1, 0)]
        lower, upper = child.quantile_bounds(q)
        estimate = child.quantile(q)
        assert lower <= estimate <= upper
        assert lower <= true <= upper, (q, lower, true, upper)
        # Error is bounded by the bucket width (10 here).
        assert abs(estimate - true) <= (upper - lower)


def test_quantile_interpolates_within_the_bucket():
    hist = MetricsRegistry().histogram("h", buckets=(0.0, 10.0))
    for _ in range(10):
        hist.observe(5.0)  # all ten land in (0, 10]
    # Median rank 5/10 → halfway through the (0, 10] bucket.
    assert hist.quantile(0.5) == pytest.approx(5.0)


def test_quantile_overflow_clamps_to_last_finite_boundary():
    hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
    hist.observe(100.0)
    assert hist.quantile(0.5) == 2.0
    assert hist.labels().quantile_bounds(0.5) == (2.0, float("inf"))


def test_quantile_empty_and_invalid():
    hist = MetricsRegistry().histogram("h", buckets=(1.0,))
    assert hist.quantile(0.5) is None
    assert hist.labels().quantile_bounds(0.5) is None
    hist.observe(0.5)
    with pytest.raises(MetricError):
        hist.quantile(1.5)
    gauge = MetricsRegistry().gauge("g")
    with pytest.raises(MetricError):
        gauge.quantile(0.5)


def test_summary_lines_render_for_nonempty_series_only():
    registry = MetricsRegistry(summary_quantiles=(0.5, 0.99))
    hist = registry.histogram("lat", labels=("shard",), buckets=(1.0, 2.0))
    hist.labels("0").observe(0.5)
    hist.labels("1")  # touched but empty: no summary sample
    text = registry.render()
    assert "# TYPE lat_summary gauge" in text
    assert 'lat_summary{shard="0",quantile="0.5"}' in text
    assert 'lat_summary{shard="1"' not in text
    # Without summary quantiles no summary family appears at all.
    plain = MetricsRegistry()
    plain.histogram("lat", buckets=(1.0,)).observe(0.5)
    assert "_summary" not in plain.render()


def test_summary_quantiles_validated():
    with pytest.raises(MetricError):
        MetricsRegistry(summary_quantiles=(1.5,))


def test_window_counter_ages_out_of_the_window():
    clock = _FakeClock()
    registry = MetricsRegistry()
    registry.bind_clock(clock)
    recent = registry.window_counter("recent", window=10.0)
    recent.inc(3)
    clock.t = 5.0
    recent.inc(2)
    assert recent.value() == 5
    clock.t = 10.0  # the t=0 entry is now exactly window-old: expired
    assert recent.value() == 2
    clock.t = 50.0
    assert recent.value() == 0
    # Renders as a gauge of the in-window amount.
    assert "# TYPE recent gauge" in registry.render()
    with pytest.raises(MetricError):
        recent.inc(-1)


def test_window_counter_rate():
    clock = _FakeClock()
    registry = MetricsRegistry()
    registry.bind_clock(clock)
    recent = registry.window_counter("r", window=10.0)
    recent.inc(5)
    assert recent.labels().rate() == pytest.approx(0.5)


def test_decay_gauge_halves_per_half_life():
    clock = _FakeClock()
    registry = MetricsRegistry()
    registry.bind_clock(clock)
    activity = registry.decay_gauge("act", half_life=10.0)
    activity.mark(8.0)
    assert activity.value() == pytest.approx(8.0)
    clock.t = 10.0
    assert activity.value() == pytest.approx(4.0)
    clock.t = 20.0
    activity.mark(1.0)  # decays to 2, then adds 1
    assert activity.value() == pytest.approx(3.0)
    assert "# TYPE act gauge" in registry.render()


def test_bind_clock_is_retroactive():
    registry = MetricsRegistry()
    recent = registry.window_counter("r", window=10.0)
    recent.inc()  # stamped 0.0: no clock yet
    clock = _FakeClock()
    clock.t = 100.0
    registry.bind_clock(clock)  # children created earlier see it too
    assert recent.value() == 0  # the 0.0-stamped entry aged out


def test_window_and_decay_validate_parameters():
    registry = MetricsRegistry()
    with pytest.raises(MetricError):
        registry.window_counter("w", window=0.0)
    with pytest.raises(MetricError):
        registry.decay_gauge("d", half_life=-1.0)


def test_absorb_merges_under_cell_label_with_rename():
    parent = MetricsRegistry()
    parent.counter("repro_rounds_total").inc(7)  # parent's own family
    child = MetricsRegistry()
    child.counter("repro_rounds_total").inc(2)
    child.gauge("repro_devices").set(5)
    hist = child.histogram("repro_lat", labels=("shard",), buckets=(1.0,))
    hist.labels("0").observe(0.5)
    hist.labels("0").observe(3.0)
    parent.absorb(child, "cell", "a")
    other = MetricsRegistry()
    other.counter("repro_rounds_total").inc(4)
    parent.absorb(other, "cell", "b")
    text = parent.render()
    assert "repro_rounds_total 7" in text  # parent family untouched
    assert 'repro_cell_rounds_total{cell="a"} 2' in text
    assert 'repro_cell_rounds_total{cell="b"} 4' in text
    assert 'repro_cell_devices{cell="a"} 5' in text
    assert 'repro_cell_lat_bucket{shard="0",cell="a",le="1"} 1' in text
    assert 'repro_cell_lat_count{shard="0",cell="a"} 2' in text
    assert 'repro_cell_lat_sum{shard="0",cell="a"} 3.5' in text
