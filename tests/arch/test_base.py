"""Tests for the architecture-independent measurement logic."""

import pytest

from repro.arch.base import (
    ArchitectureError,
    MeasurementAborted,
    encode_timestamp,
    hash_for_mac,
)
from repro.crypto.blake2s import blake2s_digest
from repro.crypto.mac import get_mac
from repro.crypto.sha256 import sha256_digest


def test_hash_for_mac_pairs():
    assert hash_for_mac("hmac-sha256")(b"x") == sha256_digest(b"x")
    assert hash_for_mac("keyed-blake2s")(b"x") == blake2s_digest(b"x")
    with pytest.raises(ValueError):
        hash_for_mac("siphash")


def test_encode_timestamp_is_canonical_and_monotonic():
    assert encode_timestamp(1.0) == encode_timestamp(1.0)
    assert len(encode_timestamp(123.456)) == 8
    assert encode_timestamp(2.0) > encode_timestamp(1.0)
    # Sub-microsecond differences collapse (fixed-point encoding).
    assert encode_timestamp(1.0000001) == encode_timestamp(1.0)


def test_measurement_output_fields(smartplus_arch):
    smartplus_arch.advance_clock(42.0)
    output = smartplus_arch.perform_measurement()
    assert output.timestamp == pytest.approx(42.0)
    assert len(output.digest) == 32
    assert len(output.tag) == 32
    assert output.duration > 0
    assert output.memory_bytes == 512


def test_measurement_tag_verifies_under_shared_key(key, smartplus_arch):
    smartplus_arch.advance_clock(10.0)
    output = smartplus_arch.perform_measurement()
    algorithm = get_mac("keyed-blake2s")
    payload = encode_timestamp(output.timestamp) + output.digest
    assert algorithm.verify(key, payload, output.tag)


def test_measurement_digest_tracks_memory_content(smartplus_arch,
                                                  malware_image):
    smartplus_arch.advance_clock(1.0)
    clean = smartplus_arch.perform_measurement()
    smartplus_arch.load_application(malware_image)
    smartplus_arch.advance_clock(2.0)
    infected = smartplus_arch.perform_measurement()
    assert clean.digest != infected.digest


def test_aborted_measurement_raises_and_counts(smartplus_arch):
    with pytest.raises(MeasurementAborted):
        smartplus_arch.perform_measurement(abort=True)
    assert smartplus_arch.aborted_measurements == 1
    assert smartplus_arch.measurements_performed == 0


def test_request_authentication_accepts_valid_request(key, smartplus_arch):
    algorithm = get_mac("keyed-blake2s")
    smartplus_arch.advance_clock(100.0)
    tag = algorithm.mac(key, encode_timestamp(99.0))
    assert smartplus_arch.authenticate_request(b"", tag, 99.0)


def test_request_authentication_rejects_bad_mac(smartplus_arch):
    smartplus_arch.advance_clock(100.0)
    assert not smartplus_arch.authenticate_request(b"", b"\x00" * 32, 99.0)


def test_request_authentication_rejects_replay(key, smartplus_arch):
    algorithm = get_mac("keyed-blake2s")
    smartplus_arch.advance_clock(100.0)
    tag = algorithm.mac(key, encode_timestamp(99.0))
    assert smartplus_arch.authenticate_request(b"", tag, 99.0)
    assert not smartplus_arch.authenticate_request(b"", tag, 99.0)


def test_request_authentication_rejects_stale_request(key, smartplus_arch):
    algorithm = get_mac("keyed-blake2s")
    smartplus_arch.advance_clock(1000.0)
    tag = algorithm.mac(key, encode_timestamp(10.0))
    assert not smartplus_arch.authenticate_request(b"", tag, 10.0,
                                                   freshness_window=60.0)


def test_key_unreachable_outside_protected_execution(smartplus_arch):
    with pytest.raises(ArchitectureError):
        smartplus_arch._read_key()
