"""Test package (keeps basenames like test_architecture.py unambiguous)."""
