"""Section 3.5 — irregular measurement intervals vs schedule-aware malware.

A mobile adversary that knows the fixed ``T_M`` can enter right after a
measurement and leave just before the next one, evading detection with
certainty as long as its dwell time stays below ``T_M``.  Randomizing
the interval with a key-seeded CSPRNG (bounded to ``[L, U]``) removes
that certainty: the adversary now evades only when its dwell happens to
fit inside the (secret) next interval.

This harness sweeps the dwell time and reports evasion probabilities
under both schedules.  Expected shape: the regular schedule gives 100 %
evasion for any dwell below ``T_M`` and 0 % above; the irregular
schedule decays smoothly from 100 % at ``dwell <= L`` to 0 % at
``dwell >= U``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adversary.roving import ScheduleAwareMalware
from repro.analysis.sweep import ParameterSweep
from repro.core.scheduler import IrregularScheduler, RegularScheduler
from repro.crypto.backend import BackendSpec

DEFAULT_DWELL_FRACTIONS: Sequence[float] = (0.4, 0.6, 0.8, 0.95, 1.1, 1.4, 1.6)


def run(measurement_interval: float = 60.0,
        dwell_fractions: Sequence[float] = DEFAULT_DWELL_FRACTIONS,
        lower_fraction: float = 0.5, upper_fraction: float = 1.5,
        trials: int = 2000, key: bytes = b"\x42" * 16,
        seed: int = 11, max_workers: Optional[int] = None,
        backend: BackendSpec = None) -> List[Dict[str, object]]:
    """Sweep the adversary dwell time against both schedules.

    Each dwell fraction is evaluated independently (fresh schedulers
    seeded from the same key), so the sweep can run on a thread pool
    via ``max_workers`` without changing any row.  ``backend`` selects
    the crypto provider for the schedule CSPRNG.
    """
    lower = lower_fraction * measurement_interval
    upper = upper_fraction * measurement_interval

    def evaluate(fraction: float) -> Dict[str, object]:
        dwell = fraction * measurement_interval
        malware = ScheduleAwareMalware(dwell=dwell, seed=seed)
        regular_result = malware.simulate(
            RegularScheduler(measurement_interval), trials=trials)
        irregular_result = malware.simulate(
            IrregularScheduler(key, lower=lower, upper=upper,
                               backend=backend), trials=trials)
        return {
            "dwell_over_tm": fraction,
            "regular_evasion": regular_result.evasion_probability,
            "irregular_evasion": irregular_result.evasion_probability,
            "analytic_irregular_evasion": _analytic_evasion(
                dwell, lower, upper),
        }

    sweep = ParameterSweep({"fraction": list(dwell_fractions)})
    sweep.run(evaluate, max_workers=max_workers)
    return list(sweep.outcomes())


def _analytic_evasion(dwell: float, lower: float, upper: float) -> float:
    """P(next interval >= dwell) for a uniform interval on [lower, upper]."""
    if dwell <= lower:
        return 1.0
    if dwell >= upper:
        return 0.0
    return (upper - dwell) / (upper - lower)


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the evasion sweep as a text table."""
    lines = ["Section 3.5: schedule-aware malware evasion probability"]
    lines.append(f"{'dwell/T_M':>10}{'regular':>10}{'irregular':>12}"
                 f"{'analytic':>10}")
    for row in rows:
        lines.append(f"{row['dwell_over_tm']:>10.2f}"
                     f"{row['regular_evasion']:>10.2f}"
                     f"{row['irregular_evasion']:>12.2f}"
                     f"{row['analytic_irregular_evasion']:>10.2f}")
    return "\n".join(lines)


def main() -> None:
    """Print the evasion sweep."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
