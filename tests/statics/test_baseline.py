"""Baseline persistence: round-trip, justification, matching."""

import pytest

from repro.statics.baseline import Baseline, BaselineEntry, BaselineError
from repro.statics.engine import Finding


def finding(line=10):
    return Finding("src/repro/mod.py", line, 4, "constant-time",
                   "'mac' compared with '=='")


def test_baseline_round_trips_byte_identically(tmp_path):
    baseline = Baseline.from_findings([finding()], "grandfathered: docs")
    path = tmp_path / "statics-baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert reloaded.to_bytes() == baseline.to_bytes()
    assert len(reloaded) == 1
    assert reloaded.matches(finding())


def test_baseline_matches_ignore_line_drift():
    baseline = Baseline.from_findings([finding(line=10)], "why not")
    assert baseline.matches(finding(line=99))


def test_baseline_does_not_match_a_different_message_or_rule():
    baseline = Baseline.from_findings([finding()], "why not")
    other = Finding("src/repro/mod.py", 10, 4, "constant-time",
                    "different message")
    assert not baseline.matches(other)


def test_baseline_requires_a_justification_on_write():
    with pytest.raises(BaselineError):
        Baseline.from_findings([finding()], "   ")


def test_baseline_load_rejects_entries_without_justification(tmp_path):
    path = tmp_path / "statics-baseline.json"
    path.write_text(
        '{"version": 1, "entries": [{"rule": "codec", '
        '"path": "a.py", "line": 1, "message": "m"}]}',
        encoding="utf-8")
    with pytest.raises(BaselineError, match="justification"):
        Baseline.load(path)


def test_baseline_load_rejects_malformed_documents(tmp_path):
    path = tmp_path / "statics-baseline.json"
    path.write_text("[]", encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_baseline_entry_missing_field_is_an_error():
    with pytest.raises(BaselineError, match="message"):
        BaselineEntry.from_row({"rule": "codec", "path": "a.py",
                                "justification": "x"})


def test_baseline_entries_serialize_sorted(tmp_path):
    unordered = [
        Finding("z.py", 1, 0, "codec", "m"),
        Finding("a.py", 5, 0, "determinism", "m"),
        Finding("a.py", 2, 0, "codec", "m"),
    ]
    baseline = Baseline.from_findings(unordered, "sorted on disk")
    paths = [entry.path for entry in baseline.entries]
    assert paths == ["a.py", "a.py", "z.py"]
    assert [entry.line for entry in baseline.entries[:2]] == [2, 5]
