#!/usr/bin/env python3
"""Tampering forensics: why the insecure measurement buffer is enough.

Section 3.2/3.4: measurements live in unprotected memory, so malware
can delete, corrupt, reorder or try to forge them — but every one of
those actions is detected at the next collection, because forging a MAC
requires ``K`` and absence of expected records is itself incriminating.
This example runs each tampering primitive on a HYDRA (medium-end)
prover and shows the verifier's verdict, plus the clock-rewind attack
bouncing off the RROC.

Run with:  python examples/tamper_forensics.py
"""

from repro.adversary import ClockRewindAttempt, TamperingMalware
from repro.core import DeviceStatus, ErasmusProver
from repro.fleet import DeviceProfile, FleetVerifier
from repro.hw.clock import ReliableClock
from repro.sim import SimulationEngine

KEY = b"\x77" * 32
FIRMWARE = b"gateway-image-v5" + bytes(1024)

PROFILE = DeviceProfile.hydra(firmware=FIRMWARE,
                              application_size=64 * 1024,
                              measurement_interval=30.0,
                              collection_interval=300.0,
                              buffer_slots=16,
                              mac_name="hmac-sha256")


def build_prover() -> tuple[ErasmusProver, FleetVerifier, SimulationEngine]:
    device = PROFILE.provision("gateway-3", key=KEY)
    verifier = FleetVerifier(PROFILE.config)
    verifier.enroll_device(device)
    engine = SimulationEngine()
    device.prover.attach(engine)
    engine.run(until=300.0)
    return device.prover, verifier, engine


def collect_and_report(prover: ErasmusProver, verifier: FleetVerifier,
                       time: float, label: str) -> DeviceStatus:
    response = prover.handle_collect(verifier.create_collect_request())
    report = verifier.verify_collection("gateway-3", response,
                                        collection_time=time)
    extra = f" ({'; '.join(report.anomalies)})" if report.anomalies else ""
    print(f"  {label:<28} -> {report.status.value}{extra}")
    return report.status


def main() -> None:
    print("Tampering with the measurement buffer (HYDRA prover):")

    # Baseline: untampered history verifies as healthy.
    prover, verifier, engine = build_prover()
    collect_and_report(prover, verifier, engine.now, "no tampering")

    # Each attack gets a fresh prover so the verdicts are independent.
    attacks = {
        "delete newest records": lambda malware: malware.delete_latest(3),
        "corrupt newest digest": lambda malware: malware.corrupt_latest(),
        "replay an old record": lambda malware: malware.replay_old_measurement(),
        "forge a record": lambda malware: malware.forge_measurement(
            301.0, b"\x00" * 32),
        "wipe the whole buffer": lambda malware: malware.wipe_all(),
    }
    for label, action in attacks.items():
        prover, verifier, engine = build_prover()
        malware = TamperingMalware(prover.store, seed=5)
        action(malware)
        collect_and_report(prover, verifier, engine.now, label)

    print("\nClock-rewind attack against the RROC:")
    clock = ReliableClock(frequency_hz=8_000_000.0)
    clock.advance_to(1000.0)
    attempt = ClockRewindAttempt(clock=clock, target_time=500.0)
    blocked = attempt.execute()
    print(f"  rewind to t=500 blocked by hardware: {blocked}; "
          f"clock still reads {clock.read():.0f}s")


if __name__ == "__main__":
    main()
