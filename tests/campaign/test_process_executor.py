"""Tests for executor='process': cells in worker processes, same rows."""

import json

import pytest

from repro.campaign import CampaignRunner, Scenario
from repro.fleet.workers import _cell_to_row, cell_from_row
from repro.campaign.runner import run_scenario


def small(**overrides):
    base = dict(devices=6, horizon=900.0, measurement_interval=60.0,
                collection_interval=300.0, malware="mobile", dwell=120.0,
                arrival_rate=1 / 300.0, victim_fraction=0.5, seed=3)
    base.update(overrides)
    return Scenario(**base)


def test_cell_row_codec_round_trips():
    result = run_scenario(small())
    row = json.loads(json.dumps(_cell_to_row(result), sort_keys=True))
    rebuilt = cell_from_row(row)
    assert rebuilt.to_row() == result.to_row()
    assert rebuilt.wall_seconds == pytest.approx(result.wall_seconds)


def test_process_executor_rows_match_thread_executor():
    cells = [small(name=f"cell-{seed}", seed=seed) for seed in (1, 2)]
    thread = CampaignRunner(cells, max_workers=2)
    process = CampaignRunner(cells, max_workers=2, executor="process")
    thread_rows = [result.to_row() for result in thread.run()]
    process_rows = [result.to_row() for result in process.run()]
    assert json.dumps(thread_rows, sort_keys=True) == \
        json.dumps(process_rows, sort_keys=True)
    # Wall-clock rides home too (artifact timing section), but is
    # machine-dependent: just present, not compared.
    assert all(result.wall_seconds > 0 for result in process.results)
    assert all(result.obs is None for result in process.results)


def test_process_executor_rejects_unknown_and_observed():
    with pytest.raises(ValueError, match="unknown executor"):
        CampaignRunner([small()], executor="fork")

    from repro.obs import Observability
    with pytest.raises(ValueError, match="observed campaign"):
        CampaignRunner([small()], executor="process", obs=Observability())


def test_process_executor_artifact_shape():
    runner = CampaignRunner([small(name="solo")], name="proc-campaign",
                            executor="process", max_workers=1)
    runner.run()
    artifact = runner.artifact()
    assert artifact["campaign"] == "proc-campaign"
    assert artifact["cell_count"] == 1
    assert artifact["cells"][0]["scenario"]["name"] == "solo"
    assert artifact["timing"]["wall_seconds_total"] > 0
