#!/usr/bin/env python3
"""Quickstart: one ERASMUS prover, one verifier, one mobile infection.

This walks through the full ERASMUS life cycle on a SMART+ (low-end)
device using the :mod:`repro.fleet` API:

1. describe the device class with a :class:`DeviceProfile` and provision
   a device (key, imaged firmware, prover, healthy reference digest);
2. let it self-measure on its schedule for a while;
3. have the verifier collect and verify the measurement history;
4. let mobile malware visit the device *between* collections and leave
   again — and watch the next collection still expose it.

Run with:  python examples/quickstart.py
"""

from repro.fleet import DeviceProfile, FleetVerifier, InProcessTransport
from repro.sim import SimulationEngine

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIRMWARE = b"pump-controller-firmware-v1.3" + bytes(256)
MALWARE = b"botnet-dropper" + bytes(280)


def main() -> None:
    # 1. Describe and provision the device: 4 KB of measured memory,
    #    keyed BLAKE2s, a measurement every 60 s, a collection every
    #    10 minutes.  One call replaces the old build-architecture /
    #    load-image / hash-memory / construct-prover dance.
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=4096,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16,
                                      mac_name="keyed-blake2s")
    device = profile.provision("pump-1", key=KEY)

    engine = SimulationEngine()
    device.prover.attach(engine)
    transport = InProcessTransport(engine)
    transport.register(device)
    verifier = FleetVerifier(profile.config)
    verifier.enroll_device(device)

    # 2. Run the measurement schedule for the first collection interval.
    engine.run(until=600.0)
    print(f"[t=600] prover has taken "
          f"{device.prover.measurements_taken} measurements")

    # 3. First collection: everything should be healthy.  (freshness
    #    renders as "n/a" when a collection carries no measurements.)
    [report] = verifier.collect_all(transport, collection_time=engine.now)
    print(f"[t=600] collection #1: status={report.status.value}, "
          f"{report.measurement_count} records, "
          f"freshness={report.freshness_label}")

    # 4. Mobile malware arrives at t=700, acts for 3 minutes, then wipes
    #    itself and restores the original firmware at t=880.
    engine.run(until=700.0)
    device.load_application(MALWARE)
    engine.run(until=880.0)
    device.load_application(FIRMWARE)
    engine.run(until=1200.0)

    # 5. Second collection: the malware is long gone, but the history
    #    still contains measurements taken while it was present.
    [report] = verifier.collect_all(transport, collection_time=engine.now)
    print(f"[t=1200] collection #2: status={report.status.value}")
    for timestamp in report.infected_timestamps:
        print(f"          infected state recorded at t={timestamp:.0f}s "
              f"(malware had already left by collection time)")

    # 6. The same scenario under classic on-demand RA would have seen a
    #    healthy device at both attestation points — that is the gap
    #    ERASMUS closes.
    architecture = device.architecture
    print("\nPer-measurement cost on this device: "
          f"{architecture.cost_model.measurement_runtime(4096, profile.config.mac_name):.2f}s; "
          f"collection cost: {device.prover.collection_runtime() * 1000:.3f}ms")


if __name__ == "__main__":
    main()
