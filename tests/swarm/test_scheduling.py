"""Tests for staggered swarm measurement scheduling and QoSA metrics."""

import pytest

from repro.swarm import QoSALevel, StaggeredSchedule, SwarmAttestationResult, \
    build_swarm
from repro.swarm.scheduling import round_robin_collection_order


def test_group_count_from_busy_fraction():
    assert StaggeredSchedule(60.0, 1.0).group_count == 1
    assert StaggeredSchedule(60.0, 0.5).group_count == 2
    assert StaggeredSchedule(60.0, 0.25).group_count == 4
    assert StaggeredSchedule(60.0, 0.3).group_count == 4


def test_phase_offsets_spread_devices():
    devices = build_swarm(8, memory_bytes=1024)
    schedule = StaggeredSchedule(60.0, max_busy_fraction=0.25)
    offsets = schedule.phase_offsets(devices)
    assert set(offsets.values()) == {0.0, 15.0, 30.0, 45.0}


def test_feasibility_check():
    schedule = StaggeredSchedule(60.0, max_busy_fraction=0.25)
    assert schedule.feasible(measurement_runtime=10.0)
    assert not schedule.feasible(measurement_runtime=20.0)


def test_worst_case_busy_fraction_respects_bound():
    devices = build_swarm(32, memory_bytes=10 * 1024)
    runtime = devices[0].compute_time
    schedule = StaggeredSchedule(60.0, max_busy_fraction=0.25)
    assert schedule.feasible(runtime)
    worst = schedule.worst_case_busy_fraction(devices, runtime)
    # 32 devices split exactly into 4 groups of 8: the bound holds.
    assert worst <= 0.25 + 1e-9


def test_unstaggered_schedule_makes_everyone_busy_at_once():
    devices = build_swarm(10, memory_bytes=10 * 1024)
    runtime = devices[0].compute_time
    schedule = StaggeredSchedule(60.0, max_busy_fraction=1.0)
    assert schedule.busy_fraction_at(runtime / 2, devices, runtime) == 1.0


def test_busy_fraction_zero_with_no_devices():
    schedule = StaggeredSchedule(60.0, 0.5)
    assert schedule.busy_fraction_at(0.0, [], 5.0) == 0.0


def test_round_robin_collection_order():
    devices = build_swarm(7, memory_bytes=1024)
    batches = round_robin_collection_order(devices, per_collection=3)
    assert [len(batch) for batch in batches] == [3, 3, 1]
    flattened = [name for batch in batches for name in batch]
    assert flattened == [device.device_id for device in devices]
    with pytest.raises(ValueError):
        round_robin_collection_order(devices, per_collection=0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        StaggeredSchedule(0.0, 0.5)
    with pytest.raises(ValueError):
        StaggeredSchedule(60.0, 0.0)
    with pytest.raises(ValueError):
        StaggeredSchedule(60.0, 1.5)
    with pytest.raises(ValueError):
        StaggeredSchedule(60.0, 0.5).worst_case_busy_fraction([], 1.0,
                                                              samples=0)


def test_swarm_attestation_result_properties():
    result = SwarmAttestationResult(protocol="seda", devices_total=10,
                                    devices_attested=7, duration=5.0,
                                    qosa_level=QoSALevel.BINARY)
    assert result.coverage == pytest.approx(0.7)
    assert not result.complete
    empty = SwarmAttestationResult(protocol="seda", devices_total=0,
                                   devices_attested=0, duration=0.0,
                                   qosa_level=QoSALevel.BINARY)
    assert empty.coverage == 1.0
