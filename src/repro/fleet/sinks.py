"""Report sinks: where a fleet collection streams its verification output.

A 1,000-device round produces 1,000 :class:`VerificationReport`s;
rather than returning a list and letting every experiment hand-format
it, the :class:`repro.fleet.FleetVerifier` streams each finished report
to any number of sinks:

* :class:`MemorySink` — keep reports in a list (tests, small fleets);
* :class:`JsonlSink` — append one JSON object per report to a file, the
  shape log-pipeline ingestion expects;
* :class:`FleetHealthSink` — fold reports into a running
  :class:`FleetHealth` aggregate without retaining them.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import IO, Dict, Iterable, List, Mapping, Optional, Set, Union

from repro.core.verification import DeviceStatus, VerificationReport


@dataclass
class RoundStats:
    """Operational counters for one collection round.

    Where :class:`FleetHealth` aggregates *verification outcomes*,
    round stats capture the *collection mechanics*: how many requests
    went out, how many answers never came back, how many stale
    responses from earlier (timed-out) rounds the transport had to
    discard, and how long the round took in wall-clock terms.  Returned
    by ``collect_all`` (on the report list's ``stats`` attribute) and
    recorded, in memory only, on the verifier's :class:`FleetHealth` —
    wall-clock figures are machine-dependent, so they are deliberately
    kept out of the persisted health row (and out of campaign artifact
    rows and span traces, which must be byte-reproducible).

    ``wall_start`` / ``wall_end`` are one *monotonic* clock pair
    (``time.perf_counter``) bracketing the round, stamped by the
    verifier that ran it, so overlapping rounds (the async pipelined
    collector, sharded workers) can be ordered and intersected after
    the fact.  Monotonic stamps are only comparable within one
    process — they order and measure, they do not date.  For a single
    verifier's round ``wall_seconds == wall_end - wall_start``; a
    *merged* stat keeps the historical "slowest shard" wall_seconds
    while its pair brackets the union of the shards' pairs.
    """

    requests_sent: int = 0
    responses_received: int = 0
    responses_lost: int = 0
    stale_responses_rejected: int = 0
    shards: int = 0
    wall_seconds: float = 0.0
    wall_start: float = 0.0
    wall_end: float = 0.0

    @property
    def devices_per_second(self) -> float:
        """Collection throughput of this round (0 when instantaneous)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests_sent / self.wall_seconds

    @classmethod
    def merged(cls, parts: Iterable["RoundStats"]) -> "RoundStats":
        """Combine per-shard stats into one fleet-wide round.

        Counters add; wall-clock is the slowest shard, since shards run
        concurrently.  The monotonic pair brackets every part that
        stamped one (``wall_start`` the earliest start, ``wall_end``
        the latest end; parts that never stamped — all-zero pair —
        don't contribute).
        """
        total = cls()
        starts = []
        for part in parts:
            total.requests_sent += part.requests_sent
            total.responses_received += part.responses_received
            total.responses_lost += part.responses_lost
            total.stale_responses_rejected += part.stale_responses_rejected
            total.shards += part.shards
            total.wall_seconds = max(total.wall_seconds, part.wall_seconds)
            if part.wall_start or part.wall_end:
                starts.append(part.wall_start)
                total.wall_end = max(total.wall_end, part.wall_end)
        if starts:
            total.wall_start = min(starts)
        return total

    def summary(self) -> str:
        """One-line human-readable account of the round."""
        return (f"round: {self.requests_sent} request(s), "
                f"{self.responses_received} response(s), "
                f"{self.responses_lost} lost, "
                f"{self.stale_responses_rejected} stale rejected, "
                f"{self.shards} shard(s), {self.wall_seconds:.3f}s "
                f"({self.devices_per_second:.0f} devices/s)")


class ReportSink(abc.ABC):
    """Consumer of per-device verification reports."""

    #: Set by close() implementations that release resources; a failed
    #: collection round prunes closed sinks from its verifier.
    closed = False

    @abc.abstractmethod
    def emit(self, report: VerificationReport) -> None:
        """Accept one finished report."""

    def flush(self) -> None:
        """Push buffered reports to the backing medium (default: no-op)."""

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""

    def __enter__(self) -> "ReportSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SinkFanout:
    """Lifecycle guard for the sinks a collection round streams into.

    Used as a context manager around one round: on a clean exit every
    sink is flushed, so a finished round is always fully on disk; if
    the round body raises (a transport failing mid-round, say) the
    sinks are *closed* instead, so the reports verified before the
    failure still reach their files rather than dying in buffers when
    the exception unwinds the process.
    """

    def __init__(self, sinks: Iterable["ReportSink"]) -> None:
        self.sinks: List[ReportSink] = list(sinks)
        self.closed = False

    def flush(self) -> None:
        """Flush every still-open sink; first failure raises after all.

        Sinks that were already closed (a failed earlier round, a
        shared sink closed by another owner) are skipped — flushing a
        released stream would raise and could double-flush buffers.
        One sink failing to flush must not strand the reports buffered
        in the sinks behind it, so every sink gets its flush before the
        first error propagates — the same semantics :meth:`close` has
        always had.
        """
        first_error: Optional[Exception] = None
        for sink in self.sinks:
            if not sink.closed:
                try:
                    sink.flush()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        """Close every sink; the first failure propagates after all run.

        Idempotent: a second close (an exception handler unwinding past
        a fanout that already closed itself, ``Fleet.close`` after a
        failed round) is a no-op rather than a double-close.
        """
        if self.closed:
            return
        self.closed = True
        first_error: Optional[Exception] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "SinkFanout":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            # A close failure here means buffered reports were lost —
            # worse than the round's own error, so it must not be
            # silent; the round's exception stays chained as
            # __context__ of the close error.
            self.close()
            return False
        self.flush()
        return False


class MemorySink(ReportSink):
    """Retain every report in order of arrival."""

    def __init__(self) -> None:
        self.reports: List[VerificationReport] = []

    def emit(self, report: VerificationReport) -> None:
        self.reports.append(report)

    def for_device(self, device_id: str) -> List[VerificationReport]:
        """All retained reports for one device."""
        return [report for report in self.reports
                if report.device_id == device_id]


def report_to_row(report: VerificationReport) -> Dict[str, object]:
    """Flatten a report into the JSON-friendly row the JSONL sink writes.

    This is the same canonical row
    :meth:`repro.core.verification.VerificationReport.to_row` produces
    (and :meth:`~repro.core.verification.VerificationReport.from_row`
    reverses) — the :mod:`repro.store` journals persist identical rows.
    """
    return report.to_row()


class JsonlSink(ReportSink):
    """Append one JSON line per report to a file or file-like object.

    ``flush_every`` bounds data loss on long rounds: the stream is
    flushed to the OS after every ``flush_every`` reports (``None``
    keeps the historical flush-on-close-only behaviour).
    """

    def __init__(self, target: Union[str, IO[str]],
                 flush_every: Optional[int] = None) -> None:
        if flush_every is not None and flush_every <= 0:
            raise ValueError("flush_every must be positive")
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.flush_every = flush_every
        self.lines_written = 0
        self.closed = False

    def emit(self, report: VerificationReport) -> None:
        if self.closed:
            raise ValueError(
                "JsonlSink is closed (a failed collection round closes "
                "its sinks); attach a fresh sink before collecting again")
        json.dump(report_to_row(report), self._stream, sort_keys=True)
        self._stream.write("\n")
        self.lines_written += 1
        if self.flush_every is not None and \
                self.lines_written % self.flush_every == 0:
            self._stream.flush()

    def flush(self) -> None:
        if not self.closed:
            self._stream.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


@dataclass
class FleetHealth:
    """Aggregate health of a fleet across one or more collection rounds."""

    reports_total: int = 0
    measurements_verified: int = 0
    status_counts: Dict[str, int] = field(
        default_factory=lambda: {status.value: 0 for status in DeviceStatus})
    devices_seen: Set[str] = field(default_factory=set)
    flagged_devices: Set[str] = field(default_factory=set)
    missing_intervals_total: int = 0
    # Freshness accumulates as an exact rational so that summation is
    # associative: merging per-shard aggregates then reads back the
    # *same* value (bit for bit) as recording every report into one
    # aggregate, which the sharded-verifier merge tests rely on.  Plain
    # float addition would make the merged checkpoint differ in the
    # last ulp depending on shard layout.
    _freshness_sum: Fraction = Fraction(0)
    _freshness_count: int = 0
    #: Per-round collection mechanics (see :class:`RoundStats`).  Kept
    #: in memory only — wall-clock figures are machine-dependent, so
    #: they never enter the persisted row (:meth:`to_row`).
    round_stats: List[RoundStats] = field(default_factory=list,
                                          compare=False, repr=False)

    def record(self, report: VerificationReport) -> None:
        """Fold one report into the aggregate."""
        self.reports_total += 1
        self.measurements_verified += report.measurement_count
        self.status_counts[report.status.value] += 1
        self.devices_seen.add(report.device_id)
        if report.detected_infection():
            self.flagged_devices.add(report.device_id)
        self.missing_intervals_total += report.missing_intervals
        if report.freshness is not None:
            self._freshness_sum += Fraction(report.freshness)
            self._freshness_count += 1

    def record_round(self, stats: RoundStats) -> None:
        """Attach one finished round's collection mechanics."""
        self.round_stats.append(stats)

    def merge(self, other: "FleetHealth") -> None:
        """Fold another aggregate into this one (sharded verifiers)."""
        self.reports_total += other.reports_total
        self.measurements_verified += other.measurements_verified
        for status, count in other.status_counts.items():
            self.status_counts[status] = \
                self.status_counts.get(status, 0) + count
        self.devices_seen |= other.devices_seen
        self.flagged_devices |= other.flagged_devices
        self.missing_intervals_total += other.missing_intervals_total
        self._freshness_sum += other._freshness_sum
        self._freshness_count += other._freshness_count

    @classmethod
    def merged(cls, parts: Iterable["FleetHealth"]) -> "FleetHealth":
        """One fleet-wide aggregate from per-shard aggregates.

        Exact: thanks to the rational freshness accumulator the merged
        aggregate serializes to the same bytes as a single aggregate
        fed every report directly, whatever the shard layout.
        """
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def devices_total(self) -> int:
        """Number of distinct devices that produced at least one report."""
        return len(self.devices_seen)

    @property
    def healthy_fraction(self) -> float:
        """Fraction of reports that verified fully healthy."""
        if not self.reports_total:
            return 0.0
        return self.status_counts[DeviceStatus.HEALTHY.value] / \
            self.reports_total

    @property
    def mean_freshness(self) -> Optional[float]:
        """Mean freshness over reports that carried measurements."""
        if not self._freshness_count:
            return None
        return float(Fraction(self._freshness_sum) / self._freshness_count)

    def count(self, status: DeviceStatus) -> int:
        """Number of reports with the given status."""
        return self.status_counts[status.value]

    # ------------------------------------------------------------------
    # Persistence codec
    # ------------------------------------------------------------------
    def to_row(self) -> Dict[str, object]:
        """Flatten into a stable, JSON-friendly row.

        Sets are emitted sorted so equal aggregates always serialize to
        identical rows — the property :class:`repro.store.StateStore`
        checkpoints rely on.
        """
        return {
            "reports_total": self.reports_total,
            "measurements_verified": self.measurements_verified,
            "status_counts": dict(sorted(self.status_counts.items())),
            "devices_seen": sorted(self.devices_seen),
            "flagged_devices": sorted(self.flagged_devices),
            "missing_intervals_total": self.missing_intervals_total,
            "freshness_sum": self._encode_freshness_sum(),
            "freshness_count": self._freshness_count,
        }

    def _encode_freshness_sum(self):
        """The exact accumulator in its canonical JSON form.

        A plain JSON float whenever the exact sum is representable as
        one (every historical snapshot is, so re-checkpointing restored
        state stays byte-identical); otherwise an exact
        ``[numerator, denominator]`` pair, so the row round-trips
        losslessly and merged aggregates serialize identically to
        single-pass ones.
        """
        exact = Fraction(self._freshness_sum)
        as_float = float(exact)
        if Fraction(as_float) == exact:
            return as_float
        return [exact.numerator, exact.denominator]

    @staticmethod
    def _decode_freshness_sum(value) -> Fraction:
        """Reverse :meth:`_encode_freshness_sum` (old float rows too)."""
        if isinstance(value, (list, tuple)):
            numerator, denominator = value
            return Fraction(int(numerator), int(denominator))
        return Fraction(float(value))

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "FleetHealth":
        """Rebuild an aggregate from its persisted row."""
        counts = {status.value: 0 for status in DeviceStatus}
        counts.update({str(status): int(count) for status, count
                       in dict(row.get("status_counts", {})).items()})
        return cls(
            reports_total=int(row.get("reports_total", 0)),
            measurements_verified=int(row.get("measurements_verified", 0)),
            status_counts=counts,
            devices_seen=set(row.get("devices_seen", ())),
            flagged_devices=set(row.get("flagged_devices", ())),
            missing_intervals_total=int(
                row.get("missing_intervals_total", 0)),
            _freshness_sum=cls._decode_freshness_sum(
                row.get("freshness_sum", 0.0)),
            _freshness_count=int(row.get("freshness_count", 0)))

    def summary(self) -> str:
        """Multi-line, human-readable fleet-health digest."""
        freshness = "n/a" if self.mean_freshness is None \
            else f"{self.mean_freshness:.1f}s"
        lines = [
            f"fleet health: {self.devices_total} device(s), "
            f"{self.reports_total} report(s), "
            f"{self.measurements_verified} measurement(s) verified",
            "  status: " + ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.status_counts.items())
                if count),
            f"  healthy fraction: {self.healthy_fraction:.1%}, "
            f"mean freshness: {freshness}, "
            f"missing intervals: {self.missing_intervals_total}",
        ]
        if self.flagged_devices:
            flagged = ", ".join(sorted(self.flagged_devices)[:8])
            if len(self.flagged_devices) > 8:
                flagged += ", ..."
            lines.append(f"  flagged devices: {flagged}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"FleetHealth(devices={self.devices_total}, "
                f"reports={self.reports_total}, "
                f"healthy_fraction={self.healthy_fraction:.3f}, "
                f"flagged={len(self.flagged_devices)})")


class FleetHealthSink(ReportSink):
    """Fold reports into a :class:`FleetHealth` without retaining them."""

    def __init__(self, health: Optional[FleetHealth] = None) -> None:
        self.health = health if health is not None else FleetHealth()

    def emit(self, report: VerificationReport) -> None:
        self.health.record(report)
