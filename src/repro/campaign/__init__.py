"""Scenario campaigns: adversaries, faults and fleets, swept together.

The campaign engine closes the loop between the adversary layer and
the fleet stack.  A :class:`Scenario` declares one cell — fleet size,
protocol (ERASMUS vs the on-demand baseline), malware kind and dwell,
mobility model, transport, verifier downtime, store crashes, network
partitions — and a :class:`ScenarioGrid` sweeps axes over a base cell.
:func:`run_scenario` executes a cell against a real provisioned fleet
on the simulation engine, and :class:`CampaignRunner` fans a grid out
and emits a single JSON artifact with detection probability,
time-to-detection, QoA and round mechanics per cell.

Faults are injected by wrapping the existing seams
(:class:`PartitionInjector` around any transport,
:class:`CrashOnceStore` around any state store) — never by modifying
the production code paths.
"""

from repro.campaign.faults import CrashOnceStore, PartitionInjector
from repro.campaign.runner import (
    CampaignRunner,
    CellResult,
    build_adversary,
    run_scenario,
)
from repro.campaign.scenario import (
    MALWARE_KINDS,
    MOBILITY_KINDS,
    PROTOCOLS,
    SCHEDULE_KINDS,
    TRANSPORT_KINDS,
    Scenario,
    ScenarioGrid,
)

__all__ = [
    "CampaignRunner",
    "CellResult",
    "CrashOnceStore",
    "MALWARE_KINDS",
    "MOBILITY_KINDS",
    "PROTOCOLS",
    "PartitionInjector",
    "SCHEDULE_KINDS",
    "Scenario",
    "ScenarioGrid",
    "TRANSPORT_KINDS",
    "build_adversary",
    "run_scenario",
]
