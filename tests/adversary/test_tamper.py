"""Tests for the tampering and clock-rewind adversaries."""

import pytest

from repro.adversary import ClockRewindAttempt, TamperingMalware
from repro.core import Measurement, MeasurementStore
from repro.hw.clock import ReliableClock


def filled_store() -> MeasurementStore:
    store = MeasurementStore(slots=8, measurement_interval=10.0)
    for timestamp in (10.0, 20.0, 30.0, 40.0, 50.0):
        store.store(Measurement(timestamp, bytes([int(timestamp)]) * 32,
                                b"\xAA" * 32))
    return store


def test_delete_latest_removes_newest():
    store = filled_store()
    malware = TamperingMalware(store)
    assert malware.delete_latest(2) == 2
    remaining = {m.timestamp for m in store.all_measurements()}
    assert remaining == {10.0, 20.0, 30.0}
    assert "delete_latest(2)" in malware.actions


def test_wipe_all_clears_store():
    store = filled_store()
    TamperingMalware(store).wipe_all()
    assert store.occupancy() == 0


def test_corrupt_latest_changes_digest_not_tag():
    store = filled_store()
    original = store.newest()
    corrupted = TamperingMalware(store).corrupt_latest()
    assert corrupted is not None
    assert corrupted.digest != original.digest
    assert corrupted.tag == original.tag
    assert store.newest().digest == corrupted.digest


def test_corrupt_empty_store_returns_none():
    empty = MeasurementStore(slots=4, measurement_interval=10.0)
    assert TamperingMalware(empty).corrupt_latest() is None
    assert TamperingMalware(empty).replay_old_measurement() is None


def test_replay_old_measurement_duplicates_timestamp():
    store = filled_store()
    replayed = TamperingMalware(store).replay_old_measurement()
    assert replayed is not None
    timestamps = [m.timestamp for m in store.all_measurements()]
    assert timestamps.count(10.0) == 2


def test_forge_measurement_has_random_tag():
    store = filled_store()
    forged = TamperingMalware(store, seed=1).forge_measurement(60.0,
                                                               b"\x00" * 32)
    assert forged.timestamp == 60.0
    assert forged.tag != b"\xAA" * 32
    assert store.newest().timestamp == 60.0


def test_reorder_keeps_occupancy():
    store = filled_store()
    TamperingMalware(store, seed=2).reorder()
    assert store.occupancy() == 5


def test_clock_rewind_is_blocked():
    clock = ReliableClock()
    clock.advance_to(500.0)
    attempt = ClockRewindAttempt(clock=clock, target_time=100.0)
    assert attempt.execute() is True
    assert attempt.blocked is True
    assert clock.read() == pytest.approx(500.0)
