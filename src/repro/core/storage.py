"""Rolling measurement storage (Section 3.2, Figure 3).

A fixed section of the prover's *insecure* memory holds a windowed
(circular) buffer of ``n`` measurements.  The slot for the measurement
taken at RROC time ``t`` is ``i = floor(t / T_M) mod n`` — a stateless
rule, so the prover needs no persistent bookkeeping beyond the buffer
itself.

Because the buffer is insecure, malware may modify, reorder or delete
entries.  The store therefore deliberately exposes mutation methods
(used by :mod:`repro.adversary.tamper`); safety comes from the verifier
noticing the tampering, never from protecting the buffer.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

from repro.core.measurement import Measurement


class MeasurementStore:
    """Circular buffer of ``n`` measurement slots.

    Parameters
    ----------
    slots:
        ``n`` — the number of buffer slots.
    measurement_interval:
        ``T_M`` used by the stateless slot rule.
    stateless:
        When ``True`` (default, regular schedules) the slot is derived
        from the timestamp with the paper's stateless rule
        ``floor(t / T_M) mod n``.  When ``False`` (irregular schedules,
        where several measurements may fall inside one nominal ``T_M``
        window) slots simply advance round-robin.
    """

    def __init__(self, slots: int, measurement_interval: float,
                 stateless: bool = True) -> None:
        if slots <= 0:
            raise ValueError("the buffer needs at least one slot")
        if measurement_interval <= 0:
            raise ValueError("T_M must be positive")
        self.slots = slots
        self.measurement_interval = measurement_interval
        self.stateless = stateless
        self._buffer: List[Optional[Measurement]] = [None] * slots
        self._last_slot: Optional[int] = None
        self.stored_count = 0
        self.overwrites = 0

    def slot_for_time(self, timestamp: float) -> int:
        """The paper's stateless slot rule: ``floor(t / T_M) mod n``."""
        return int(math.floor(timestamp / self.measurement_interval)) % self.slots

    def store(self, measurement: Measurement) -> int:
        """Store a measurement in its slot; returns the slot index used."""
        if self.stateless:
            slot = self.slot_for_time(measurement.timestamp)
        else:
            slot = self.stored_count % self.slots
        if self._buffer[slot] is not None:
            self.overwrites += 1
        self._buffer[slot] = measurement
        self._last_slot = slot
        self.stored_count += 1
        return slot

    def latest(self, k: int) -> List[Measurement]:
        """Return the ``k`` most recent measurements, newest first.

        This is the collection-phase read ``{ *L_(i-j) mod n | 0 <= j < k }``
        from Figure 2.  ``k`` larger than ``n`` is clamped to ``n``
        (``if k > n: k = n`` in the protocol figure); empty slots are
        skipped.
        """
        if k <= 0:
            return []
        k = min(k, self.slots)
        if self._last_slot is None:
            return []
        result: List[Measurement] = []
        for j in range(k):
            slot = (self._last_slot - j) % self.slots
            measurement = self._buffer[slot]
            if measurement is not None:
                result.append(measurement)
        return result

    def newest(self) -> Optional[Measurement]:
        """The most recently stored measurement, if any."""
        latest = self.latest(1)
        return latest[0] if latest else None

    def occupancy(self) -> int:
        """Number of non-empty slots."""
        return sum(1 for entry in self._buffer if entry is not None)

    def capacity_seconds(self) -> float:
        """History span before overwrite: ``n * T_M``."""
        return self.slots * self.measurement_interval

    def all_measurements(self) -> List[Measurement]:
        """All stored measurements, oldest first (by timestamp)."""
        present = [entry for entry in self._buffer if entry is not None]
        return sorted(present, key=lambda measurement: measurement.timestamp)

    def __iter__(self) -> Iterator[Optional[Measurement]]:
        return iter(self._buffer)

    def __len__(self) -> int:
        return self.occupancy()

    # ------------------------------------------------------------------
    # Insecure-memory mutations (available to malware by construction)
    # ------------------------------------------------------------------
    def raw_slot(self, index: int) -> Optional[Measurement]:
        """Direct read of a slot (no access control: the buffer is insecure)."""
        return self._buffer[index % self.slots]

    def overwrite_slot(self, index: int,
                       measurement: Optional[Measurement]) -> None:
        """Direct write of a slot — what tampering malware does."""
        self._buffer[index % self.slots] = measurement

    def clear_all(self) -> None:
        """Wipe the whole buffer — the bluntest possible tampering."""
        self._buffer = [None] * self.slots
        self._last_slot = None

    def swap_slots(self, first: int, second: int) -> None:
        """Reorder two slots — another tampering primitive."""
        first %= self.slots
        second %= self.slots
        self._buffer[first], self._buffer[second] = \
            self._buffer[second], self._buffer[first]
