"""Per-rule fixture tests: one positive, negatives, and a pragma each."""

from repro.statics.checkers.codec import CodecExhaustivenessChecker
from repro.statics.checkers.constant_time import ConstantTimeChecker
from repro.statics.checkers.determinism import DeterminismChecker
from repro.statics.checkers.exact_fraction import ExactFractionChecker
from repro.statics.checkers.lock_discipline import LockDisciplineChecker
from repro.statics.checkers.obs_seam import ObsSeamChecker

from tests.statics.helpers import lint, rules_hit


# ----------------------------------------------------------------------
# constant-time
# ----------------------------------------------------------------------
def test_constant_time_flags_secret_named_equality():
    source = ("def verify(device_key, expected_mac, got):\n"
              "    return expected_mac == got\n")
    findings = lint(ConstantTimeChecker(), source)
    assert len(findings) == 1
    assert "expected_mac" in findings[0].message


def test_constant_time_flags_digest_membership():
    source = "bad = response.digest in known_digests\n"
    assert rules_hit(ConstantTimeChecker(), source) == ["constant-time"]


def test_constant_time_ignores_label_and_constant_comparisons():
    source = ("ok1 = mac_name == 'hmac-sha256'\n"
              "ok2 = digest_size == 32\n"
              "ok3 = algo in ('hmac-sha1', 'hmac-sha256')\n")
    assert lint(ConstantTimeChecker(), source) == []


def test_constant_time_bare_key_is_a_dict_key_not_material():
    source = ("ok = key in mapping\n"
              "bad = enrollment.key == presented\n")
    findings = lint(ConstantTimeChecker(), source)
    assert len(findings) == 1
    assert findings[0].line == 2


def test_constant_time_exempts_the_implementation_module():
    source = "equal = left_digest == right_digest\n"
    assert lint(ConstantTimeChecker(), source,
                relpath="src/repro/crypto/constant_time.py") == []


def test_constant_time_pragma():
    source = ("# statics: ok(constant-time)\n"
              "seen = row_digest in published_digests\n")
    assert lint(ConstantTimeChecker(), source) == []


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_determinism_flags_wall_clock_and_entropy():
    source = ("import os, time, random, uuid\n"
              "a = time.time()\n"
              "b = os.urandom(16)\n"
              "c = random.random()\n"
              "d = uuid.uuid4()\n")
    assert rules_hit(DeterminismChecker(), source) == ["determinism"] * 4


def test_determinism_flags_unseeded_random_construction():
    source = ("from random import Random\n"
              "rng = Random()\n")
    assert rules_hit(DeterminismChecker(), source) == ["determinism"]


def test_determinism_allows_seeded_rng_and_monotonic_clocks():
    source = ("import random, time\n"
              "rng = random.Random(42)\n"
              "t0 = time.perf_counter()\n"
              "t1 = time.monotonic()\n"
              "state = random.getstate()\n")
    assert lint(DeterminismChecker(), source) == []


def test_determinism_exempts_the_csprng_module():
    source = "import os\nseed = os.urandom(32)\n"
    assert lint(DeterminismChecker(), source,
                relpath="src/repro/crypto/csprng.py") == []


def test_determinism_pragma():
    source = ("import time\n"
              "stamp = time.time()  # statics: ok(determinism)\n")
    assert lint(DeterminismChecker(), source) == []


# ----------------------------------------------------------------------
# exact-fraction
# ----------------------------------------------------------------------
def test_exact_fraction_flags_float_threshold_wrapping():
    source = ("from fractions import Fraction\n"
              "limit = Fraction(max_mean_seconds)\n")
    findings = lint(ExactFractionChecker(), source)
    assert len(findings) == 1
    assert "Fraction(str(max_mean_seconds))" in findings[0].message


def test_exact_fraction_flags_float_into_sum_accumulator():
    source = "self._freshness_sum += 0.5\n"
    assert rules_hit(ExactFractionChecker(), source) == ["exact-fraction"]


def test_exact_fraction_flags_float_target_multiplication():
    source = "target = self.min_fraction * self.expected_devices\n"
    assert rules_hit(ExactFractionChecker(), source) == ["exact-fraction"]


def test_exact_fraction_allows_the_str_convention_and_exact_ops():
    source = ("from fractions import Fraction\n"
              "limit = Fraction(str(max_mean_seconds))\n"
              "ratio = Fraction(attested, expected)\n"
              "self._sum += Fraction(report_freshness)\n")
    assert lint(ExactFractionChecker(), source) == []


def test_exact_fraction_skips_test_files():
    source = "limit = Fraction(max_mean_seconds)\n"
    assert lint(ExactFractionChecker(), source,
                relpath="tests/obs/test_slo.py") == []


def test_exact_fraction_pragma():
    source = ("# statics: ok(exact-fraction)\n"
              "limit = Fraction(max_mean_seconds)\n")
    assert lint(ExactFractionChecker(), source) == []


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
def test_lock_discipline_flags_raw_store_calls_next_to_the_wrapper():
    source = (
        "class Sharded:\n"
        "    def __init__(self, store):\n"
        "        self.store = store\n"
        "        self.shared = _LockedStore(store)\n"
        "    def checkpoint(self):\n"
        "        self.store.checkpoint({}, {})\n")
    findings = lint(LockDisciplineChecker(), source)
    assert len(findings) == 1
    assert "bypassing _LockedStore" in findings[0].message


def test_lock_discipline_allows_the_wrapped_store_and_close():
    source = (
        "class Sharded:\n"
        "    def __init__(self, store):\n"
        "        self.store = store\n"
        "        self.shared = _LockedStore(store)\n"
        "    def checkpoint(self):\n"
        "        self.shared.checkpoint({}, {})\n"
        "    def close(self):\n"
        "        self.store.close()\n")
    assert lint(LockDisciplineChecker(), source) == []


def test_lock_discipline_without_a_wrapper_is_out_of_scope():
    source = (
        "class Plain:\n"
        "    def __init__(self, store):\n"
        "        self.store = store\n"
        "    def checkpoint(self):\n"
        "        self.store.checkpoint({}, {})\n")
    assert lint(LockDisciplineChecker(), source) == []


def test_lock_discipline_flags_blocking_calls_under_a_lock():
    source = ("import time\n"
              "def convoy(self):\n"
              "    with self._lock:\n"
              "        time.sleep(0.1)\n")
    findings = lint(LockDisciplineChecker(), source)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_lock_discipline_allows_blocking_outside_the_lock():
    source = ("import time\n"
              "def polite(self):\n"
              "    with self._lock:\n"
              "        snapshot = dict(self._rows)\n"
              "    time.sleep(0.1)\n")
    assert lint(LockDisciplineChecker(), source) == []


def test_lock_discipline_flags_socket_and_join_under_lock():
    source = ("def bad(self):\n"
              "    with self._lock:\n"
              "        self.conn.send_bytes(b'x')\n"
              "        self.reader.join()\n")
    assert rules_hit(LockDisciplineChecker(), source) == \
        ["lock-discipline"] * 2


def test_lock_discipline_pragma():
    source = ("import time\n"
              "def tolerated(self):\n"
              "    with self._lock:\n"
              "        time.sleep(0.1)  # statics: ok(lock-discipline)\n")
    assert lint(LockDisciplineChecker(), source) == []


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
_CODEC_OK = (
    "OP_PING = 1\n"
    "OP_PONG = 2\n"
    "def send(conn, rid):\n"
    "    conn.send(pack(OP_PING, rid))\n"
    "    conn.send(pack(OP_PONG, rid))\n"
    "def dispatch(opcode):\n"
    "    if opcode == OP_PING:\n"
    "        return 'ping'\n"
    "    if opcode in (OP_PONG,):\n"
    "        return 'pong'\n")


def test_codec_round_trip_is_clean_including_tuple_dispatch():
    assert lint(CodecExhaustivenessChecker(), _CODEC_OK) == []


def test_codec_flags_encode_without_decode():
    source = ("OP_PING = 1\n"
              "OP_LOST = 2\n"
              "def send(conn, rid):\n"
              "    conn.send(pack(OP_PING, rid))\n"
              "    conn.send(pack(OP_LOST, rid))\n"
              "def dispatch(opcode):\n"
              "    return opcode == OP_PING\n")
    findings = lint(CodecExhaustivenessChecker(), source)
    assert len(findings) == 1
    assert "OP_LOST" in findings[0].message
    assert "never decoded" in findings[0].message


def test_codec_flags_decode_without_encode():
    source = ("OP_PING = 1\n"
              "OP_GHOST = 2\n"
              "def send(conn, rid):\n"
              "    conn.send(pack(OP_PING, rid))\n"
              "def dispatch(opcode):\n"
              "    return opcode in (OP_PING, OP_GHOST)\n")
    findings = lint(CodecExhaustivenessChecker(), source)
    assert len(findings) == 1
    assert "OP_GHOST" in findings[0].message
    assert "never encoded" in findings[0].message


def test_codec_single_opcode_module_is_out_of_scope():
    assert lint(CodecExhaustivenessChecker(), "OP_ONLY = 1\n") == []


def test_codec_flags_decode_paths_writing_through_views():
    source = ("def decode_task(frame):\n"
              "    view = memoryview(frame)\n"
              "    view[0] = 0\n"
              "    return view\n")
    findings = lint(CodecExhaustivenessChecker(), source)
    assert len(findings) == 1
    assert "read-only" in findings[0].message


def test_codec_decode_may_write_to_fresh_buffers():
    source = ("def decode_task(frame):\n"
              "    out = bytearray(4)\n"
              "    out[0] = frame[0]\n"
              "    return out\n")
    assert lint(CodecExhaustivenessChecker(), source) == []


def test_codec_pragma():
    source = ("def decode_task(frame):\n"
              "    frame[0] = 0  # statics: ok(codec)\n")
    assert lint(CodecExhaustivenessChecker(), source) == []


# ----------------------------------------------------------------------
# obs-seam
# ----------------------------------------------------------------------
def test_obs_seam_flags_primitive_imports_in_hot_paths():
    source = "from repro.obs.metrics import MetricsRegistry\n"
    findings = lint(ObsSeamChecker(), source,
                    relpath="src/repro/fleet/service.py")
    assert len(findings) == 1
    assert "Observability" in findings[0].message


def test_obs_seam_flags_primitive_construction_in_hot_paths():
    source = "registry = MetricsRegistry()\n"
    assert rules_hit(ObsSeamChecker(), source,
                     relpath="src/repro/core/verification.py") == \
        ["obs-seam"]


def test_obs_seam_allows_the_seam_itself_and_cold_paths():
    seam = "from repro.obs.service import Observability\n"
    assert lint(ObsSeamChecker(), seam,
                relpath="src/repro/fleet/service.py") == []
    primitives = "from repro.obs.metrics import MetricsRegistry\n"
    assert lint(ObsSeamChecker(), primitives,
                relpath="src/repro/experiments/fig6.py") == []
    assert lint(ObsSeamChecker(), primitives,
                relpath="src/repro/obs/export.py") == []


def test_obs_seam_pragma():
    source = ("# statics: ok(obs-seam)\n"
              "from repro.obs.metrics import Counter\n")
    assert lint(ObsSeamChecker(), source,
                relpath="src/repro/fleet/service.py") == []
