"""The repo-specific rule set.

Each checker protects one invariant the reproduction's correctness or
threat model depends on; see ``INVARIANTS.md`` at the repo root for
the catalog.  ``all_checkers()`` is the registry the CLI and the CI
gate run; adding a rule means adding a module here and listing its
class below.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.statics.engine import Checker
from repro.statics.checkers.constant_time import ConstantTimeChecker
from repro.statics.checkers.determinism import DeterminismChecker
from repro.statics.checkers.exact_fraction import ExactFractionChecker
from repro.statics.checkers.lock_discipline import LockDisciplineChecker
from repro.statics.checkers.codec import CodecExhaustivenessChecker
from repro.statics.checkers.obs_seam import ObsSeamChecker

CHECKER_CLASSES = (
    ConstantTimeChecker,
    DeterminismChecker,
    ExactFractionChecker,
    LockDisciplineChecker,
    CodecExhaustivenessChecker,
    ObsSeamChecker,
)


def all_checkers(select: Optional[Sequence[str]] = None) -> List[Checker]:
    """Instantiate the registry, optionally restricted to some rules."""
    checkers = [cls() for cls in CHECKER_CLASSES]
    if select is None:
        return checkers
    wanted = set(select)
    known = {checker.rule for checker in checkers}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return [checker for checker in checkers if checker.rule in wanted]


__all__ = ["CHECKER_CLASSES", "all_checkers"]
