"""repro.statics — the repo's own invariant lint engine.

The reproduction enforces several load-bearing invariants only by
convention: secret material is compared constant-time, health merges
stay exact-``Fraction`` so sharded/process twins remain byte-identical,
deterministic paths never touch wall-clock or unseeded randomness, and
shared verifier state is only reached through the fleet's lock
discipline.  This package checks those conventions *statically*: a
small AST visitor framework, one rule class per invariant, findings
with file/line/severity, a ``# statics: ok(<rule>)`` pragma seam, a
committed baseline for grandfathered findings, and a CLI
(``python -m repro.statics``) emitting text and byte-stable JSON
reports.

:mod:`repro.statics.runtime` is the dynamic counterpart: a test-mode
lock witness that records acquisition order per thread and flags order
inversions and held-lock blocking calls across the shard/store/obs
locks.
"""

from repro.statics.engine import (
    Checker,
    FileContext,
    Finding,
    ScanResult,
    run_checks,
    scan_paths,
)
from repro.statics.baseline import Baseline, BaselineEntry, BaselineError
from repro.statics.report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "FileContext",
    "Finding",
    "ScanResult",
    "render_json",
    "render_text",
    "run_checks",
    "scan_paths",
]
