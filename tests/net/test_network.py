"""Tests for packets, links and the simulated network."""

import pytest

from repro.net import Link, Network, NetworkNode, Packet
from repro.net.packet import HEADER_OVERHEAD_BYTES
from repro.sim import SimulationEngine


def test_packet_size_includes_headers():
    packet = Packet(source="a", destination="b", payload=b"\x00" * 100)
    assert packet.size_bytes == 100 + HEADER_OVERHEAD_BYTES
    forwarded = packet.forwarded("c")
    assert forwarded.hop_count == 1
    assert forwarded.payload == packet.payload


def test_link_transfer_delay():
    link = Link("a", "b", latency=0.01, bandwidth_bps=8_000.0)
    packet = Packet(source="a", destination="b", payload=b"\x00" * 58)
    # 100 bytes on the wire at 8 kbit/s = 0.1 s serialization + 10 ms latency.
    assert link.transfer_delay(packet) == pytest.approx(0.11)
    assert link.connects("b", "a")
    assert not link.connects("a", "c")


def test_link_parameter_validation():
    with pytest.raises(ValueError):
        Link("a", "b", latency=-1.0)
    with pytest.raises(ValueError):
        Link("a", "b", bandwidth_bps=0.0)
    with pytest.raises(ValueError):
        Link("a", "b", loss_probability=1.5)


def build_network(node_names, links, seed=0):
    engine = SimulationEngine()
    network = Network(engine, seed=seed)
    received = []
    for name in node_names:
        network.add_node(NetworkNode(
            name, on_receive=lambda node, packet, time:
            received.append((node.name, packet.payload, time))))
    for link in links:
        network.add_link(link)
    return engine, network, received


def test_single_hop_delivery():
    engine, network, received = build_network(
        ["verifier", "prover"], [Link("verifier", "prover", latency=0.005)])
    network.node("verifier").send("prover", b"collect 4", kind="collect")
    engine.run()
    assert len(received) == 1
    assert received[0][0] == "prover"
    assert received[0][1] == b"collect 4"
    assert network.delivered_packets == 1


def test_multi_hop_delivery_accumulates_delay():
    engine, network, received = build_network(
        ["a", "b", "c"],
        [Link("a", "b", latency=0.01), Link("b", "c", latency=0.01)])
    network.node("a").send("c", b"payload")
    engine.run()
    assert received[0][0] == "c"
    assert received[0][2] > 0.02


def test_unroutable_packet_is_counted():
    engine, network, received = build_network(["a", "b"], [])
    assert network.node("a").send("b", b"data") is None
    engine.run()
    assert not received
    assert network.unroutable_packets == 1


def test_lossy_link_drops_packets():
    engine, network, received = build_network(
        ["a", "b"], [Link("a", "b", loss_probability=1.0)])
    network.node("a").send("b", b"will be lost")
    engine.run()
    assert not received
    assert network.dropped_packets == 1


def test_link_removed_mid_flight_loses_packet():
    engine, network, received = build_network(
        ["a", "b", "c"],
        [Link("a", "b", latency=0.01), Link("b", "c", latency=0.01)])
    network.node("a").send("c", b"doomed")
    # Remove the second hop before the packet reaches it.
    network.remove_link("b", "c")
    engine.run()
    assert not received
    assert network.dropped_packets == 1


def test_set_links_rewires_topology():
    engine, network, _received = build_network(
        ["a", "b", "c"], [Link("a", "b")])
    assert network.is_connected("a", "b")
    assert not network.is_connected("a", "c")
    network.set_links([Link("a", "c"), Link("c", "b")])
    assert network.is_connected("a", "b")
    assert network.neighbors("a") == ["c"]
    del engine


def test_node_statistics_and_duplicates():
    engine, network, _received = build_network(
        ["a", "b"], [Link("a", "b")])
    network.node("a").send("b", b"x" * 10)
    engine.run()
    assert network.node("a").sent_packets == 1
    assert network.node("b").received_packets == 1
    with pytest.raises(ValueError):
        network.add_node(NetworkNode("a"))
    with pytest.raises(KeyError):
        network.add_link(Link("a", "ghost"))
    with pytest.raises(KeyError):
        network.node("ghost")


def test_packet_admission_and_settlement_listeners():
    engine, network, _received = build_network(
        ["a", "b"], [Link("a", "b")])
    admitted, settled = [], []
    network.on_packet_admitted.append(lambda packet: admitted.append(packet))
    network.on_packet_settled.append(
        lambda packet, outcome: settled.append((packet.kind, outcome)))
    network.node("a").send("b", b"payload", kind="probe")
    assert [packet.kind for packet in admitted] == ["probe"]
    assert settled == []  # in flight until the engine delivers it
    engine.run()
    assert settled == [("probe", "delivered")]
    assert network.in_flight_packets == 0


def test_settlement_listener_reports_drops():
    engine, network, _received = build_network(
        ["a", "b"], [Link("a", "b", loss_probability=1.0)])
    outcomes = []
    network.on_packet_settled.append(
        lambda packet, outcome: outcomes.append(outcome))
    network.node("a").send("b", b"payload")
    engine.run()
    assert outcomes == ["dropped"]
    assert network.in_flight_packets == 0


def settlement_recorder(network):
    admitted, settled = [], []
    network.on_packet_admitted.append(lambda packet: admitted.append(packet))
    network.on_packet_settled.append(
        lambda packet, outcome: settled.append((packet, outcome)))
    return admitted, settled


def test_set_links_mid_flight_drops_and_settles_exactly_once():
    """A packet whose next hop was rewired away settles once, as dropped.

    A hop a packet is already traversing always completes; the drop
    happens when the *next* hop is due and its link is gone.
    """
    engine, network, received = build_network(
        ["a", "b", "c"],
        [Link("a", "b", latency=0.01), Link("b", "c", latency=0.01)])
    admitted, settled = settlement_recorder(network)
    network.node("a").send("c", b"doomed")
    engine.run(until=0.005)  # still on the a->b hop
    network.set_links([Link("a", "b", latency=0.01)])  # b->c removed
    engine.run()
    assert not received
    assert len(admitted) == 1
    assert [(p.destination, outcome) for p, outcome in settled] == \
        [("c", "dropped")]
    assert network.in_flight_packets == 0
    assert network.dropped_packets == 1


def test_set_links_survivors_keep_delivering():
    engine, network, received = build_network(
        ["a", "r1", "r2", "b", "c"],
        [Link("a", "r1", latency=0.01), Link("r1", "b", latency=0.01),
         Link("a", "r2", latency=0.01), Link("r2", "c", latency=0.01)])
    _admitted, settled = settlement_recorder(network)
    network.node("a").send("b", b"lost")
    network.node("a").send("c", b"survives")
    engine.run(until=0.005)  # both packets still on their first hop
    # Rewire: the relay towards b loses its second hop, c's survives.
    network.set_links([Link("a", "r1", latency=0.01),
                       Link("a", "r2", latency=0.01),
                       Link("r2", "c", latency=0.01)])
    engine.run()
    assert [(name, payload) for name, payload, _ in received] == \
        [("c", b"survives")]
    outcomes = {p.destination: outcome for p, outcome in settled}
    assert outcomes == {"b": "dropped", "c": "delivered"}
    assert network.in_flight_packets == 0


def test_repeated_rewires_settle_each_admitted_packet_exactly_once():
    """However many rewires happen in flight, settlement stays 1:1."""
    chain = [Link("a", "b", latency=0.01), Link("b", "c", latency=0.01),
             Link("c", "d", latency=0.01)]
    engine, network, received = build_network(["a", "b", "c", "d"], chain)
    admitted, settled = settlement_recorder(network)
    for index in range(3):
        network.node("a").send("d", f"p{index}".encode())
    # Rewire to the identical topology twice (packets keep travelling),
    # then cut the last hop while they are mid-path: they drop when the
    # missing hop comes due, and never settle a second time.
    engine.run(until=0.005)
    network.set_links(chain)
    engine.run(until=0.012)
    network.set_links(chain)
    engine.run(until=0.015)
    network.set_links(chain[:2])
    engine.run()
    assert not received
    assert len(admitted) == 3
    assert len(settled) == 3  # exactly once each, across four topologies
    assert network.in_flight_packets == 0
    assert network.dropped_packets == 3


def test_remove_node_mid_flight_drops_at_the_gap():
    engine, network, received = build_network(
        ["a", "b"], [Link("a", "b", latency=0.01)])
    _admitted, settled = settlement_recorder(network)
    network.node("a").send("b", b"to nobody")
    network.remove_node("b")
    engine.run()
    assert not received
    assert [outcome for _p, outcome in settled] == ["dropped"]
    assert network.in_flight_packets == 0
    with pytest.raises(KeyError):
        network.node("b")
    network.remove_node("b")  # removing twice is a no-op


def test_path_cache_tracks_topology_changes_both_directions():
    engine, network, _received = build_network(
        ["a", "b", "c"],
        [Link("a", "b", latency=0.01), Link("b", "c", latency=0.01)])
    forward = network.path("a", "c")
    assert forward == ["a", "b", "c"]
    # The reverse direction answers from the same cached tree.
    assert network.path("c", "a") == ["c", "b", "a"]
    network.remove_link("b", "c")
    assert network.path("a", "c") is None
    network.add_link(Link("a", "c", latency=0.01))
    assert network.path("a", "c") == ["a", "c"]
    del engine


def test_unroutable_packet_is_never_admitted():
    engine, network, _received = build_network(["a", "b"], [])
    admitted = []
    network.on_packet_admitted.append(lambda packet: admitted.append(packet))
    assert not network.node("a").send("b", b"payload")
    assert admitted == []
    assert network.unroutable_packets == 1
    del engine
