"""Tests for device profiles, provisioning and key derivation."""

import pytest

from repro.core import DeviceStatus, ScheduleKind
from repro.fleet import DeviceProfile, derive_device_key
from repro.hydra.architecture import HydraArchitecture
from repro.sim import SimulationEngine
from repro.smartplus.architecture import SmartPlusArchitecture

FIRMWARE = b"profile-test-firmware" + bytes(64)


def smart_profile(**overrides) -> DeviceProfile:
    return DeviceProfile.smartplus(firmware=FIRMWARE, application_size=512,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=8, **overrides)


def test_smartplus_provision_builds_ready_device():
    device = smart_profile().provision("unit-1", key=b"\x01" * 16)
    assert isinstance(device.architecture, SmartPlusArchitecture)
    assert device.prover.device_id == "unit-1"
    assert device.key == b"\x01" * 16
    # The healthy digest matches the freshly imaged measured memory.
    assert device.healthy_digest == device.current_digest()


def test_hydra_provision_builds_ready_device():
    profile = DeviceProfile.hydra(firmware=FIRMWARE,
                                  application_size=4096,
                                  measurement_interval=10.0,
                                  collection_interval=60.0)
    device = profile.provision("unit-2", key=b"\x02" * 32)
    assert isinstance(device.architecture, HydraArchitecture)
    assert device.healthy_digest == device.current_digest()


def test_provisioned_device_measures_and_verifies(config):
    del config
    device = smart_profile().provision("unit-3", key=b"\x03" * 16)
    engine = SimulationEngine()
    device.prover.attach(engine)
    engine.run(until=60.0)
    assert device.prover.measurements_taken == 6


def test_unknown_architecture_rejected():
    with pytest.raises(ValueError):
        DeviceProfile(architecture="tpm")


def test_firmware_must_fit_application_region():
    with pytest.raises(ValueError):
        DeviceProfile(firmware=bytes(2048), application_size=512)


def test_provision_requires_exactly_one_key_source():
    profile = smart_profile()
    with pytest.raises(ValueError):
        profile.provision("unit-4")
    with pytest.raises(ValueError):
        profile.provision("unit-4", key=b"\x04" * 16,
                          master_secret=b"master")


def test_key_derivation_is_deterministic_and_per_device():
    first = derive_device_key(b"master", "dev-0001")
    again = derive_device_key(b"master", "dev-0001")
    other_device = derive_device_key(b"master", "dev-0002")
    other_master = derive_device_key(b"backup", "dev-0001")
    assert first == again
    assert first != other_device
    assert first != other_master
    with pytest.raises(ValueError):
        derive_device_key(b"", "dev-0001")


def test_with_config_overrides_schedule():
    profile = smart_profile().with_config(schedule=ScheduleKind.IRREGULAR)
    assert profile.config.schedule is ScheduleKind.IRREGULAR
    # The original profile is untouched (profiles are immutable).
    assert smart_profile().config.schedule is ScheduleKind.REGULAR


def test_infected_device_detected_after_reimage():
    """A provisioned device plugged into the classic verify flow."""
    from repro.fleet import FleetVerifier, InProcessTransport

    device = smart_profile().provision("unit-5", key=b"\x05" * 16)
    engine = SimulationEngine()
    device.prover.attach(engine)
    transport = InProcessTransport(engine)
    transport.register(device)
    verifier = FleetVerifier(device.profile.config)
    verifier.enroll_device(device)

    engine.run(until=20.0)
    device.load_application(b"evil-implant" + bytes(64))
    engine.run(until=40.0)
    device.load_application(FIRMWARE)
    engine.run(until=60.0)

    [report] = verifier.collect_all(transport, collection_time=engine.now)
    assert report.status is DeviceStatus.INFECTED
    assert report.infected_timestamps
