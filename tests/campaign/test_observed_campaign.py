"""Per-cell campaign observability: forked cells, absorb, reports."""

import json

import pytest

from repro.campaign import CampaignRunner, Scenario, run_scenario
from repro.obs import NullObservability, Observability


def small(**overrides):
    base = dict(devices=8, horizon=1800.0, measurement_interval=60.0,
                collection_interval=600.0, malware="mobile", dwell=120.0,
                arrival_rate=1 / 600.0, victim_fraction=0.5, seed=3)
    base.update(overrides)
    return Scenario(**base)


def _cells(names):
    return [small(name=name, seed=index + 1)
            for index, name in enumerate(names)]


def test_concurrent_cells_get_disjoint_correctly_parented_trees():
    obs = Observability(seed=7)
    runner = CampaignRunner(_cells(["cell-a", "cell-b"]), max_workers=2,
                            obs=obs)
    results = runner.run()
    obs.close()

    trees = {}
    for result in results:
        assert result.obs is not None
        assert result.obs.cell == result.scenario.name
        rows = result.obs.tracer.export_rows()
        assert rows, "an observed cell produced no spans"
        trees[result.scenario.name] = rows

    # Disjoint: the two cells share no span ids despite identical
    # round/shard paths (the child tracer seeds are forked per cell).
    ids_a = {row["span_id"] for row in trees["cell-a"]}
    ids_b = {row["span_id"] for row in trees["cell-b"]}
    assert not ids_a & ids_b

    # Correctly parented: every non-root span's parent id is a span in
    # the SAME cell's tree, and its path is the parent's path extended.
    for rows in trees.values():
        by_id = {row["span_id"]: row for row in rows}
        children = 0
        for row in rows:
            parent_id = row.get("parent_id")
            if parent_id is None:
                continue
            children += 1
            parent = by_id[parent_id]  # KeyError = cross-cell leak
            assert row["path"].startswith(parent["path"] + "/")
        assert children > 0

    # Each cell ran its three rounds into its own registry...
    for result in results:
        assert result.obs.rounds_total.value() == 3
    # ...and the parent exposition carries them under the cell label.
    text = obs.render_metrics()
    assert 'repro_cell_rounds_total{cell="cell-a"} 3' in text
    assert 'repro_cell_rounds_total{cell="cell-b"} 3' in text
    assert obs.campaign_cells_total.value() == 2
    # The parent's own round counter never moved: cells are children.
    assert obs.rounds_total.value() == 0


def test_observed_rows_match_unobserved_rows():
    plain = CampaignRunner(_cells(["a", "b"]))
    plain.run()
    obs = Observability(seed=1)
    watched = CampaignRunner(_cells(["a", "b"]), obs=obs)
    watched.run()
    obs.close()
    # Observability is read-only: the deterministic artifact rows are
    # identical with and without it.
    assert watched.rows() == plain.rows()


def test_write_reports_emits_cells_and_rollup(tmp_path):
    obs = Observability(seed=2)
    runner = CampaignRunner(_cells(["east/1", "west 2"]), obs=obs)
    runner.run()
    obs.close()
    written = runner.write_reports(str(tmp_path))
    names = sorted(path.name for paths in written.values()
                   for path in map(tmp_path.joinpath, paths))
    assert names == sorted([
        "east_1.report.html", "east_1.summary.json",
        "west_2.report.html", "west_2.summary.json",
        "rollup.html", "rollup.json"])
    rollup = json.loads((tmp_path / "rollup.json").read_text())
    assert set(rollup["cells"]) == {"east/1", "west 2"}
    assert rollup["totals"]["rounds"] == 6
    summary = json.loads((tmp_path / "east_1.summary.json").read_text())
    assert summary["totals"]["rounds"] == 3
    assert "<svg" in (tmp_path / "east_1.report.html").read_text()


def test_write_reports_requires_an_observed_run(tmp_path):
    runner = CampaignRunner(_cells(["a"]))
    runner.run()
    with pytest.raises(ValueError, match="observability"):
        runner.write_reports(str(tmp_path))


def test_null_observability_keeps_the_fast_path():
    null = NullObservability()
    result = run_scenario(small(), obs=null)
    assert result.obs is None  # no child forked, nothing recorded
    assert null.for_cell("x") is null
