"""JSONL state store: atomic snapshot file plus write-ahead journal.

The classic single-writer recovery design, in two plain-text files
under one directory:

* ``snapshot.json`` — the canonical checkpoint document, replaced
  atomically (write temp file, fsync, ``os.replace``) so a crash can
  never leave a half-written snapshot;
* ``journal.jsonl`` — one JSON line per state change since the last
  checkpoint: every enrollment upsert and every finished report, each
  stamped with a monotonically increasing sequence number.

Recovery loads the snapshot, then replays journal records with a
sequence number beyond the snapshot's; a torn final line (crash mid-
append) is tolerated and simply ends the replay.  Checkpointing folds
the journal into a fresh snapshot and truncates it, bounding both
recovery time and disk growth.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.verification import Enrollment, VerificationReport
from repro.store.base import (
    RestoredState,
    Row,
    StateStore,
    StoreError,
    apply_report_row,
    encode_snapshot,
    snapshot_document,
    state_from_snapshot,
)

_KIND_ENROLLMENT = "enrollment"
_KIND_REPORT = "report"


class JsonlStore(StateStore):
    """Snapshot + journal persistence in a directory of JSON files.

    ``flush_every`` bounds data loss: the journal stream is flushed to
    the OS after every ``flush_every`` appended records (default 1 —
    flush each record).
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 flush_every: int = 1) -> None:
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / "snapshot.json"
        self.journal_path = self.directory / "journal.jsonl"
        self.flush_every = flush_every
        self._journal: Optional[IO[str]] = None
        self._unflushed = 0
        self._closed = False
        # Resume sequence numbering and the enrollment cache from
        # whatever an earlier process left behind; the replayed state is
        # kept for the first restore_state call so the open-then-restore
        # path (FleetVerifier.restore) reads the files only once.
        state, self._seq = self._replay()
        self._enrollments: Dict[str, Enrollment] = state.enrollments
        self._opened_state: Optional[RestoredState] = state
        self._dirty = False
        # A crash mid-append can leave a torn final record; replay
        # tolerates it, but appending onto it would merge two records
        # into one corrupt line — cut it off before the first write.
        self._repair_torn_tail()

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _journal_stream(self) -> IO[str]:
        if self._journal is None:
            self._journal = open(self.journal_path, "a", encoding="utf-8")
        return self._journal

    def _append(self, kind: str, row: Row) -> None:
        if self._closed:
            raise StoreError(f"JSONL store {self.directory} is closed")
        self._dirty = True
        self._opened_state = None
        self._seq += 1
        record = {"seq": self._seq, "kind": kind, "row": row}
        stream = self._journal_stream()
        json.dump(record, stream, sort_keys=True, separators=(",", ":"))
        stream.write("\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            stream.flush()
            self._unflushed = 0

    def _journal_records(self) -> List[Row]:
        """All complete journal records, tolerating a torn final line."""
        if not self.journal_path.exists():
            return []
        records: List[Row] = []
        # Read as bytes: a crash can cut the final record inside a
        # multi-byte UTF-8 character, which a text-mode read would turn
        # into an unrecoverable UnicodeDecodeError for the whole file.
        lines = self.journal_path.read_bytes().splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if index == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise StoreError(
                    f"corrupt journal record at line {index + 1} of "
                    f"{self.journal_path}") from exc
        return records

    def _repair_torn_tail(self) -> None:
        """Repair a torn final journal record left by a crash.

        Only called after a successful replay, so at most the final
        line can be damaged (appending onto it would corrupt the next
        record).  Two cases: a record that parsed but lost only its
        trailing newline was already acknowledged and re-served by the
        replay, so it is *completed* (newline appended), never dropped;
        an unparseable fragment never made it into any state and is
        truncated away.
        """
        if not self.journal_path.exists():
            return
        with open(self.journal_path, "rb") as stream:
            data = stream.read()
        if not data:
            return
        keep = 0
        for line in data.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    json.loads(stripped.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
            if not line.endswith(b"\n"):
                with open(self.journal_path, "ab") as stream:
                    stream.write(b"\n")
            keep += len(line)
        if keep < len(data):
            with open(self.journal_path, "rb+") as stream:
                stream.truncate(keep)

    def _read_snapshot(self) -> Optional[Row]:
        if not self.snapshot_path.exists():
            return None
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as stream:
                return json.load(stream)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt snapshot {self.snapshot_path}") from exc

    def _replay(self) -> Tuple[RestoredState, int]:
        """Snapshot + journal tail; returns the state and newest seq."""
        document = self._read_snapshot()
        state, snapshot_seq = state_from_snapshot(document)
        newest_seq = snapshot_seq
        for record in self._journal_records():
            seq = int(record.get("seq", 0))
            newest_seq = max(newest_seq, seq)
            if seq <= snapshot_seq:
                continue  # already folded into the snapshot
            kind = record.get("kind")
            row = record.get("row", {})
            if kind == _KIND_ENROLLMENT:
                enrollment = Enrollment.from_row(row)
                state.enrollments[enrollment.device_id] = enrollment
                if enrollment.last_seen is None:
                    # A last_seen-less write is an initial enrollment or
                    # a deliberate re-enrollment reset — either way the
                    # device has no valid collection history any more.
                    state.last_collection_times.pop(
                        enrollment.device_id, None)
            elif kind == _KIND_REPORT:
                apply_report_row(row, state)
            else:
                raise StoreError(f"unknown journal record kind {kind!r}")
        return state, newest_seq

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save_enrollment(self, enrollment: Enrollment) -> None:
        self._enrollments[enrollment.device_id] = enrollment
        self._append(_KIND_ENROLLMENT, enrollment.to_row())

    def append_report(self, report: VerificationReport) -> None:
        self._append(_KIND_REPORT, report.to_row())

    def checkpoint(self, health: Any,
                   last_collection_times: Mapping[str, float],
                   rounds_completed: int = 0) -> None:
        if self._closed:
            raise StoreError(f"JSONL store {self.directory} is closed")
        self._dirty = True
        self._opened_state = None
        document = snapshot_document(
            self._enrollments, health, last_collection_times,
            rounds_completed, journal_seq=self._seq)
        payload = encode_snapshot(document)
        temp_path = self.snapshot_path.with_suffix(".json.tmp")
        with open(temp_path, "wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, self.snapshot_path)
        # The rename must hit stable storage before the journal is
        # truncated — otherwise a power loss could persist the truncate
        # but not the replace, losing the whole checkpointed round.
        self._fsync_directory()
        # Everything up to self._seq is now durable in the snapshot;
        # truncate the journal so recovery stays O(one round).  A crash
        # between the replace and the truncate is harmless: replay
        # skips records at or below the snapshot's journal_seq.
        if self._journal is not None:
            self._journal.close()
        self._journal = open(self.journal_path, "w", encoding="utf-8")
        self._unflushed = 0

    def _fsync_directory(self) -> None:
        """Flush the directory entry (rename durability); best effort."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platforms without directory fds (e.g. Windows)
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def has_enrollment(self, device_id: str) -> bool:
        # The cache is authoritative: seeded from snapshot + journal at
        # open, kept current by every save_enrollment since.
        return device_id in self._enrollments

    def restore_state(self) -> RestoredState:
        if not self._dirty and self._opened_state is not None:
            # Hand out the open-time replay once; the enrollment dict is
            # copied so later write-throughs don't alias into it.
            state, self._opened_state = self._opened_state, None
            state.enrollments = dict(state.enrollments)
            return state
        self.flush()
        state, _ = self._replay()
        return state

    def device_history(self, device_id: str,
                       limit: Optional[int] = None) -> List[Row]:
        self.flush()
        rows = [record["row"] for record in self._journal_records()
                if record.get("kind") == _KIND_REPORT
                and record["row"].get("device_id") == device_id]
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def state_rows(self) -> Optional[Row]:
        return self._read_snapshot()

    def state_bytes(self) -> bytes:
        """The snapshot file's literal bytes (empty before a checkpoint)."""
        if not self.snapshot_path.exists():
            return b""
        return self.snapshot_path.read_bytes()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._journal is not None:
            self._journal.flush()
            self._unflushed = 0

    def close(self) -> None:
        # Reads (restore_state, device_history) keep working on a
        # closed store — they reopen the files — but writes raise.
        self._closed = True
        if self._journal is not None:
            self._journal.flush()
            self._journal.close()
            self._journal = None
