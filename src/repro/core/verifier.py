"""The ERASMUS verifier.

The verifier (Vrf) shares the symmetric key ``K`` with each prover and
knows the prover's expected (healthy) software states and measurement
schedule.  During a collection it:

* verifies the MAC of every received measurement (tampering with the
  insecure buffer is thereby detected — malware cannot forge MACs);
* checks that timestamps are plausible: monotonically increasing,
  conforming to the expected schedule (missing measurements show up as
  gaps), and not from the future;
* compares each digest against the set of known-good software states to
  decide whether the prover was healthy *at each measurement time* —
  this is what lets ERASMUS detect mobile malware that has already left;
* computes freshness (collection time minus newest timestamp).

The result is a :class:`VerificationReport` with per-measurement
verdicts and an overall :class:`DeviceStatus`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.arch.base import encode_timestamp
from repro.core.config import ErasmusConfig
from repro.core.measurement import Measurement
from repro.core.protocol import (
    CollectRequest,
    CollectResponse,
    OnDemandRequest,
    OnDemandResponse,
)
from repro.crypto.backend import resolve_backend
from repro.crypto.mac import get_mac


class DeviceStatus(enum.Enum):
    """Overall outcome of verifying one collection."""

    HEALTHY = "healthy"
    INFECTED = "infected"
    TAMPERED = "tampered"
    NO_DATA = "no_data"


@dataclass(frozen=True)
class MeasurementVerdict:
    """Verdict on a single received measurement."""

    measurement: Measurement
    authentic: bool
    healthy: bool
    from_future: bool = False

    @property
    def acceptable(self) -> bool:
        """Authentic, plausible and matching a known-good state."""
        return self.authentic and self.healthy and not self.from_future


@dataclass
class VerificationReport:
    """Outcome of verifying one collection from one prover."""

    device_id: str
    collection_time: float
    status: DeviceStatus
    verdicts: List[MeasurementVerdict] = field(default_factory=list)
    anomalies: List[str] = field(default_factory=list)
    freshness: Optional[float] = None
    missing_intervals: int = 0

    @property
    def measurement_count(self) -> int:
        """Number of measurements received in this collection."""
        return len(self.verdicts)

    @property
    def infected_timestamps(self) -> List[float]:
        """Timestamps at which the prover's state was not a known-good one."""
        return [verdict.measurement.timestamp for verdict in self.verdicts
                if verdict.authentic and not verdict.healthy]

    def detected_infection(self) -> bool:
        """True when this collection exposed malware presence or tampering."""
        return self.status in (DeviceStatus.INFECTED, DeviceStatus.TAMPERED)


class ErasmusVerifier:
    """A verifier that manages one or more provers sharing per-device keys.

    ``allowed_missing`` is the Section 5 policy knob: how many expected
    measurements may be missing from a collection (e.g. legitimately
    aborted because of time-critical tasks) before the verifier treats
    the absence as tampering.  The default of zero is the strict policy.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0) -> None:
        if not 0 <= schedule_tolerance < 1:
            raise ValueError("schedule tolerance must be in [0, 1)")
        if allowed_missing < 0:
            raise ValueError("allowed_missing must be non-negative")
        self.config = config
        self.schedule_tolerance = schedule_tolerance
        self.allowed_missing = allowed_missing
        self.mac_algorithm = get_mac(config.mac_name)
        self.crypto_backend = resolve_backend(config.crypto_backend)
        self._keys: Dict[str, bytes] = {}
        self._healthy_digests: Dict[str, set[bytes]] = {}
        self._last_collection_time: Dict[str, float] = {}
        self._last_seen_timestamp: Dict[str, float] = {}
        self.reports: List[VerificationReport] = []
        self._request_counter = 0.0

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, device_id: str, key: bytes,
               healthy_digests: Iterable[bytes]) -> None:
        """Register a prover: its shared key and its known-good states."""
        if not key:
            raise ValueError("the shared key must be non-empty")
        self._keys[device_id] = bytes(key)
        self._healthy_digests[device_id] = {bytes(d) for d in healthy_digests}

    def is_enrolled(self, device_id: str) -> bool:
        """True when the device has been enrolled."""
        return device_id in self._keys

    def add_healthy_digest(self, device_id: str, digest: bytes) -> None:
        """Whitelist an additional software state (e.g. after an update)."""
        self._healthy_digests[device_id].add(bytes(digest))

    # ------------------------------------------------------------------
    # Request creation
    # ------------------------------------------------------------------
    def create_collect_request(self, k: Optional[int] = None) -> CollectRequest:
        """Build a plain collection request (no authentication needed)."""
        if k is None:
            k = self.config.measurements_per_collection
        return CollectRequest(k=k)

    def create_ondemand_request(self, device_id: str, request_time: float,
                                k: Optional[int] = None) -> OnDemandRequest:
        """Build an authenticated ERASMUS+OD request for one prover."""
        key = self._key_for(device_id)
        if k is None:
            k = self.config.measurements_per_collection
        # Guarantee strictly increasing request timestamps even if two
        # requests are created at the same simulation instant.
        if request_time <= self._request_counter:
            request_time = self._request_counter + 1e-6
        self._request_counter = request_time
        tag = self.mac_algorithm.mac(key, encode_timestamp(request_time),
                                     backend=self.crypto_backend)
        return OnDemandRequest(request_time=request_time, k=k, tag=tag)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def _key_for(self, device_id: str) -> bytes:
        try:
            return self._keys[device_id]
        except KeyError as exc:
            raise KeyError(f"device {device_id!r} is not enrolled") from exc

    def _verdict(self, device_id: str, measurement: Measurement,
                 collection_time: float) -> MeasurementVerdict:
        key = self._key_for(device_id)
        authentic = self.mac_algorithm.verify(
            key, measurement.authenticated_payload(), measurement.tag,
            backend=self.crypto_backend)
        healthy = measurement.digest in self._healthy_digests[device_id]
        from_future = measurement.timestamp > collection_time + 1e-6
        return MeasurementVerdict(measurement=measurement, authentic=authentic,
                                  healthy=healthy, from_future=from_future)

    def _check_schedule(self, timestamps: List[float],
                        last_seen: Optional[float]) -> tuple[int, List[str]]:
        """Check timestamp spacing against the expected schedule.

        Returns the number of missing measurement intervals and a list of
        anomaly descriptions (duplicates within one response, oversized
        gaps).  Records already seen in an earlier collection are
        ignored for gap purposes — re-collecting them is merely
        redundant (Section 3.1), not an attack.  For irregular schedules
        the upper bound ``U`` plays the role of the expected interval.
        """
        anomalies: List[str] = []
        expected = self.config.measurement_interval
        if self.config.irregular_upper is not None:
            expected = self.config.irregular_upper
        allowed_gap = expected * (1 + self.schedule_tolerance)
        ordered = sorted(timestamps)

        duplicates = sum(1 for first, second in zip(ordered, ordered[1:])
                         if second - first <= 1e-9)
        if duplicates:
            anomalies.append(
                f"{duplicates} duplicate timestamp(s) within one collection")

        new_only = ordered
        if last_seen is not None:
            new_only = [timestamp for timestamp in ordered
                        if timestamp > last_seen + 1e-9]
        missing = 0
        previous = last_seen
        for timestamp in new_only:
            if previous is not None:
                gap = timestamp - previous
                if gap > allowed_gap:
                    skipped = int(gap / expected) - 1
                    missing += max(1, skipped)
            previous = timestamp
        return missing, anomalies

    def verify_collection(self, device_id: str, response: CollectResponse,
                          collection_time: float) -> VerificationReport:
        """Verify a plain ERASMUS collection (Figure 2, verifier side)."""
        return self._verify_measurements(
            device_id, list(response.measurements), collection_time,
            expect_nonempty=True)

    def verify_ondemand(self, device_id: str, request: OnDemandRequest,
                        response: OnDemandResponse,
                        collection_time: float) -> VerificationReport:
        """Verify an ERASMUS+OD response (Figure 4, verifier side).

        In addition to the history checks, the fresh measurement ``M_0``
        must exist and must have been computed at or after the request
        time (otherwise the prover replayed an old record).
        """
        measurements = list(response.measurements)
        if response.fresh is not None:
            measurements = [response.fresh] + measurements
        report = self._verify_measurements(device_id, measurements,
                                           collection_time,
                                           expect_nonempty=True)
        if response.fresh is None:
            report.anomalies.append("prover returned no fresh measurement")
            report.status = DeviceStatus.TAMPERED
        elif response.fresh.timestamp + 1e-6 < request.request_time:
            report.anomalies.append(
                "fresh measurement is older than the request")
            report.status = DeviceStatus.TAMPERED
        return report

    def _verify_measurements(self, device_id: str,
                             measurements: List[Measurement],
                             collection_time: float,
                             expect_nonempty: bool) -> VerificationReport:
        last_seen = self._last_seen_timestamp.get(device_id)
        report = VerificationReport(device_id=device_id,
                                    collection_time=collection_time,
                                    status=DeviceStatus.HEALTHY)
        if not measurements:
            report.status = DeviceStatus.NO_DATA if not expect_nonempty \
                else DeviceStatus.TAMPERED
            if expect_nonempty:
                report.anomalies.append("prover returned no measurements")
            self.reports.append(report)
            return report

        for measurement in measurements:
            report.verdicts.append(
                self._verdict(device_id, measurement, collection_time))

        timestamps = [verdict.measurement.timestamp
                      for verdict in report.verdicts]
        report.missing_intervals, schedule_anomalies = self._check_schedule(
            sorted(timestamps), last_seen)
        report.anomalies.extend(schedule_anomalies)
        report.freshness = collection_time - max(timestamps)

        # Stale tail: the newest record should not be older than one
        # (tolerated) measurement interval — otherwise the most recent
        # measurements were deleted or silently skipped.
        expected_interval = self.config.measurement_interval
        if self.config.irregular_upper is not None:
            expected_interval = self.config.irregular_upper
        allowed_age = expected_interval * (1 + self.schedule_tolerance)
        if report.freshness > allowed_age:
            report.missing_intervals += max(
                1, int(report.freshness / expected_interval) - 1)

        forged = [verdict for verdict in report.verdicts
                  if not verdict.authentic]
        future = [verdict for verdict in report.verdicts if verdict.from_future]
        infected = [verdict for verdict in report.verdicts
                    if verdict.authentic and not verdict.healthy]

        if forged or future or schedule_anomalies:
            report.status = DeviceStatus.TAMPERED
            if forged:
                report.anomalies.append(
                    f"{len(forged)} measurement(s) failed MAC verification")
            if future:
                report.anomalies.append(
                    f"{len(future)} measurement(s) are timestamped in the future")
        elif infected:
            report.status = DeviceStatus.INFECTED
        elif report.missing_intervals > self.allowed_missing:
            # Gaps without other anomalies: measurements were deleted or
            # skipped beyond what the deployment policy tolerates.  The
            # paper treats unexplained absence as self-incriminating.
            report.status = DeviceStatus.TAMPERED
            report.anomalies.append(
                f"{report.missing_intervals} expected measurement(s) missing "
                f"(policy allows {self.allowed_missing})")

        self._last_collection_time[device_id] = collection_time
        self._last_seen_timestamp[device_id] = max(
            timestamps, default=last_seen if last_seen is not None else 0.0)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def reports_for(self, device_id: str) -> List[VerificationReport]:
        """All reports produced so far for one device."""
        return [report for report in self.reports
                if report.device_id == device_id]

    def last_collection_time(self, device_id: str) -> Optional[float]:
        """Time of the most recent verified collection for a device."""
        return self._last_collection_time.get(device_id)
