"""Tests for the from-scratch SHA-256 implementation."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import Sha256, sha256_digest


# NIST / RFC test vectors.
KNOWN_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert sha256_digest(message).hex() == expected


def test_streaming_equals_one_shot():
    hasher = Sha256()
    hasher.update(b"hello ")
    hasher.update(b"world")
    assert hasher.digest() == sha256_digest(b"hello world")


def test_digest_is_idempotent():
    hasher = Sha256(b"payload")
    assert hasher.digest() == hasher.digest()


def test_update_after_digest_still_works():
    hasher = Sha256(b"part one")
    first = hasher.digest()
    hasher.update(b" and part two")
    assert hasher.digest() != first
    assert hasher.digest() == sha256_digest(b"part one and part two")


def test_copy_is_independent():
    hasher = Sha256(b"shared prefix")
    clone = hasher.copy()
    clone.update(b" divergence")
    assert hasher.digest() == sha256_digest(b"shared prefix")
    assert clone.digest() == sha256_digest(b"shared prefix divergence")


def test_compression_counter_tracks_blocks():
    hasher = Sha256(b"x" * 256)
    assert hasher.compressions == 4


def test_rejects_non_bytes_input():
    with pytest.raises(TypeError):
        Sha256().update("not bytes")


def test_block_and_digest_sizes():
    assert Sha256.block_size == 64
    assert Sha256.digest_size == 32
    assert len(sha256_digest(b"anything")) == 32


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=3000))
def test_matches_hashlib(data):
    assert sha256_digest(data) == hashlib.sha256(data).digest()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=200), max_size=10))
def test_chunked_update_matches_hashlib(chunks):
    hasher = Sha256()
    reference = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk)
        reference.update(chunk)
    assert hasher.digest() == reference.digest()
