"""Tests for ERASMUS+OD and the on-demand attestation baseline."""

import pytest

from repro.arch.base import hash_for_mac
from repro.core import (
    DeviceStatus,
    ErasmusProver,
    ErasmusVerifier,
    OnDemandProver,
    OnDemandRequest,
    OnDemandVerifier,
)
from repro.sim import SimulationEngine


class TestErasmusPlusOD:
    def test_valid_request_returns_fresh_and_history(self, erasmus_setup):
        prover, verifier, engine, _arch = erasmus_setup
        prover.attach(engine)
        engine.run(until=60.0)
        request = verifier.create_ondemand_request(prover.device_id, 60.0)
        response = prover.handle_ondemand(request, time=61.0)
        assert response.fresh is not None
        assert response.fresh.timestamp == pytest.approx(61.0)
        assert len(response.measurements) >= 5
        report = verifier.verify_ondemand(prover.device_id, request, response,
                                          61.0)
        assert report.status is DeviceStatus.HEALTHY
        assert report.freshness == pytest.approx(0.0)

    def test_request_with_bad_mac_is_refused(self, erasmus_setup):
        prover, _verifier, engine, _arch = erasmus_setup
        prover.attach(engine)
        engine.run(until=30.0)
        bogus = OnDemandRequest(request_time=30.0, k=3, tag=b"\x00" * 32)
        response = prover.handle_ondemand(bogus, time=31.0)
        assert response.fresh is None
        assert response.measurements == []

    def test_replayed_request_is_refused(self, erasmus_setup):
        prover, verifier, engine, _arch = erasmus_setup
        prover.attach(engine)
        engine.run(until=30.0)
        request = verifier.create_ondemand_request(prover.device_id, 30.0)
        first = prover.handle_ondemand(request, time=31.0)
        assert first.fresh is not None
        replay = prover.handle_ondemand(request, time=32.0)
        assert replay.fresh is None

    def test_refusal_is_flagged_by_verifier(self, erasmus_setup):
        prover, verifier, engine, _arch = erasmus_setup
        prover.attach(engine)
        engine.run(until=30.0)
        request = verifier.create_ondemand_request(prover.device_id, 30.0)
        bogus = OnDemandRequest(request.request_time, request.k, b"\x00" * 32)
        response = prover.handle_ondemand(bogus, time=31.0)
        report = verifier.verify_ondemand(prover.device_id, request, response,
                                          31.0)
        assert report.status is DeviceStatus.TAMPERED

    def test_fresh_measurement_detects_current_infection(self, erasmus_setup,
                                                         malware_image):
        prover, verifier, engine, arch = erasmus_setup
        prover.attach(engine)
        engine.run(until=30.0)
        arch.load_application(malware_image)
        request = verifier.create_ondemand_request(prover.device_id, 30.0)
        response = prover.handle_ondemand(request, time=31.0)
        report = verifier.verify_ondemand(prover.device_id, request, response,
                                          31.0)
        assert report.status is DeviceStatus.INFECTED


class TestOnDemandBaseline:
    @pytest.fixture
    def ondemand_setup(self, key, config, smartplus_arch):
        healthy = hash_for_mac(config.mac_name)(
            smartplus_arch.read_measured_memory())
        prover = OnDemandProver(smartplus_arch, config, device_id="od-dev")
        verifier = OnDemandVerifier(config)
        verifier.enroll("od-dev", key, [healthy])
        return prover, verifier, smartplus_arch

    def test_valid_attestation(self, ondemand_setup):
        prover, verifier, _arch = ondemand_setup
        request = verifier.create_request("od-dev", 10.0)
        response = prover.handle_request(request, time=11.0)
        report = verifier.verify_response("od-dev", request, response, 11.0)
        assert report.status is DeviceStatus.HEALTHY
        assert prover.attestations_served == 1

    def test_dos_request_refused_without_measurement(self, ondemand_setup):
        prover, _verifier, _arch = ondemand_setup
        bogus = OnDemandRequest(request_time=10.0, k=0, tag=b"\x11" * 32)
        response = prover.handle_request(bogus, time=11.0)
        assert response.fresh is None
        assert prover.requests_refused == 1
        assert prover.attestations_served == 0

    def test_current_infection_detected(self, ondemand_setup, malware_image):
        prover, verifier, arch = ondemand_setup
        arch.load_application(malware_image)
        request = verifier.create_request("od-dev", 10.0)
        response = prover.handle_request(request, time=11.0)
        report = verifier.verify_response("od-dev", request, response, 11.0)
        assert report.status is DeviceStatus.INFECTED

    def test_mobile_malware_missed_by_on_demand(self, ondemand_setup,
                                                malware_image, firmware):
        # Malware present between attestations leaves no trace for the
        # on-demand baseline: this is the gap ERASMUS closes (Figure 1).
        prover, verifier, arch = ondemand_setup
        arch.load_application(malware_image)
        arch.load_application(firmware)   # malware covered its tracks
        request = verifier.create_request("od-dev", 20.0)
        response = prover.handle_request(request, time=21.0)
        report = verifier.verify_response("od-dev", request, response, 21.0)
        assert report.status is DeviceStatus.HEALTHY

    def test_no_response_reported(self, ondemand_setup):
        prover, verifier, _arch = ondemand_setup
        request = verifier.create_request("od-dev", 10.0)
        refusal = prover.handle_request(
            OnDemandRequest(request.request_time, 0, b"\x00" * 32), time=11.0)
        report = verifier.verify_response("od-dev", request, refusal, 11.0)
        assert report.status is DeviceStatus.NO_DATA

    def test_attestation_runtime_includes_request_auth(self, ondemand_setup):
        prover, _verifier, arch = ondemand_setup
        assert prover.attestation_runtime() > \
            arch.cost_model.measurement_runtime(arch.measured_memory_bytes(),
                                                arch.mac_name)


def test_erasmus_vs_ondemand_history_asymmetry(key, config, smartplus_arch,
                                               malware_image, firmware):
    """The central comparison: same transient infection, different verdicts."""
    healthy = hash_for_mac(config.mac_name)(
        smartplus_arch.read_measured_memory())
    erasmus_prover = ErasmusProver(smartplus_arch, config, device_id="dev")
    erasmus_verifier = ErasmusVerifier(config)
    erasmus_verifier.enroll("dev", key, [healthy])
    ondemand_verifier = OnDemandVerifier(config)
    ondemand_verifier.enroll("dev", key, [healthy])

    engine = SimulationEngine()
    erasmus_prover.attach(engine)
    engine.run(until=30.0)
    smartplus_arch.load_application(malware_image)
    engine.run(until=45.0)
    smartplus_arch.load_application(firmware)
    engine.run(until=60.0)

    # ERASMUS sees the infection in its history.
    response = erasmus_prover.handle_collect(
        erasmus_verifier.create_collect_request())
    erasmus_report = erasmus_verifier.verify_collection("dev", response, 60.0)
    assert erasmus_report.status is DeviceStatus.INFECTED

    # An on-demand attestation at the same moment sees a clean device.
    ondemand_prover = OnDemandProver(smartplus_arch, config, device_id="dev")
    request = ondemand_verifier.create_request("dev", 60.0)
    od_response = ondemand_prover.handle_request(request, time=61.0)
    od_report = ondemand_verifier.verify_response("dev", request, od_response,
                                                  61.0)
    assert od_report.status is DeviceStatus.HEALTHY
