"""Tests for campaign scenarios and grids."""

import pytest

from repro.campaign import Scenario, ScenarioGrid


class TestScenarioValidation:
    def test_defaults_are_valid(self):
        scenario = Scenario()
        assert scenario.devices == 100
        assert scenario.malware == "mobile"

    @pytest.mark.parametrize("overrides", [
        {"devices": 0},
        {"horizon": 0.0},
        {"measurement_interval": -1.0},
        {"protocol": "quantum"},
        {"schedule": "chaotic"},
        {"malware": "gremlin"},
        {"mobility": "teleport"},
        {"transport": "pigeon"},
        {"victim_fraction": 0.0},
        {"victim_fraction": 1.5},
        {"fault_partition_fraction": 1.5},
        {"store_crash_round": 0},
        {"malware": "mobile", "dwell": None, "mean_dwell": None},
        {"verifier_downtime": ((100.0, 50.0),)},
        {"fault_partition_windows": ((-1.0, 50.0),)},
        {"mobility": "waypoint", "transport": "in-process"},
    ])
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            Scenario(**overrides)

    def test_on_demand_conflates_intervals(self):
        scenario = Scenario(protocol="on-demand", measurement_interval=60.0,
                            collection_interval=600.0)
        assert scenario.effective_measurement_interval == 600.0
        assert scenario.measurements_per_collection == 1
        erasmus = scenario.with_overrides(protocol="erasmus")
        assert erasmus.effective_measurement_interval == 60.0
        assert erasmus.measurements_per_collection == 10

    def test_collection_times_and_downtime(self):
        scenario = Scenario(horizon=1800.0, collection_interval=600.0,
                            verifier_downtime=((1100.0, 1300.0),))
        assert scenario.collection_times() == [600.0, 1200.0, 1800.0]
        assert scenario.in_downtime(1200.0)
        assert not scenario.in_downtime(600.0)
        assert scenario.active_collection_times() == [600.0, 1800.0]

    def test_to_row_is_json_friendly(self):
        import json
        scenario = Scenario(verifier_downtime=((10.0, 20.0),))
        row = scenario.to_row()
        assert json.loads(json.dumps(row)) == row
        assert row["verifier_downtime"] == [[10.0, 20.0]]


class TestScenarioGrid:
    def test_cells_expand_in_axis_order(self):
        grid = ScenarioGrid(
            base=Scenario(seed=100),
            axes={"dwell": [10.0, 20.0], "protocol": ["erasmus",
                                                      "on-demand"]})
        cells = grid.cells()
        assert [c.name for c in cells] == [
            "dwell=10.0/protocol=erasmus", "dwell=10.0/protocol=on-demand",
            "dwell=20.0/protocol=erasmus", "dwell=20.0/protocol=on-demand"]
        assert [c.seed for c in cells] == [100, 101, 102, 103]
        assert cells[3].dwell == 20.0 and cells[3].protocol == "on-demand"

    def test_seed_axis_overrides_derived_seed(self):
        grid = ScenarioGrid(base=Scenario(seed=5),
                            axes={"seed": [7, 9]})
        assert [c.seed for c in grid.cells()] == [7, 9]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioGrid(base=Scenario(), axes={"warp_factor": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            ScenarioGrid(base=Scenario(), axes={"dwell": []})

    def test_empty_axes_yield_base_cell(self):
        base = Scenario(name="solo", seed=3)
        cells = ScenarioGrid(base=base, axes={}).cells()
        assert len(cells) == 1
        assert cells[0].name == "solo"
        assert cells[0].seed == 3
