"""The discrete-event simulation engine."""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventKind
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for invalid simulation operations (e.g. scheduling in the past)."""


class SimulationEngine:
    """Event-queue simulator with a virtual clock.

    Typical use::

        engine = SimulationEngine()
        engine.schedule(10.0, lambda ev: print("fired"), EventKind.TIMER)
        engine.run(until=100.0)

    The engine also owns a :class:`TraceRecorder` so that experiments can
    reconstruct what happened (e.g. for QoA / detection analysis).
    """

    def __init__(self, trace: Optional[TraceRecorder] = None) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self.trace = trace if trace is not None else TraceRecorder()
        self.events_processed = 0
        self._running = False

    def schedule(self, time: float, callback: Callable[[Event], None],
                 kind: EventKind = EventKind.GENERIC,
                 payload: Any = None) -> Event:
        """Schedule ``callback`` to fire at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}")
        event = Event.create(time, callback, kind, payload)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[Event], None],
                    kind: EventKind = EventKind.GENERIC,
                    payload: Any = None) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule(self.now + delay, callback, kind, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next pending event, if any."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> Optional[Event]:
        """Process a single event and return it (or ``None`` if idle)."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            if event.callback is not None:
                event.callback(event)
            return event
        return None

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the virtual clock would pass this time.  Events
            scheduled exactly at ``until`` still fire.
        max_events:
            Safety limit on the number of events processed in this call.

        Returns the number of events processed in this call.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
            self._advance_to_horizon(until)
        finally:
            self._running = False
        return processed

    def _advance_to_horizon(self, until: Optional[float]) -> None:
        """Move the idle clock up to ``until`` once the drain got there.

        Only when no pending event remains at or before ``until``: if a
        ``max_events`` cap truncated the drain earlier, jumping the
        clock would strand queued events in the past — a later
        :meth:`step` would move time backwards, and scheduling between
        the stranded events would be falsely rejected.
        """
        if until is None or until <= self.now:
            return
        next_time = self.peek_time()
        if next_time is None or next_time > until:
            self.now = until

    async def run_async(self, until: Optional[float] = None,
                        max_events: Optional[int] = None,
                        yield_every: int = 64) -> int:
        """Awaitable :meth:`run`: drain events, yielding to the loop.

        Control returns to the asyncio event loop every ``yield_every``
        simulation events, so coroutines awaiting on simulation progress
        — an async transport waiting for collection responses, a
        scenario overlapping rounds with measurement schedules — can
        interleave with the drain instead of blocking behind it.  The
        same re-entrancy guard as :meth:`run` applies; concurrent
        *steppers* (e.g. a transport driving :meth:`step` directly while
        this coroutine is suspended) are fine, because each event is
        popped exactly once.
        """
        if yield_every <= 0:
            raise SimulationError("yield_every must be positive")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if processed % yield_every == 0:
                    await asyncio.sleep(0)
            self._advance_to_horizon(until)
        finally:
            self._running = False
        return processed

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)
