"""Benchmark: regenerate the Section 4.1 hardware-cost comparison."""

import pytest

from repro.experiments import hwcost


def test_hwcost_regeneration(benchmark):
    rows = benchmark(hwcost.run)
    by_variant = {row["variant"]: row for row in rows}
    assert by_variant["erasmus"]["registers"] == 655
    assert by_variant["erasmus"]["luts"] == 1969
    assert by_variant["unmodified"]["registers"] == 579
    assert by_variant["unmodified"]["luts"] == 1731
    assert by_variant["erasmus"]["register_overhead_pct"] == pytest.approx(
        13.0, abs=0.5)
    assert by_variant["erasmus"]["lut_overhead_pct"] == pytest.approx(
        14.0, abs=0.5)
    assert hwcost.erasmus_equals_ondemand(rows)
