"""Streaming SLO evaluation: health verdicts *while* a round runs.

The fleet's :class:`~repro.fleet.sinks.FleetHealth` is an aggregate
computed as reports commit and examined after the round returns.  For
a live deployment that is too late: "95% of the fleet must attest" is
an SLO you want to hear about the moment it becomes unmeetable, not at
the post-mortem.  :class:`StreamingHealthSink` is an ordinary
:class:`~repro.fleet.sinks.ReportSink` — it plugs into the same fanout
every other sink uses — that evaluates a set of :class:`SloRule`\\ s on
every streamed report and fires :class:`SloViolation` events
*mid-round*, as soon as a rule's verdict is decided.

Rules have two evaluation paths that must agree:

* **streaming** — :meth:`SloRule.observe` per report, then
  :meth:`SloRule.end_of_round` when the round's sink flush arrives;
* **post-hoc** — :meth:`SloRule.violated_by` over a finished
  :class:`~repro.fleet.sinks.FleetHealth` aggregate.

The agreement is load-bearing: a sharded verifier merges per-shard
aggregates after the fact, and the hypothesis suite asserts that the
streaming verdict at end-of-round equals the verdict recomputed from
the merged post-hoc health — whatever the report stream looked like.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.verification import DeviceStatus, VerificationReport
from repro.fleet.sinks import FleetHealth, ReportSink


@dataclass
class SloViolation:
    """One fired SLO event: which rule, when, and how badly.

    ``reports_seen`` is the number of reports the sink had streamed
    *this round* when the rule fired — strictly less than the fleet
    size proves the event fired mid-round, before the collection
    returned, even when the sink has already streamed earlier rounds.
    """

    rule: str
    round_index: int
    message: str
    value: float
    threshold: float
    reports_seen: int
    #: Virtual (engine) time at firing; 0.0 without a bound clock.
    time: float = 0.0
    #: False for violations only discovered by the end-of-round sweep.
    streamed: bool = True

    def summary(self) -> str:
        when = "mid-round" if self.streamed else "end of round"
        return (f"SLO {self.rule} violated ({when}, round "
                f"{self.round_index}): {self.message}")


class SloRule(abc.ABC):
    """One health objective, evaluable both streaming and post-hoc.

    Subclasses keep per-round streaming state; :meth:`reset` wipes it
    between rounds.  :meth:`observe` may return a ``(value, message)``
    pair the moment the round's verdict becomes irrevocably *violated*
    — that is what makes the sink's events fire before the round
    returns — while :meth:`end_of_round` settles the verdict for rules
    that need the full round.  :meth:`violated_by` recomputes the same
    verdict from a finished :class:`FleetHealth`.
    """

    #: Stable rule name (used as the metrics label and event tag).
    name = "slo"

    @abc.abstractmethod
    def reset(self) -> None:
        """Wipe per-round streaming state."""

    @abc.abstractmethod
    def observe(self, report: VerificationReport
                ) -> Optional[tuple]:
        """Fold one streamed report in; a ``(value, message)`` pair the
        moment the round is irrevocably violated, else ``None``."""

    @abc.abstractmethod
    def end_of_round(self) -> Optional[tuple]:
        """Settle the round's verdict; ``(value, message)`` if violated."""

    @abc.abstractmethod
    def violated_by(self, health: FleetHealth) -> bool:
        """The same verdict, recomputed from a post-hoc aggregate."""

    @property
    @abc.abstractmethod
    def threshold(self) -> float:
        """The configured bound (for event rendering)."""


class LostBudgetRule(SloRule):
    """At most ``max_lost`` devices may fail to answer in one round.

    A device that never answers surfaces as a ``NO_DATA`` report, so
    the streaming count crosses the budget the moment the
    ``max_lost + 1``-th silent device commits — typically while most of
    the round is still in flight, which is exactly when an operator
    wants to hear about a partition.
    """

    def __init__(self, max_lost: int) -> None:
        if max_lost < 0:
            raise ValueError("max_lost must be non-negative")
        self.max_lost = max_lost
        self._lost = 0

    name = "lost_budget"

    @property
    def threshold(self) -> float:
        return float(self.max_lost)

    def reset(self) -> None:
        self._lost = 0

    def observe(self, report: VerificationReport) -> Optional[tuple]:
        if report.status is not DeviceStatus.NO_DATA:
            return None
        self._lost += 1
        if self._lost == self.max_lost + 1:
            return (float(self._lost),
                    f"{self._lost} device(s) unreachable this round "
                    f"(budget {self.max_lost})")
        return None

    def end_of_round(self) -> Optional[tuple]:
        if self._lost > self.max_lost:
            return (float(self._lost),
                    f"{self._lost} device(s) unreachable this round "
                    f"(budget {self.max_lost})")
        return None

    def violated_by(self, health: FleetHealth) -> bool:
        return health.count(DeviceStatus.NO_DATA) > self.max_lost


class CoverageRule(SloRule):
    """At least ``min_fraction`` of the fleet must attest in the round.

    "Attest" means the device produced *any* verifiable response
    (``status != NO_DATA``).  With ``expected_devices`` configured the
    rule fires mid-round the instant the target becomes unachievable —
    once more than ``(1 - min_fraction) * expected`` devices are
    silent, no later report can save the round.  Without an
    expectation it settles at end-of-round against the reports
    actually streamed.
    """

    def __init__(self, min_fraction: float,
                 expected_devices: Optional[int] = None) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must be within (0, 1]")
        if expected_devices is not None and expected_devices <= 0:
            raise ValueError("expected_devices must be positive")
        self.min_fraction = min_fraction
        # The target as the exact rational the caller *wrote*: parsing
        # the shortest decimal repr makes 0.9 mean 9/10, not the float
        # 0.90000000000000002..., so a round attesting exactly 9 of 10
        # devices meets the target instead of missing it by one ulp.
        self._target = Fraction(str(min_fraction))
        self.expected_devices = expected_devices
        self._seen = 0
        self._missing = 0

    name = "coverage"

    @property
    def threshold(self) -> float:
        return self.min_fraction

    def reset(self) -> None:
        self._seen = 0
        self._missing = 0

    def _verdict(self, attested: int, expected: int) -> Optional[tuple]:
        # Exact arithmetic: attested / expected < target without float
        # division, so the streaming and post-hoc paths can never
        # disagree in the last ulp.
        if expected and Fraction(attested, expected) < self._target:
            return (attested / expected,
                    f"only {attested}/{expected} device(s) attested "
                    f"(target {self.min_fraction:.1%})")
        return None

    def observe(self, report: VerificationReport) -> Optional[tuple]:
        self._seen += 1
        if report.status is DeviceStatus.NO_DATA:
            self._missing += 1
        expected = self.expected_devices
        if expected is None:
            return None
        # Fire as soon as even a perfect remainder cannot reach the
        # target: every not-yet-seen device counted as attested.
        best_possible = expected - self._missing
        if self._missing and self._verdict(best_possible, expected):
            attested = self._seen - self._missing
            return (best_possible / expected,
                    f"coverage target {self.min_fraction:.1%} is already "
                    f"unreachable: {self._missing} of {expected} "
                    f"device(s) silent ({attested} attested so far)")
        return None

    def end_of_round(self) -> Optional[tuple]:
        expected = self.expected_devices if self.expected_devices \
            is not None else self._seen
        return self._verdict(self._seen - self._missing, expected)

    def violated_by(self, health: FleetHealth) -> bool:
        expected = self.expected_devices if self.expected_devices \
            is not None else health.reports_total
        attested = health.reports_total - \
            health.count(DeviceStatus.NO_DATA)
        return self._verdict(attested, expected) is not None


class FreshnessRule(SloRule):
    """Mean measurement freshness must stay within ``max_mean_seconds``.

    Freshness is the age of a collection's measurements at verify time
    (the paper's QoA axis); this rule bounds the fleet-wide mean.  The
    streaming accumulator uses exact rationals, mirroring
    :class:`FleetHealth`'s, so the end-of-round verdict is *identical*
    to the one recomputed from a merged post-hoc aggregate — not just
    close.
    """

    def __init__(self, max_mean_seconds: float) -> None:
        if max_mean_seconds <= 0:
            raise ValueError("max_mean_seconds must be positive")
        self.max_mean_seconds = max_mean_seconds
        # Via str(): the user wrote the decimal "0.1", not the binary
        # float nearest it — Fraction(0.1) is a hair *above* 0.1, so a
        # fleet whose exact mean lands on the threshold would misjudge.
        self._max_mean = Fraction(str(max_mean_seconds))
        self._sum = Fraction(0)
        self._count = 0

    name = "freshness"

    @property
    def threshold(self) -> float:
        return self.max_mean_seconds

    def reset(self) -> None:
        self._sum = Fraction(0)
        self._count = 0

    def observe(self, report: VerificationReport) -> Optional[tuple]:
        if report.freshness is not None:
            self._sum += Fraction(report.freshness)
            self._count += 1
        return None  # a late fresh report can still pull the mean back

    def _verdict(self, total: Fraction, count: int) -> Optional[tuple]:
        if count and total / count > self._max_mean:
            mean = float(total / count)
            return (mean,
                    f"mean freshness {mean:.1f}s exceeds "
                    f"{self.max_mean_seconds:.1f}s")
        return None

    def end_of_round(self) -> Optional[tuple]:
        return self._verdict(self._sum, self._count)

    def violated_by(self, health: FleetHealth) -> bool:
        return self._verdict(health._freshness_sum,
                             health._freshness_count) is not None


class AttestationWindowRule(SloRule):
    """``min_fraction`` of the fleet must attest within ``window``
    virtual seconds of the round's first report.

    The paper's time-to-detection argument in SLO form: the clock is
    the *engine's*, so on the simulated network the window measures
    genuine protocol latency (multi-hop relays, retries, partitions),
    deterministically.  Streaming-only by nature — a finished
    :class:`FleetHealth` no longer knows *when* each report landed —
    so :meth:`violated_by` replays the verdict the stream settled on.
    """

    def __init__(self, min_fraction: float, window: float,
                 expected_devices: int,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must be within (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        if expected_devices <= 0:
            raise ValueError("expected_devices must be positive")
        self.min_fraction = min_fraction
        # Exact decimal threshold: 0.07 * 100 is 7.000000000000001 as
        # floats, so exactly 7 of 100 attested would falsely violate.
        self._min_fraction_exact = Fraction(str(min_fraction))
        self.window = window
        self.expected_devices = expected_devices
        self._clock = clock
        self._round_start: Optional[float] = None
        self._attested_in_window = 0
        self._violated: Optional[tuple] = None

    name = "attestation_window"

    @property
    def threshold(self) -> float:
        return self.min_fraction

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done by the sink when bound)."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def reset(self) -> None:
        self._round_start = None
        self._attested_in_window = 0
        self._violated = None

    def _short_of_target(self) -> bool:
        """Exact ``attested/expected < min_fraction`` — no float target."""
        return (Fraction(self._attested_in_window, self.expected_devices)
                < self._min_fraction_exact)

    def observe(self, report: VerificationReport) -> Optional[tuple]:
        now = self._now()
        if self._round_start is None:
            self._round_start = now
        in_window = now - self._round_start <= self.window
        if report.status is not DeviceStatus.NO_DATA and in_window:
            self._attested_in_window += 1
        if self._violated is not None:
            return None  # already fired this round
        if not in_window and self._short_of_target():
            fraction = self._attested_in_window / self.expected_devices
            self._violated = (
                fraction,
                f"only {self._attested_in_window}/"
                f"{self.expected_devices} device(s) attested within "
                f"{self.window:.1f}s (target {self.min_fraction:.1%})")
            return self._violated
        return None

    def end_of_round(self) -> Optional[tuple]:
        if self._violated is not None:
            return None  # already streamed; do not double-fire
        if self._round_start is None:
            return None
        if self._short_of_target():
            fraction = self._attested_in_window / self.expected_devices
            return (fraction,
                    f"only {self._attested_in_window}/"
                    f"{self.expected_devices} device(s) attested within "
                    f"{self.window:.1f}s (target {self.min_fraction:.1%})")
        return None

    def violated_by(self, health: FleetHealth) -> bool:
        del health  # timing is gone from a post-hoc aggregate
        return self._violated is not None


class StreamingHealthSink(ReportSink):
    """A report sink that turns SLO rules into live events.

    Plugs into the verifier's ordinary sink fanout: every committed
    report is offered to every rule, and the moment a rule decides the
    round is violated the sink records an :class:`SloViolation` and
    invokes each ``on_violation`` callback — synchronously, inside the
    round, which is what "fires before the round returns" means.  The
    round boundary is the sink's ``flush()`` (the fanout flushes on
    clean round exit): outstanding verdicts are settled, per-round rule
    state resets, and the round index advances.

    A rule that already fired mid-round is not re-fired by the
    end-of-round sweep; one violation event per rule per round.
    """

    def __init__(self, rules: Iterable[SloRule],
                 on_violation: Sequence[Callable[[SloViolation], None]]
                 = (),
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.rules: List[SloRule] = list(rules)
        self.on_violation: List[Callable[[SloViolation], None]] = \
            list(on_violation)
        self._clock = clock
        self.round_index = 1
        self.reports_seen = 0
        self._round_reports = 0
        self._fired_this_round: set = set()
        self.violations: List[SloViolation] = []
        for rule in self.rules:
            rule.reset()
            if clock is not None and hasattr(rule, "bind_clock"):
                rule.bind_clock(clock)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock events are stamped with."""
        self._clock = clock
        for rule in self.rules:
            if hasattr(rule, "bind_clock"):
                rule.bind_clock(clock)

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _fire(self, rule: SloRule, verdict: tuple,
              streamed: bool) -> None:
        value, message = verdict
        violation = SloViolation(
            rule=rule.name, round_index=self.round_index,
            message=message, value=float(value),
            threshold=rule.threshold, reports_seen=self._round_reports,
            time=self._now(), streamed=streamed)
        self.violations.append(violation)
        self._fired_this_round.add(rule.name)
        for callback in self.on_violation:
            callback(violation)

    # ------------------------------------------------------------------
    # ReportSink contract
    # ------------------------------------------------------------------
    def emit(self, report: VerificationReport) -> None:
        self.reports_seen += 1
        self._round_reports += 1
        for rule in self.rules:
            verdict = rule.observe(report)
            if verdict is not None and \
                    rule.name not in self._fired_this_round:
                self._fire(rule, verdict, streamed=True)

    def flush(self) -> None:
        """End-of-round: settle verdicts, reset rules, advance rounds."""
        if not self._round_reports:
            return  # idle flush (no round content) is not a boundary
        for rule in self.rules:
            if rule.name not in self._fired_this_round:
                verdict = rule.end_of_round()
                if verdict is not None:
                    self._fire(rule, verdict, streamed=False)
        for rule in self.rules:
            rule.reset()
        self._fired_this_round = set()
        self._round_reports = 0
        self.round_index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violations_for_round(self, round_index: int
                             ) -> List[SloViolation]:
        """All violations recorded for one round."""
        return [violation for violation in self.violations
                if violation.round_index == round_index]

    def violation_rows(self) -> List[dict]:
        """JSON-friendly rows for the ``/slo`` endpoint."""
        return [{
            "rule": violation.rule,
            "round": violation.round_index,
            "message": violation.message,
            "value": violation.value,
            "threshold": violation.threshold,
            "reports_seen": violation.reports_seen,
            "time": violation.time,
            "streamed": violation.streamed,
        } for violation in self.violations]
