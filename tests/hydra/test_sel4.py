"""Tests for the seL4-like microkernel model."""

import pytest

from repro.hydra.sel4 import Capability, CapabilityError, Microkernel, Right


def build_kernel() -> Microkernel:
    kernel = Microkernel()
    kernel.register_object("key_region")
    kernel.register_object("shared_buffer")
    return kernel


def test_initial_process_gets_requested_capabilities():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [
        Capability("key_region", Right.READ),
        Capability("shared_buffer", Right.READ | Right.WRITE | Right.GRANT),
    ])
    assert kernel.check_access("pratt", "key_region", Right.READ)
    assert not kernel.check_access("pratt", "key_region", Right.WRITE)


def test_only_one_initial_process_allowed():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [])
    with pytest.raises(CapabilityError):
        kernel.create_initial_process("second", 254, [])


def test_spawn_requires_lower_priority():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [])
    with pytest.raises(CapabilityError):
        kernel.spawn("pratt", "app", 255)
    kernel.spawn("pratt", "app", 100)
    assert kernel.process("app").parent == "pratt"


def test_grant_requires_grant_right():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [
        Capability("key_region", Right.READ),
        Capability("shared_buffer", Right.ALL),
    ])
    # Key capability has no GRANT right: delegation must fail.
    with pytest.raises(CapabilityError):
        kernel.spawn("pratt", "app", 100,
                     [Capability("key_region", Right.READ)])
    # The shared buffer carries GRANT, so delegation succeeds.
    kernel.spawn("pratt", "app", 100,
                 [Capability("shared_buffer", Right.READ)])
    assert kernel.check_access("app", "shared_buffer", Right.READ)
    assert not kernel.check_access("app", "shared_buffer", Right.WRITE)


def test_delegated_capability_is_diminished_to_parent_rights():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [
        Capability("shared_buffer", Right.READ | Right.GRANT),
    ])
    kernel.spawn("pratt", "app", 10,
                 [Capability("shared_buffer", Right.ALL)])
    assert kernel.check_access("app", "shared_buffer", Right.READ)
    assert not kernel.check_access("app", "shared_buffer", Right.WRITE)


def test_access_denials_are_recorded():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [])
    kernel.spawn("pratt", "malware", 5)
    assert not kernel.check_access("malware", "key_region", Right.READ)
    assert ("malware", "key_region", "READ") in kernel.access_denials
    with pytest.raises(CapabilityError):
        kernel.require_access("malware", "key_region", Right.READ)


def test_exclusive_holder_detection():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [
        Capability("key_region", Right.READ | Right.GRANT),
    ])
    assert kernel.exclusive_holder("key_region") == "pratt"
    kernel.spawn("pratt", "leak", 10, [Capability("key_region", Right.READ)])
    assert kernel.exclusive_holder("key_region") is None


def test_schedule_picks_highest_priority_live_process():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [])
    kernel.spawn("pratt", "app-a", 10)
    kernel.spawn("pratt", "app-b", 20)
    assert kernel.schedule().name == "pratt"
    kernel.kill("pratt")
    assert kernel.schedule().name == "app-b"


def test_killed_process_loses_capabilities():
    kernel = build_kernel()
    kernel.create_initial_process("pratt", 255, [
        Capability("key_region", Right.READ)])
    kernel.kill("pratt")
    assert not kernel.check_access("pratt", "key_region", Right.READ)


def test_duplicate_and_unknown_names_rejected():
    kernel = build_kernel()
    with pytest.raises(ValueError):
        kernel.register_object("key_region")
    kernel.create_initial_process("pratt", 255, [])
    with pytest.raises(ValueError):
        kernel.spawn("pratt", "pratt", 10)
    with pytest.raises(KeyError):
        kernel.process("ghost")
    # Delegating a capability to an unregistered object fails: either at
    # the grant check (the parent cannot hold it) or at registration.
    with pytest.raises((ValueError, CapabilityError)):
        kernel.spawn("pratt", "app", 10,
                     [Capability("not_registered", Right.READ)])
