"""The self-gate: the repo's own tree lints clean under its baseline.

This is the same check CI runs.  A finding here means a change broke
one of the cataloged invariants (see ``INVARIANTS.md``) — fix it,
pragma it with a justification, or (for pre-existing debt only) add a
justified entry to ``statics-baseline.json``.
"""

from pathlib import Path

from repro.statics.baseline import Baseline
from repro.statics.checkers import all_checkers
from repro.statics.engine import scan_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def scan_repo():
    baseline = Baseline.load(REPO_ROOT / "statics-baseline.json")
    return scan_paths([REPO_ROOT / "src", REPO_ROOT / "tests"],
                      all_checkers(), baseline=baseline,
                      relative_to=REPO_ROOT)


def test_repo_tree_is_clean():
    result = scan_repo()
    assert result.clean, "\n" + "\n".join(
        finding.render() for finding in result.findings)
    assert result.files_scanned > 100  # the scan really saw the tree


def test_every_baseline_entry_still_matches_a_real_finding():
    """Baseline entries must not outlive the findings they excuse."""
    baseline = Baseline.load(REPO_ROOT / "statics-baseline.json")
    result = scan_repo()
    matched = {(finding.rule, finding.path, finding.message)
               for finding in result.baselined}
    stale = [entry for entry in baseline.entries
             if entry.key not in matched]
    assert not stale, "\n" + "\n".join(
        f"stale baseline entry: {entry.rule} at {entry.path}"
        for entry in stale)


def test_all_six_checkers_are_active():
    assert len(all_checkers()) >= 6
