"""HMAC-DRBG (NIST SP 800-90A) — the CSPRNG for irregular scheduling.

Paper Section 3.5: "One way to implement irregular intervals is to use
a Cryptographically Secure Pseudo Random Number Generator (CSPRNG)
initialized (seeded) with the secret key K."  The output is truncated /
mapped into ``[lower, upper)`` seconds to produce the next measurement
interval.

We implement the deterministic HMAC-DRBG construction so that prover
and analysis code can regenerate identical schedules from the same seed
(the verifier, knowing K, can reconstruct the expected measurement
times, while schedule-aware malware without K cannot).

The underlying HMAC is supplied by the pluggable backend registry
(:mod:`repro.crypto.backend`); the output stream is bit-for-bit
identical under every backend, so schedules regenerate identically no
matter which provider computed them.  Hot callers (scheduler sweeps,
verifier schedule regeneration) should prefer the batched entry points
:meth:`HmacDrbg.generate_batch` and :meth:`HmacDrbg.uniform_batch`,
which amortize per-call overhead while producing exactly the stream
the equivalent sequence of single calls would.
"""

from __future__ import annotations

from repro.crypto.backend import BackendSpec, resolve_backend

#: 2**-53 — one ulp of the 53-bit fraction used by :meth:`HmacDrbg.uniform`.
_FRACTION_ULP = 2.0 ** -53


class HmacDrbg:
    """Deterministic random bit generator per NIST SP 800-90A (HMAC-DRBG).

    Parameters
    ----------
    seed:
        Entropy input; in ERASMUS this is derived from the attestation
        key ``K`` (optionally mixed with a per-device nonce).
    personalization:
        Optional personalization string mixed into the initial state.
    hash_name:
        Underlying hash for the internal HMAC ("sha256" by default).
    backend:
        Crypto backend (name, instance or ``None`` for the default)
        that computes the internal HMACs.
    """

    def __init__(self, seed: bytes, personalization: bytes = b"",
                 hash_name: str = "sha256",
                 backend: BackendSpec = None) -> None:
        if not seed:
            raise ValueError("HMAC-DRBG requires a non-empty seed")
        self._hash_name = hash_name
        self._backend = resolve_backend(backend)
        self._hmac = self._backend.hmac_function(hash_name)
        digest_size = self._backend.digest_size(hash_name)
        self._key = b"\x00" * digest_size
        self._value = b"\x01" * digest_size
        self.reseed_counter = 1
        self._update(bytes(seed) + bytes(personalization))

    @property
    def backend_name(self) -> str:
        """Name of the backend computing the internal HMACs."""
        return self._backend.name

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + provided_data)
        self._value = self._hmac(self._key, self._value)
        if provided_data:
            self._key = self._hmac(
                self._key, self._value + b"\x01" + provided_data)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        if not entropy:
            raise ValueError("reseed entropy must be non-empty")
        self._update(bytes(entropy))
        self.reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return ``num_bytes`` pseudo-random bytes."""
        if num_bytes < 0:
            raise ValueError("cannot generate a negative number of bytes")
        output = b""
        while len(output) < num_bytes:
            self._value = self._hmac(self._key, self._value)
            output += self._value
        self._update()
        self.reseed_counter += 1
        return output[:num_bytes]

    def generate_batch(self, num_bytes: int, count: int) -> list[bytes]:
        """Return ``count`` successive :meth:`generate` outputs.

        Produces exactly the stream that ``count`` individual
        ``generate(num_bytes)`` calls would, but hoists the per-call
        dispatch out of the loop so large schedule regenerations are
        cheap.
        """
        if num_bytes < 0:
            raise ValueError("cannot generate a negative number of bytes")
        if count < 0:
            raise ValueError("cannot generate a negative number of batches")
        hmac_fn = self._hmac
        key = self._key
        value = self._value
        outputs: list[bytes] = []
        for _ in range(count):
            output = b""
            while len(output) < num_bytes:
                value = hmac_fn(key, value)
                output += value
            outputs.append(output[:num_bytes])
            # Inline _update() with no provided data.
            key = hmac_fn(key, value + b"\x00")
            value = hmac_fn(key, value)
        self._key = key
        self._value = value
        self.reseed_counter += count
        return outputs

    def random_uint(self, bits: int = 64) -> int:
        """Return a uniformly random unsigned integer with ``bits`` bits."""
        if bits <= 0 or bits % 8 != 0:
            raise ValueError("bits must be a positive multiple of 8")
        return int.from_bytes(self.generate(bits // 8), "big")

    def uniform(self, lower: float, upper: float) -> float:
        """Return a float uniformly distributed in ``[lower, upper)``.

        This is the ``map`` function from paper Section 3.5:
        ``map : x -> x mod (U - L) + L`` applied to the CSPRNG output,
        except that we map through a 53-bit fraction to avoid the
        modulo bias of the paper's illustrative formula.  The top 53 of
        64 generated bits become the fraction, so every draw is an
        exactly representable multiple of 2**-53 and the mapping is
        exactly uniform over the representable grid.
        """
        if upper < lower:
            raise ValueError("upper bound must be >= lower bound")
        fraction = (self.random_uint(64) >> 11) * _FRACTION_ULP
        return lower + fraction * (upper - lower)

    def uniform_batch(self, lower: float, upper: float,
                      count: int) -> list[float]:
        """Return ``count`` successive :meth:`uniform` draws.

        Stream-identical to ``count`` individual ``uniform`` calls, with
        the batched generator underneath.
        """
        if upper < lower:
            raise ValueError("upper bound must be >= lower bound")
        width = upper - lower
        return [
            lower + ((int.from_bytes(raw, "big") >> 11) * _FRACTION_ULP)
            * width
            for raw in self.generate_batch(8, count)
        ]
