"""Benchmark: Section 3.5 irregular intervals vs schedule-aware malware."""

import pytest

from repro.experiments import irregular_intervals

_FRACTIONS = (0.6, 0.95, 1.4)


def test_irregular_interval_sweep(benchmark):
    rows = benchmark(irregular_intervals.run, trials=800,
                     dwell_fractions=_FRACTIONS)
    by_fraction = {row["dwell_over_tm"]: row for row in rows}
    # Against a regular schedule, malware dwelling below T_M always evades.
    assert by_fraction[0.6]["regular_evasion"] == 1.0
    assert by_fraction[0.95]["regular_evasion"] == 1.0
    assert by_fraction[1.4]["regular_evasion"] == 0.0
    # The irregular schedule removes that certainty and tracks the
    # analytic uniform-interval prediction.
    for fraction in (0.95, 1.4):
        row = by_fraction[fraction]
        assert row["irregular_evasion"] < 1.0
        assert row["irregular_evasion"] == pytest.approx(
            row["analytic_irregular_evasion"], abs=0.1)
