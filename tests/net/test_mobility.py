"""Tests for the random-waypoint mobility model."""

import pytest

from repro.net.mobility import RandomWaypointMobility


NAMES = [f"dev{i}" for i in range(12)]


def test_static_swarm_topology_is_stable():
    mobility = RandomWaypointMobility(NAMES, area_size=50.0, radio_range=30.0,
                                      speed=0.0, seed=1)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(100.0)}
    assert first == later
    assert first  # dense deployment: some links must exist


def test_mobile_swarm_topology_changes():
    mobility = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=25.0,
                                      speed=5.0, seed=2)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(60.0)}
    assert first != later


def test_positions_stay_in_area():
    mobility = RandomWaypointMobility(NAMES, area_size=40.0, radio_range=10.0,
                                      speed=3.0, seed=3)
    for time in (0.0, 10.0, 50.0, 200.0):
        mobility.links_at(time)
        for name in NAMES:
            x, y = mobility.position_of(name)
            assert 0.0 <= x <= 40.0
            assert 0.0 <= y <= 40.0


def test_links_are_symmetric_unit_disc():
    mobility = RandomWaypointMobility(NAMES, area_size=60.0, radio_range=20.0,
                                      speed=0.0, seed=4)
    links = mobility.links_at(0.0)
    for link in links:
        ax, ay = mobility.position_of(link.node_a)
        bx, by = mobility.position_of(link.node_b)
        assert ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5 <= 20.0 + 1e-9


def test_time_cannot_move_backwards():
    mobility = RandomWaypointMobility(NAMES, speed=1.0, seed=5)
    mobility.links_at(10.0)
    with pytest.raises(ValueError):
        mobility.links_at(5.0)


def test_churn_rate_grows_with_speed():
    slow = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=0.5, seed=6)
    fast = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=8.0, seed=6)
    assert fast.churn_rate(horizon=30.0, step=1.0) > \
        slow.churn_rate(horizon=30.0, step=1.0)


def test_zero_speed_churn_is_zero():
    mobility = RandomWaypointMobility(NAMES, speed=0.0, seed=7)
    assert mobility.churn_rate(horizon=10.0, step=1.0) == 0.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RandomWaypointMobility([], speed=1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, area_size=0.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, speed=-1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES).churn_rate(horizon=0.0)
