"""Rule ``determinism``: no wall clock, no unseeded entropy.

Everything the reproduction persists or asserts byte-identity on —
campaign artifacts, span traces, health checkpoints, sharded/process
twin merges — is a pure function of seeds and the virtual clock.  One
``time.time()`` or global-RNG call silently breaks that.  This rule
forbids the ambient nondeterminism sources outside the CSPRNG module
(the one place OS entropy may enter, and even there only for
non-reproducible deployments):

* global-RNG ``random.<fn>()`` calls and unseeded ``Random()`` /
  ``SystemRandom()`` construction — ``random.Random(seed)`` is the
  blessed idiom and stays legal;
* ``time.time`` / ``time.time_ns`` (``perf_counter`` / ``monotonic``
  stay legal: they only feed operational wall-clock metrics that never
  enter persisted artifacts);
* ``datetime.now`` / ``utcnow`` / ``today`` and ``date.today``;
* ``os.urandom``, ``uuid.uuid1`` / ``uuid4``, and anything in
  ``secrets``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statics.engine import Checker, FileContext, Finding, dotted_chain

#: Modules allowed to reach for OS entropy / the wall clock.
_EXEMPT_SUFFIXES = ("repro/crypto/csprng.py",)

_FORBIDDEN_TAILS = {
    ("time", "time"): "time.time() is wall clock; deterministic paths "
                      "use the engine's virtual clock",
    ("time", "time_ns"): "time.time_ns() is wall clock; use the "
                         "engine's virtual clock",
    ("datetime", "now"): "datetime.now() is wall clock",
    ("datetime", "utcnow"): "datetime.utcnow() is wall clock",
    ("datetime", "today"): "datetime.today() is wall clock",
    ("date", "today"): "date.today() is wall clock",
    ("os", "urandom"): "os.urandom is OS entropy; derive from the "
                       "seeded HMAC-DRBG instead",
    ("uuid", "uuid1"): "uuid1 mixes in clock and MAC address",
    ("uuid", "uuid4"): "uuid4 draws OS entropy; derive ids from seeds",
}


class DeterminismChecker(Checker):
    rule = "determinism"
    description = ("forbids random/global-RNG, time.time, datetime.now "
                   "and os.urandom outside the CSPRNG seam")
    invariant = ("deterministic paths are pure functions of seeds and "
                 "the virtual clock, so same-seed runs — and "
                 "sharded/process twins — stay byte-identical")
    applies_to_tests = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.matches(*_EXEMPT_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if not chain:
                continue
            tail = tuple(chain[-2:]) if len(chain) >= 2 else None
            if tail in _FORBIDDEN_TAILS:
                yield ctx.finding(self.rule, node,
                                  _FORBIDDEN_TAILS[tail])
                continue
            if chain[0] == "secrets" and len(chain) > 1:
                yield ctx.finding(
                    self.rule, node,
                    f"secrets.{chain[-1]} draws OS entropy; derive "
                    f"from the seeded HMAC-DRBG instead")
                continue
            # Global-RNG calls: random.random(), random.choice(), ...
            # getstate/setstate only *inspect* the global RNG — tests
            # use them to assert nothing else touched it.
            if chain[0] == "random" and len(chain) == 2 \
                    and chain[1] not in ("Random", "getstate", "setstate"):
                yield ctx.finding(
                    self.rule, node,
                    f"random.{chain[1]} uses the unseeded global RNG; "
                    f"construct random.Random(seed) instead")
                continue
            # Unseeded construction: Random() / random.Random() with no
            # arguments seeds from OS entropy.
            if chain[-1] in ("Random", "SystemRandom") \
                    and chain[0] in ("random", chain[-1]) \
                    and not node.args and not node.keywords:
                yield ctx.finding(
                    self.rule, node,
                    f"{'.'.join(chain)}() without a seed draws OS "
                    f"entropy; pass an explicit seed")
