"""SMART+ architecture simulation.

Reproduces the memory organization of the paper's Figure 5(b):

* ROM holding the measurement code and ``K`` (hardware-enforced
  read-only; ``K`` readable only from the attestation context);
* RAM/flash holding the application image (the memory that gets
  measured) and the rolling measurement buffer ``M_1 .. M_n`` (insecure
  — the normal world, and hence malware, may read and write it);
* peripherals: I/O, timer, and the RROC.

Atomic execution is modelled by a context manager that rejects nested or
interrupted entry, mirroring SMART's "starts at the first instruction,
exits at the last, interrupts disabled" rule.
"""

from __future__ import annotations

import contextlib

from repro.arch.base import ArchitectureError, SecurityArchitecture
from repro.hw.clock import ReliableClock
from repro.hw.devices import MCUModel
from repro.hw.memory import (
    AccessContext,
    AccessPolicy,
    DeviceMemory,
    MemoryRegion,
    RegionKind,
)
from repro.smartplus.rom import RomImage, build_rom_image

#: Region names used by the SMART+ memory map.
ROM_CODE_REGION = "rom_code"
ROM_KEY_REGION = "rom_key"
APPLICATION_REGION = "application"
MEASUREMENT_BUFFER_REGION = "measurement_buffer"


class SmartPlusArchitecture(SecurityArchitecture):
    """SMART+ model implementing :class:`repro.arch.SecurityArchitecture`.

    Parameters
    ----------
    rom_image:
        The immutable ROM content (attestation code + key).
    application_size:
        Size in bytes of the application region that measurements cover.
        The paper's Figure 6 sweeps this from 0 to 10 KB.
    measurement_buffer_size:
        Size in bytes reserved for the rolling measurement buffer.
    cost_model:
        MSP430-class cycle cost model (defaults to the calibrated one).
    """

    def __init__(self, rom_image: RomImage, application_size: int = 10 * 1024,
                 measurement_buffer_size: int = 2048,
                 cost_model: MCUModel | None = None) -> None:
        if application_size <= 0:
            raise ValueError("application size must be positive")
        memory = self._build_memory_map(rom_image, application_size,
                                        measurement_buffer_size)
        super().__init__(
            memory=memory,
            cost_model=cost_model if cost_model is not None else MCUModel(),
            mac_name=rom_image.mac_name,
            measured_regions=(APPLICATION_REGION,),
        )
        self.rom_image = rom_image
        self.clock = ReliableClock(frequency_hz=self.cost_model.clock_hz)
        self._in_attestation = False
        self.interrupts_blocked = 0

    @staticmethod
    def _build_memory_map(rom_image: RomImage, application_size: int,
                          measurement_buffer_size: int) -> DeviceMemory:
        memory = DeviceMemory()
        cursor = 0
        memory.add_region(MemoryRegion(
            name=ROM_CODE_REGION, base=cursor, size=len(rom_image.code),
            kind=RegionKind.ROM, policy=AccessPolicy.rom_code(),
            data=bytearray(rom_image.code)))
        cursor += len(rom_image.code)
        memory.add_region(MemoryRegion(
            name=ROM_KEY_REGION, base=cursor, size=len(rom_image.key),
            kind=RegionKind.ROM, policy=AccessPolicy.secret_key(),
            data=bytearray(rom_image.key)))
        cursor += len(rom_image.key)
        memory.add_region(MemoryRegion(
            name=APPLICATION_REGION, base=cursor, size=application_size,
            kind=RegionKind.RAM, policy=AccessPolicy.open()))
        cursor += application_size
        memory.add_region(MemoryRegion(
            name=MEASUREMENT_BUFFER_REGION, base=cursor,
            size=measurement_buffer_size, kind=RegionKind.RAM,
            policy=AccessPolicy.open()))
        return memory

    # ------------------------------------------------------------------
    # SecurityArchitecture interface
    # ------------------------------------------------------------------
    def read_clock(self) -> float:
        """Read the hardware RROC."""
        return self.clock.read()

    def advance_clock(self, time_seconds: float) -> None:
        """Advance the RROC to the given simulation time."""
        self.clock.advance_to(time_seconds)

    def _read_key(self) -> bytes:
        if not self._in_attestation:
            raise ArchitectureError(
                "K may only be read from within the ROM attestation code")
        return self.memory.read_region(ROM_KEY_REGION,
                                       AccessContext.ATTESTATION)

    @contextlib.contextmanager
    def _protected_execution(self):
        if self._in_attestation:
            raise ArchitectureError(
                "attestation code is atomic; nested entry is impossible")
        self._in_attestation = True
        try:
            yield
        finally:
            self._in_attestation = False

    # ------------------------------------------------------------------
    # SMART+-specific behaviour
    # ------------------------------------------------------------------
    @property
    def in_attestation(self) -> bool:
        """True while the ROM attestation code is executing."""
        return self._in_attestation

    def request_interrupt(self) -> bool:
        """Model an interrupt request arriving at the MCU.

        SMART disables interrupts while the attestation code runs, so
        requests arriving during a measurement are blocked (and counted);
        outside attestation they would be delivered normally.
        """
        if self._in_attestation:
            self.interrupts_blocked += 1
            return False
        return True

    def load_application(self, image: bytes) -> None:
        """Load (or let malware overwrite) the application image."""
        region = self.memory.region(APPLICATION_REGION)
        if len(image) > region.size:
            raise ValueError(
                f"application image of {len(image)} bytes exceeds the "
                f"{region.size}-byte application region")
        padded = image + bytes(region.size - len(image))
        self.memory.write_region(APPLICATION_REGION, padded,
                                 context=AccessContext.NORMAL)


def build_smartplus_architecture(
        key: bytes, mac_name: str = "keyed-blake2s",
        variant: str = "erasmus", application_size: int = 10 * 1024,
        measurement_buffer_size: int = 2048,
        cost_model: MCUModel | None = None) -> SmartPlusArchitecture:
    """Convenience factory: build a SMART+ device ready for ERASMUS."""
    rom_image = build_rom_image(key, mac_name=mac_name, variant=variant)
    return SmartPlusArchitecture(
        rom_image=rom_image, application_size=application_size,
        measurement_buffer_size=measurement_buffer_size,
        cost_model=cost_model)
