#!/usr/bin/env python3
"""Swarm attestation of a highly mobile drone fleet (Section 6).

Thirty low-end devices move through an area following a random-waypoint
model.  We attest the swarm with three on-demand protocols (SEDA,
LISA-α, LISA-s) and with the ERASMUS collection protocol, at several
mobility speeds, and compare coverage and duration.  We also show the
staggered measurement schedule that keeps most of the swarm available
at any instant.

Run with:  python examples/mobile_swarm.py
"""

from repro.experiments import swarm_mobility
from repro.fleet import DeviceProfile, Fleet
from repro.hw.devices import MCUModel
from repro.swarm import StaggeredSchedule, build_swarm


def attestation_under_mobility() -> None:
    """Coverage and duration of each protocol as the swarm speeds up."""
    rows = swarm_mobility.run(device_count=30, speeds=(0.0, 2.0, 6.0),
                              repetitions=3)
    print(swarm_mobility.format_table(rows))

    fast = swarm_mobility.coverage_by_protocol(rows, speed=6.0)
    print("\nAt 6 m/s the on-demand protocols lose "
          f"{1 - fast['seda']:.0%} (SEDA) and {1 - fast['lisa-alpha']:.0%} "
          "(LISA-α) of the swarm, while the ERASMUS collection still "
          f"covers {fast['erasmus-collection']:.0%}.")


def staggered_availability() -> None:
    """Bound the fraction of the swarm measuring at any given time."""
    devices = build_swarm(30, memory_bytes=10 * 1024)
    measurement_runtime = MCUModel().measurement_runtime(10 * 1024,
                                                         "keyed-blake2s")
    schedule = StaggeredSchedule(measurement_interval=60.0,
                                 max_busy_fraction=0.25)
    worst = schedule.worst_case_busy_fraction(devices, measurement_runtime)
    print("\nStaggered self-measurement schedule:")
    print(f"  groups: {schedule.group_count}, measurement run-time "
          f"{measurement_runtime:.1f}s, T_M = 60s")
    print(f"  worst-case fraction of the swarm busy at once: {worst:.2f} "
          f"(bound: {schedule.max_busy_fraction})")
    offsets = schedule.phase_offsets(devices)
    sample = {name: offsets[name] for name in list(offsets)[:4]}
    print(f"  example phase offsets: {sample}")


def relayed_fleet_collection() -> None:
    """An end-to-end collection relayed hop by hop through a swarm tree."""
    profile = DeviceProfile.smartplus(firmware=b"drone-firmware-v1",
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=300.0,
                                      buffer_slots=8)
    fleet = Fleet.provision(profile, 30,
                            master_secret=b"swarm-master-secret",
                            transport="swarm-relay",
                            transport_options={"fanout": 3,
                                               "hop_latency": 0.01})
    fleet.run_until(300.0)
    reports = fleet.collect_all()
    deepest = max(fleet.transport.depth_of(device_id)
                  for device_id in fleet.device_ids())
    healthy = sum(1 for report in reports if not report.detected_infection())
    print("\nFleet collection over the swarm relay tree:")
    print(f"  30 devices, deepest device {deepest} hops from the gateway")
    print(f"  one batched round: {healthy}/30 healthy, "
          f"round-trip finished at t={fleet.now:.2f}s "
          f"(collection started at t=300s)")


def main() -> None:
    attestation_under_mobility()
    staggered_availability()
    relayed_fleet_collection()


if __name__ == "__main__":
    main()
