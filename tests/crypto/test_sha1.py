"""Tests for the from-scratch SHA-1 implementation."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha1 import Sha1, sha1_digest


KNOWN_VECTORS = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert sha1_digest(message).hex() == expected


def test_streaming_equals_one_shot():
    hasher = Sha1()
    hasher.update(b"foo")
    hasher.update(b"bar")
    assert hasher.digest() == sha1_digest(b"foobar")


def test_copy_is_independent():
    hasher = Sha1(b"base")
    clone = hasher.copy()
    clone.update(b"!")
    assert hasher.digest() == sha1_digest(b"base")
    assert clone.digest() == sha1_digest(b"base!")


def test_digest_size_and_block_size():
    assert Sha1.digest_size == 20
    assert Sha1.block_size == 64
    assert len(sha1_digest(b"data")) == 20


def test_rejects_non_bytes_input():
    with pytest.raises(TypeError):
        Sha1().update(12345)


def test_compression_counter():
    hasher = Sha1(b"y" * 130)
    assert hasher.compressions == 2


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=3000))
def test_matches_hashlib(data):
    assert sha1_digest(data) == hashlib.sha1(data).digest()
