"""Point-to-point links with latency, bandwidth and loss."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet


@dataclass
class Link:
    """A bidirectional link between two nodes.

    ``latency`` is the one-way propagation delay in seconds,
    ``bandwidth_bps`` the transmission rate in bits per second and
    ``loss_probability`` the independent per-packet drop probability.
    """

    node_a: str
    node_b: str
    latency: float = 0.001
    bandwidth_bps: float = 10_000_000.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")

    def endpoints(self) -> tuple[str, str]:
        """The two endpoint names, in construction order."""
        return (self.node_a, self.node_b)

    def connects(self, first: str, second: str) -> bool:
        """True when the link joins the two named nodes (either direction)."""
        return {first, second} == {self.node_a, self.node_b}

    def transfer_delay(self, packet: Packet) -> float:
        """Total delay for one packet: propagation plus serialization."""
        serialization = packet.size_bytes * 8 / self.bandwidth_bps
        return self.latency + serialization
