"""Durable verifier state: the ``repro.store`` persistence subsystem.

ERASMUS verifiers are meant to run unattended for the lifetime of a
deployment; the verifier's per-device record (enrollment key, healthy
digests, newest-seen timestamp) and its aggregate
:class:`~repro.fleet.FleetHealth` *are* the security state.  This
package makes that state durable behind one pluggable contract:

* :class:`StateStore` — save enrollments, journal verification
  reports, checkpoint the fleet aggregate, restore after a restart;
* :class:`MemoryStore` — process-local dicts (the zero-overhead
  default; behaviour identical to the pre-store verifier);
* :class:`JsonlStore` — atomic snapshot file plus write-ahead JSONL
  journal, crash-safe via ``os.replace``;
* :class:`SqliteStore` — single-file database with indexed per-device
  report history.

Resume a deployment with::

    from repro.fleet import FleetVerifier
    from repro.store import JsonlStore

    store = JsonlStore("verifier-state/")
    verifier = FleetVerifier.restore(config, store)
    verifier.collect_all(transport)   # picks up where the crash left off
"""

from repro.store.base import (
    RestoredState,
    SNAPSHOT_VERSION,
    StateStore,
    StoreError,
    apply_report_row,
    encode_snapshot,
    snapshot_document,
    state_from_snapshot,
)
from repro.store.jsonl import JsonlStore
from repro.store.memory import MemoryStore
from repro.store.sqlite import SqliteStore

__all__ = [
    "JsonlStore",
    "MemoryStore",
    "RestoredState",
    "SNAPSHOT_VERSION",
    "SqliteStore",
    "StateStore",
    "StoreError",
    "apply_report_row",
    "encode_snapshot",
    "snapshot_document",
    "state_from_snapshot",
]
