"""Benchmark: regenerate Figure 8 (i.MX6 measurement run-time)."""

import pytest

from repro.experiments import fig8_imx6_runtime


def test_fig8_series_regeneration(benchmark):
    rows = benchmark(fig8_imx6_runtime.run)
    at_10mb = {row["mac"]: row for row in rows if row["memory_mb"] == 10}
    for mac, expected in fig8_imx6_runtime.PAPER_RUNTIME_AT_10MB_S.items():
        assert at_10mb[mac]["erasmus_s"] == pytest.approx(expected, rel=0.05)
    # The keyed BLAKE2s curve sits below HMAC-SHA256 on this target.
    for size in fig8_imx6_runtime.DEFAULT_MEMORY_SIZES_MB:
        by_mac = {row["mac"]: row for row in rows if row["memory_mb"] == size}
        assert by_mac["keyed-blake2s"]["erasmus_s"] < \
            by_mac["hmac-sha256"]["erasmus_s"]
