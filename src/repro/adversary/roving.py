"""Schedule-aware mobile malware (the Section 3.5 adversary).

If measurements fire at a fixed, known ``T_M``, mobile malware can enter
right after one measurement and leave right before the next, staying on
the device for almost ``T_M`` while never being measured.  Irregular,
CSPRNG-driven intervals take that knowledge away: the best the malware
can do is gamble that its dwell window happens to avoid the (secret)
next measurement time.

:class:`ScheduleAwareMalware` quantifies this: it simulates visits that
start immediately after an observed measurement and computes the
probability of evading detection, for any scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.scheduler import MeasurementScheduler, RegularScheduler


@dataclass
class EvasionResult:
    """Outcome of an evasion simulation."""

    trials: int
    evasions: int

    @property
    def evasion_probability(self) -> float:
        """Fraction of visits that avoided every measurement."""
        return self.evasions / self.trials if self.trials else 0.0

    @property
    def detection_probability(self) -> float:
        """Complement of the evasion probability."""
        return 1.0 - self.evasion_probability


class ScheduleAwareMalware:
    """Mobile malware that knows the scheduling *policy* (but not the key).

    Its strategy: wait for a measurement to complete (observable, e.g.
    through a busy CPU), immediately infect, stay for ``dwell`` seconds,
    then leave.  Against a regular schedule with ``dwell < T_M`` this
    always evades; against an irregular schedule the next measurement
    time is unpredictable and evasion becomes a gamble.
    """

    def __init__(self, dwell: float, seed: int = 0) -> None:
        if dwell <= 0:
            raise ValueError("dwell time must be positive")
        self.dwell = dwell
        self._random = random.Random(seed)

    def _evades(self, entry_time: float, next_measurement: float) -> bool:
        """The evasion predicate: the visit ends before the next fire."""
        return next_measurement >= entry_time + self.dwell

    def evades_once(self, scheduler: MeasurementScheduler,
                    entry_time: float) -> bool:
        """Does one visit starting at ``entry_time`` avoid all measurements?

        ``entry_time`` is assumed to be the instant right after a
        measurement completed, which is the adversary's optimal entry
        point under any schedule.
        """
        return self._evades(entry_time, scheduler.next_time(entry_time))

    def simulate(self, scheduler: MeasurementScheduler,
                 trials: int = 1000) -> EvasionResult:
        """Estimate the evasion probability over many independent visits.

        Schedulers that expose a batched ``intervals(n)`` draw (the
        irregular CSPRNG scheduler) are sampled in one batch.  The
        batched draw is stream-identical to repeated ``next_interval``
        calls and ``next_time`` is ``entry + interval`` for such
        schedulers, so the result matches the trial-by-trial path bit
        for bit; a scheduler whose ``next_time`` deviates from that
        identity must not expose ``intervals``.
        """
        if trials <= 0:
            raise ValueError("at least one trial is required")
        entry_times = [self._random.uniform(0, 10_000.0)
                       for _ in range(trials)]
        draw_batch = getattr(scheduler, "intervals", None)
        if callable(draw_batch):
            evasions = sum(
                1 for entry_time, interval in zip(entry_times,
                                                  draw_batch(trials))
                if self._evades(entry_time, entry_time + interval))
        else:
            evasions = sum(1 for entry_time in entry_times
                           if self.evades_once(scheduler, entry_time))
        return EvasionResult(trials=trials, evasions=evasions)

    def best_case_dwell(self, scheduler: MeasurementScheduler) -> float:
        """Longest dwell that is *guaranteed* to evade the given scheduler.

        For a regular scheduler this is essentially ``T_M``; for an
        irregular scheduler it is the lower bound ``L`` of the interval
        distribution — the paper's argument for irregular intervals in a
        nutshell.
        """
        if isinstance(scheduler, RegularScheduler):
            return scheduler.measurement_interval
        lower = getattr(scheduler, "lower", None)
        if lower is not None:
            return float(lower)
        return scheduler.measurement_interval
