"""Experiment harnesses: one module per table / figure in the paper.

Every module exposes a ``run(...)`` function returning plain rows
(lists of dicts) and a ``format_table(rows)`` helper that renders the
same rows the paper reports.  The benchmark suite under ``benchmarks/``
wraps these harnesses with pytest-benchmark; EXPERIMENTS.md records the
paper-vs-measured comparison.

| Module | Paper artifact |
|---------------------------|--------------------------------------------|
| ``table1_codesize``       | Table 1 — attestation executable size      |
| ``table2_collection``     | Table 2 — collection-phase run-time        |
| ``fig6_msp430_runtime``   | Figure 6 — MSP430 measurement run-time     |
| ``fig8_imx6_runtime``     | Figure 8 — i.MX6 measurement run-time      |
| ``hwcost``                | Section 4.1 — registers / LUTs             |
| ``qoa_detection``         | Figure 1 / Section 3.1 — QoA & detection   |
| ``campaign_detection``    | Figure 1 on a real fleet (campaign engine) |
| ``irregular_intervals``   | Section 3.5 — schedule-aware malware       |
| ``availability``          | Section 5 — availability / lenient windows |
| ``swarm_mobility``        | Section 6 — swarm attestation & mobility   |
| ``swarm_mobility_fleet``  | Section 6 on real provers (mobile relay)   |
| ``fleet_collection``      | (repro-own) fleet collection throughput    |
"""

from repro.experiments import (
    availability,
    campaign_detection,
    fig6_msp430_runtime,
    fig8_imx6_runtime,
    fleet_collection,
    hwcost,
    irregular_intervals,
    qoa_detection,
    swarm_mobility,
    swarm_mobility_fleet,
    table1_codesize,
    table2_collection,
)

__all__ = [
    "availability",
    "campaign_detection",
    "fig6_msp430_runtime",
    "fig8_imx6_runtime",
    "fleet_collection",
    "hwcost",
    "irregular_intervals",
    "qoa_detection",
    "swarm_mobility",
    "swarm_mobility_fleet",
    "table1_codesize",
    "table2_collection",
]
