"""The ``Observability`` facade: one object that lights up the stack.

Construct one, hand it to :meth:`repro.fleet.Fleet.provision(obs=...)
<repro.fleet.Fleet.provision>`, and every layer reports in:

* the collection pipeline records per-device verify latency
  (per-shard histograms), per-round counters and wall-time histograms,
  and span traces (``trace_round`` → ``trace_shard`` →
  ``trace_device_verify``);
* the simulated network reports packet admissions and settlements
  through its existing listener hooks;
* the state store reports journal/checkpoint operation latency through
  a pure-interposition wrapper (:class:`ObservedStore`);
* SLO rules stream over the report fanout and fire live violation
  events (see :mod:`repro.obs.slo`), counted per rule.

Everything is served by :meth:`Observability.serve` — a stdlib HTTP
endpoint a Prometheus scraper (or ``curl``) can hit *mid-round* — and
the trace is exported with :meth:`Observability.write_trace`.

The disabled twin, :class:`NullObservability`, keeps every
instrumented code path behind a single ``obs.enabled`` branch: with it
(the default) a collection round runs the exact historical
instruction stream plus one attribute test per shard/report, which the
``benchmarks/test_obs_overhead.py`` guard pins to noise.
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_ROUND_BUCKETS,
    MetricsRegistry,
)
from repro.obs.server import MetricsServer
from repro.obs.slo import SloRule, SloViolation, StreamingHealthSink
from repro.obs.tracing import Span, SpanTracer, derive_child_seed

#: Quantiles every histogram family renders as ``_summary`` lines.
DEFAULT_SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Window (seconds, virtual clock) of the "recent health" instruments.
DEFAULT_RECENT_WINDOW = 300.0
from repro.store.base import StateStore


class ObservedStore(StateStore):
    """Time every store write without changing what the store does.

    A pure interposition (the wrapped backend is driven unmodified,
    mirroring the fault injectors' design), so it composes with any
    backend — and with the sharded verifier's internal locking, which
    wraps *around* this so the recorded latency is the backend's own,
    not lock-wait time.
    """

    def __init__(self, inner: StateStore, obs: "Observability") -> None:
        self.inner = inner
        self._ops = obs.store_ops
        self._seconds = obs.store_op_seconds

    def _timed(self, op: str, call, *args, **kwargs):
        started = _time.perf_counter()
        try:
            return call(*args, **kwargs)
        finally:
            self._ops.labels(op).inc()
            self._seconds.labels(op).observe(
                _time.perf_counter() - started)

    def save_enrollment(self, enrollment) -> None:
        self._timed("save_enrollment", self.inner.save_enrollment,
                    enrollment)

    def append_report(self, report) -> None:
        self._timed("append_report", self.inner.append_report, report)

    def checkpoint(self, health, last_collection_times,
                   rounds_completed: int = 0) -> None:
        self._timed("checkpoint", self.inner.checkpoint, health,
                    last_collection_times,
                    rounds_completed=rounds_completed)

    def has_enrollment(self, device_id: str) -> bool:
        return self.inner.has_enrollment(device_id)

    def restore_state(self):
        return self._timed("restore_state", self.inner.restore_state)

    def device_history(self, device_id: str, limit: Optional[int] = None):
        return self.inner.device_history(device_id, limit=limit)

    def state_rows(self):
        return self.inner.state_rows()

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()


class Observability:
    """Metrics registry + span tracer + SLO sink, wired as one object.

    Parameters:

    * ``seed`` keys the deterministic span ids (same seed → byte-
      identical traces for the same deployment);
    * ``slo_rules`` are streamed over the report fanout; each fired
      violation increments ``repro_slo_violations_total{rule=...}``
      and reaches every ``on_violation`` callback mid-round;
    * ``trace_devices=False`` keeps round/shard spans but drops the
      per-device rows (for very large fleets where the trace itself
      would dominate the artifact);
    * ``summary_quantiles`` renders every histogram's bucket-derived
      quantile estimates as ``_summary`` exposition lines;
    * ``recent_window`` (seconds, virtual clock) sizes the sliding
      windows and decay half-life of the "recent health" instruments
      (``repro_reports_recent`` etc.), which report the last window
      instead of cumulative-since-boot;
    * ``cell`` names this instance as one campaign cell's child
      observability — usually set through :meth:`for_cell`, not
      directly.
    """

    #: Instrumented code paths branch on this once per shard/report.
    enabled = True

    def __init__(self, seed: int = 0,
                 slo_rules: Iterable[SloRule] = (),
                 on_violation: Sequence[Callable[[SloViolation], None]]
                 = (),
                 trace_devices: bool = True,
                 summary_quantiles: Sequence[float]
                 = DEFAULT_SUMMARY_QUANTILES,
                 recent_window: float = DEFAULT_RECENT_WINDOW,
                 cell: Optional[str] = None) -> None:
        self.registry = MetricsRegistry(summary_quantiles=summary_quantiles)
        self.tracer = SpanTracer(seed=seed)
        self.trace_devices = trace_devices
        self.recent_window = recent_window
        self.cell = cell
        r = self.registry
        # -- collection pipeline ---------------------------------------
        self.reports_total = r.counter(
            "repro_reports_total",
            "Verification reports committed, by outcome status.",
            labels=("status",))
        self.rounds_total = r.counter(
            "repro_rounds_total", "Collection rounds completed.")
        self.requests_sent_total = r.counter(
            "repro_requests_sent_total",
            "Collection requests sent to devices.")
        self.responses_lost_total = r.counter(
            "repro_responses_lost_total",
            "Collection requests that never got a response.")
        self.stale_responses_total = r.counter(
            "repro_stale_responses_total",
            "Responses rejected for arriving after their round settled.")
        self.device_verify_seconds = r.histogram(
            "repro_device_verify_seconds",
            "Per-device verification latency, by shard worker.",
            labels=("shard",), buckets=DEFAULT_LATENCY_BUCKETS)
        self.round_wall_seconds = r.histogram(
            "repro_round_wall_seconds",
            "Wall-clock duration of completed collection rounds.",
            buckets=DEFAULT_ROUND_BUCKETS)
        self.rounds_inflight = r.gauge(
            "repro_rounds_inflight",
            "Collection rounds currently in flight.")
        self.devices_enrolled = r.gauge(
            "repro_devices_enrolled", "Devices enrolled with the verifier.")
        # -- recent health (windowed / decayed, virtual clock) ----------
        self.reports_recent = r.window_counter(
            "repro_reports_recent",
            "Reports committed within the trailing window, by status.",
            labels=("status",), window=recent_window)
        self.rounds_recent = r.window_counter(
            "repro_rounds_recent",
            "Collection rounds completed within the trailing window.",
            window=recent_window)
        self.responses_lost_recent = r.window_counter(
            "repro_responses_lost_recent",
            "Responses lost within the trailing window.",
            window=recent_window)
        self.round_activity = r.decay_gauge(
            "repro_round_activity",
            "Exponentially-decayed round completions (recency-weighted "
            "round rate indicator).", half_life=recent_window)
        # -- network ----------------------------------------------------
        self.packets_admitted_total = r.counter(
            "repro_net_packets_admitted_total",
            "Packets admitted onto the simulated network.")
        self.packets_settled_total = r.counter(
            "repro_net_packets_settled_total",
            "Packets settled, by outcome (delivered/dropped).",
            labels=("outcome",))
        # -- store ------------------------------------------------------
        self.store_ops = r.counter(
            "repro_store_ops_total",
            "State-store operations, by kind.", labels=("op",))
        self.store_op_seconds = r.histogram(
            "repro_store_op_seconds",
            "State-store operation latency, by kind.",
            labels=("op",), buckets=DEFAULT_LATENCY_BUCKETS)
        # -- SLO --------------------------------------------------------
        self.slo_violations_total = r.counter(
            "repro_slo_violations_total",
            "SLO violation events fired, by rule.", labels=("rule",))
        # -- campaign ---------------------------------------------------
        self.campaign_cells_total = r.counter(
            "repro_campaign_cells_total", "Campaign scenario cells run.")
        self.campaign_cell_seconds = r.histogram(
            "repro_campaign_cell_seconds",
            "Wall-clock duration of campaign cells.",
            buckets=DEFAULT_ROUND_BUCKETS)
        self.campaign_rounds_skipped_total = r.counter(
            "repro_campaign_rounds_skipped_total",
            "Campaign collection rounds skipped for verifier downtime.")
        self.campaign_rounds_recovered_total = r.counter(
            "repro_campaign_rounds_recovered_total",
            "Campaign rounds recovered via FleetVerifier.restore.")
        # -- worker pool (multi-process collection) ----------------------
        self.worker_queue_depth = r.gauge(
            "repro_worker_queue_depth",
            "Verification tasks in flight per pool worker.",
            labels=("worker",))
        self.worker_task_seconds = r.histogram(
            "repro_worker_task_seconds",
            "Round-trip latency of worker-pool verification tasks "
            "(dispatch to merged result), by worker.",
            labels=("worker",), buckets=DEFAULT_LATENCY_BUCKETS)
        self.worker_restarts_total = r.counter(
            "repro_worker_restarts_total",
            "Pool workers respawned after a crash, by worker slot.",
            labels=("worker",))

        def _count_violation(violation: SloViolation) -> None:
            self.slo_violations_total.labels(violation.rule).inc()

        rules = list(slo_rules)
        self._slo_sink: Optional[StreamingHealthSink] = None
        if rules:
            self._slo_sink = StreamingHealthSink(
                rules, on_violation=[_count_violation, *on_violation])
        self._status_children: dict = {}
        self._server: Optional[MetricsServer] = None
        self._attached_networks: set = set()
        self._round_listeners: List[Callable[[object], None]] = []
        self._exporters: List[object] = []

    # ------------------------------------------------------------------
    # Wiring (done once by Fleet.provision)
    # ------------------------------------------------------------------
    def bind_engine(self, engine) -> None:
        """Stamp spans, SLO events and windowed metrics with this
        engine's virtual clock."""
        clock = lambda: engine.now  # noqa: E731 (one-expression clock)
        self.tracer.bind_clock(clock)
        self.registry.bind_clock(clock)
        if self._slo_sink is not None:
            self._slo_sink.bind_clock(clock)

    def attach_transport(self, transport) -> None:
        """Hook the transport's packet-settlement events (idempotent).

        Transports without a packet network (in-process) have nothing
        to hook and pass through silently; injector wrappers are
        unwrapped via their ``inner`` chain.
        """
        seen = 0
        while transport is not None and seen < 8:
            network = getattr(transport, "network", None)
            if network is not None and id(network) not in \
                    self._attached_networks:
                self._attached_networks.add(id(network))
                admitted = self.packets_admitted_total
                settled = self.packets_settled_total
                delivered = settled.labels("delivered")
                dropped = settled.labels("dropped")

                def _on_admitted(_packet) -> None:
                    admitted.inc()

                def _on_settled(_packet, outcome: str) -> None:
                    if outcome == "delivered":
                        delivered.inc()
                    elif outcome == "dropped":
                        dropped.inc()
                    else:
                        settled.labels(outcome).inc()

                network.on_packet_admitted.append(_on_admitted)
                network.on_packet_settled.append(_on_settled)
            transport = getattr(transport, "inner", None)
            seen += 1

    def wrap_store(self, store: Optional[StateStore]
                   ) -> Optional[StateStore]:
        """The store behind a latency-recording interposition."""
        if store is None:
            return None
        return ObservedStore(store, self)

    def health_sink(self) -> Optional[StreamingHealthSink]:
        """The streaming SLO sink (``None`` when no rules configured)."""
        return self._slo_sink

    @property
    def violations(self) -> List[SloViolation]:
        """All SLO violations fired so far (empty without rules)."""
        return [] if self._slo_sink is None else self._slo_sink.violations

    # ------------------------------------------------------------------
    # Hot-path hooks (called behind ``obs.enabled`` branches)
    # ------------------------------------------------------------------
    def trace_round(self, round_index: int, worker: str = "0",
                    **attrs: object):
        """Span context for one collection round on one worker."""
        return self.tracer.trace_round(round_index, worker=worker, **attrs)

    def trace_shard(self, round_span: Span, shard_index: int,
                    **attrs: object):
        """Span context for one shard of an open round."""
        return self.tracer.trace_shard(round_span, shard_index, **attrs)

    def verify_observer(self, shard_label: str):
        """The verify-latency histogram child for one shard worker."""
        return self.device_verify_seconds.labels(shard_label)

    def record_device_verify(self, shard_span: Span, device_id: str,
                             status: str) -> None:
        """One device verified under an open shard span (lean append)."""
        if self.trace_devices:
            self.tracer.record_device_verify(shard_span, device_id, status)

    def report_committed(self, report) -> None:
        """Count one committed report by status (cumulative + recent)."""
        status = report.status.value
        pair = self._status_children.get(status)
        if pair is None:
            pair = (self.reports_total.labels(status),
                    self.reports_recent.labels(status))
            self._status_children[status] = pair
        pair[0].inc()
        pair[1].inc()

    def round_finished(self, stats) -> None:
        """Fold one finished round's mechanics into the counters."""
        self.rounds_total.inc()
        self.rounds_recent.inc()
        self.round_activity.mark()
        self.requests_sent_total.inc(stats.requests_sent)
        if stats.responses_lost:
            self.responses_lost_total.inc(stats.responses_lost)
            self.responses_lost_recent.inc(stats.responses_lost)
        if stats.stale_responses_rejected:
            self.stale_responses_total.inc(stats.stale_responses_rejected)
        self.round_wall_seconds.observe(stats.wall_seconds)
        for listener in self._round_listeners:
            listener(stats)

    def add_round_listener(self, listener: Callable[[object], None]
                           ) -> None:
        """Call ``listener(stats)`` at every round edge, after the
        round's counters have been folded in.

        Listeners run on the round's thread and must stay cheap and
        non-raising (the remote-write exporter's listener, for example,
        only renders a snapshot and appends it to a bounded buffer).
        """
        self._round_listeners.append(listener)

    def cell_finished(self, wall_seconds: float, skipped_rounds: int = 0,
                      recovered_rounds: int = 0) -> None:
        """Fold one finished campaign cell into the counters."""
        self.campaign_cells_total.inc()
        self.campaign_cell_seconds.observe(wall_seconds)
        if skipped_rounds:
            self.campaign_rounds_skipped_total.inc(skipped_rounds)
        if recovered_rounds:
            self.campaign_rounds_recovered_total.inc(recovered_rounds)

    # ------------------------------------------------------------------
    # Campaign cells
    # ------------------------------------------------------------------
    def for_cell(self, cell: str) -> "Observability":
        """A child ``Observability`` for one campaign cell.

        The child gets its own registry and its own tracer, seeded by
        :func:`~repro.obs.tracing.derive_child_seed` from this
        instance's seed and the cell label — so concurrent cells never
        interleave spans in one shared tracer, and a re-run campaign
        reproduces every cell's trace byte for byte.  Fold the child's
        numbers back with :meth:`absorb_cell` once the cell finishes.
        """
        return Observability(
            seed=derive_child_seed(self.tracer.seed, cell),
            trace_devices=self.trace_devices,
            summary_quantiles=self.registry.summary_quantiles,
            recent_window=self.recent_window,
            cell=cell)

    def absorb_cell(self, child: "Observability") -> None:
        """Aggregate one finished cell's metrics into this registry.

        Absorbed families land in the ``repro_cell_*`` namespace with
        a ``cell`` label (see :meth:`MetricsRegistry.absorb
        <repro.obs.metrics.MetricsRegistry.absorb>`), so a campaign
        exposition carries per-cell series next to the parent's own.
        Absorb each cell exactly once.
        """
        self.registry.absorb(child.registry, "cell",
                             child.cell if child.cell is not None
                             else "cell")

    # ------------------------------------------------------------------
    # Serving and export
    # ------------------------------------------------------------------
    def serve(self, host: str = "127.0.0.1", port: int = 0
              ) -> MetricsServer:
        """Start (or return) the HTTP scrape endpoint."""
        if self._server is None or self._server.closed:
            self._server = MetricsServer(self.registry, host=host,
                                         port=port, health=self._slo_sink)
        return self._server

    def render_metrics(self) -> str:
        """The current Prometheus text exposition."""
        return self.registry.render()

    def write_trace(self, path: str) -> int:
        """Export the span trace as JSONL; returns the row count."""
        return self.tracer.write_jsonl(path)

    def remote_write(self, endpoint: str, **kwargs):
        """Start a push exporter POSTing snapshots at every round edge.

        Builds a :class:`~repro.obs.export.RemoteWriteExporter` whose
        self-metrics register in this registry, attaches it to the
        round-edge hook, and tracks it so :meth:`close` stops it.
        Keyword arguments pass through to the exporter (``max_buffer``,
        ``max_retries``, ``backoff``, ``timeout``, ``post`` ...).
        """
        from repro.obs.export import RemoteWriteExporter
        exporter = RemoteWriteExporter(endpoint, registry=self.registry,
                                       **kwargs)
        exporter.attach(self)
        self._exporters.append(exporter)
        return exporter

    def report(self, title: str = "trace"):
        """Analyze this instance's trace + exposition as an
        :class:`~repro.obs.report.ObsReport`."""
        from repro.obs.report import ObsReport
        return ObsReport.from_observability(self, title=title)

    def close(self) -> None:
        """Stop the scrape endpoint and any push exporters (idempotent)."""
        if self._server is not None:
            self._server.close()
        for exporter in self._exporters:
            exporter.close()


class NullObservability(Observability):
    """The disabled default: every hook is an inert no-op.

    Instrumented code paths test ``obs.enabled`` exactly once per
    shard/report and skip the hooks entirely, so a fleet provisioned
    without observability runs the historical instruction stream; the
    methods below exist only so direct calls are harmless.
    """

    enabled = False
    cell = None

    def __init__(self) -> None:  # noqa: D401 — deliberately builds nothing
        # No registry, tracer or sink: the null object must cost nothing
        # to construct and nothing to carry.
        self._server = None

    def bind_engine(self, engine) -> None:
        del engine

    def attach_transport(self, transport) -> None:
        del transport

    def wrap_store(self, store):
        return store

    def health_sink(self):
        return None

    @property
    def violations(self):
        return []

    def trace_round(self, round_index: int, worker: str = "0",
                    **attrs: object):
        del round_index, worker, attrs
        return nullcontext()

    def trace_shard(self, round_span, shard_index: int, **attrs: object):
        del round_span, shard_index, attrs
        return nullcontext()

    def verify_observer(self, shard_label: str):
        del shard_label
        return None

    def record_device_verify(self, shard_span, device_id, status) -> None:
        del shard_span, device_id, status

    def report_committed(self, report) -> None:
        del report

    def round_finished(self, stats) -> None:
        del stats

    def cell_finished(self, wall_seconds: float, skipped_rounds: int = 0,
                      recovered_rounds: int = 0) -> None:
        del wall_seconds, skipped_rounds, recovered_rounds

    def add_round_listener(self, listener) -> None:
        del listener

    def for_cell(self, cell: str) -> "NullObservability":
        # A null parent begets null cells: the campaign stays dark.
        del cell
        return self

    def absorb_cell(self, child) -> None:
        del child

    def remote_write(self, endpoint: str, **kwargs):
        raise RuntimeError(
            "NullObservability has nothing to export; construct a real "
            "Observability() and pass it to Fleet.provision(obs=...)")

    def report(self, title: str = "trace"):
        raise RuntimeError(
            "NullObservability records nothing to report on; construct "
            "a real Observability() first")

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        raise RuntimeError(
            "NullObservability has nothing to serve; construct a real "
            "Observability() and pass it to Fleet.provision(obs=...)")

    def render_metrics(self) -> str:
        return ""

    def write_trace(self, path: str) -> int:
        del path
        return 0

    def close(self) -> None:
        pass


#: Shared inert instance used as the default everywhere ``obs=`` is
#: accepted; callers must treat it as immutable.
NULL_OBSERVABILITY = NullObservability()
