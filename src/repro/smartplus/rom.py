"""ROM image construction for the SMART+ model.

SMART+ places the attestation executable and the key ``K`` in ROM.  The
paper's Table 1 reports the executable size for each MAC choice; we use
the :class:`repro.hw.codesize.CodeSizeModel` to size the code region and
fill it with deterministic pseudo-content so that the ROM region has a
stable, verifiable digest (used by tests and by the secure-boot model in
HYDRA's counterpart).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.sha256 import sha256_digest
from repro.hw.codesize import CodeSizeModel


@dataclass(frozen=True)
class RomImage:
    """An immutable ROM image: attestation code bytes plus the key ``K``."""

    code: bytes
    key: bytes
    mac_name: str
    variant: str

    @property
    def code_size(self) -> int:
        """Size of the attestation executable in bytes."""
        return len(self.code)

    def code_digest(self) -> bytes:
        """SHA-256 digest of the attestation code (its identity)."""
        return sha256_digest(self.code)


def build_rom_image(key: bytes, mac_name: str = "keyed-blake2s",
                    variant: str = "erasmus",
                    code_size_model: CodeSizeModel | None = None) -> RomImage:
    """Build a deterministic ROM image for the given MAC and variant.

    The code bytes are synthetic (a repeating pattern derived from the
    configuration) but their *size* follows the paper's Table 1 via the
    code-size model, so ROM-capacity reasoning stays faithful.
    """
    if not key:
        raise ValueError("the attestation key K must be non-empty")
    model = code_size_model if code_size_model is not None else CodeSizeModel()
    size_bytes = model.report("smart+", variant, mac_name).total_bytes
    seed = f"smart+/{variant}/{mac_name}".encode()
    pattern = sha256_digest(seed)
    repetitions = size_bytes // len(pattern) + 1
    code = (pattern * repetitions)[:size_bytes]
    return RomImage(code=code, key=bytes(key), mac_name=mac_name.lower(),
                    variant=variant.lower())
