"""Stateless measurement-history verification.

This module is the policy-and-crypto half of the verifier role, split
out so the same checks can back any enrollment store:

* :class:`ErasmusVerifier` (:mod:`repro.core.verifier`) keeps the
  original one-object API for single-device walkthroughs;
* :class:`repro.fleet.FleetVerifier` runs the same core over thousands
  of enrolled provers with batched collections.

:class:`VerificationCore` holds only deployment policy (the config, the
schedule tolerance, the missing-measurement allowance) and the resolved
crypto primitives.  Per-device state — the shared key, the known-good
digests, the newest timestamp already seen — is passed *into* every
call, so a single core instance can verify any number of devices from
any number of threads concurrently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.base import StateStore

from repro.arch.base import encode_timestamp
from repro.core.config import ErasmusConfig
from repro.core.measurement import Measurement
from repro.core.protocol import (
    CollectRequest,
    CollectResponse,
    OnDemandRequest,
    OnDemandResponse,
)
from repro.crypto.backend import resolve_backend
from repro.crypto.mac import get_mac


class DeviceStatus(enum.Enum):
    """Overall outcome of verifying one collection."""

    HEALTHY = "healthy"
    INFECTED = "infected"
    TAMPERED = "tampered"
    NO_DATA = "no_data"


class DuplicateEnrollmentError(ValueError):
    """A device was enrolled twice without an explicit re-enrollment.

    Silently replacing an enrollment would discard the device's
    last-seen timestamp and whitelisted digests — on a fleet verifier
    that is almost always an operator mistake, so it must be opted into
    with ``re_enroll=True``.
    """


@dataclass(frozen=True)
class MeasurementVerdict:
    """Verdict on a single received measurement."""

    measurement: Measurement
    authentic: bool
    healthy: bool
    from_future: bool = False

    @property
    def acceptable(self) -> bool:
        """Authentic, plausible and matching a known-good state."""
        return self.authentic and self.healthy and not self.from_future


@dataclass
class VerificationReport:
    """Outcome of verifying one collection from one prover.

    A report normally carries its per-measurement verdicts; a report
    restored from a persisted row (:meth:`from_row`) carries none, so
    the derived counters fall back to the ``restored`` row written by
    :meth:`to_row` — :meth:`measurement_count`,
    :meth:`infected_timestamps` and :meth:`newest_timestamp` stay
    correct either way, which is what lets a
    :class:`repro.store.StateStore` replay reports into a
    :class:`repro.fleet.FleetHealth` aggregate after a restart.
    """

    device_id: str
    collection_time: float
    status: DeviceStatus
    verdicts: List[MeasurementVerdict] = field(default_factory=list)
    anomalies: List[str] = field(default_factory=list)
    freshness: Optional[float] = None
    missing_intervals: int = 0
    restored: Optional[Dict[str, object]] = field(
        default=None, repr=False, compare=False)

    @property
    def measurement_count(self) -> int:
        """Number of measurements received in this collection."""
        if self.verdicts or self.restored is None:
            return len(self.verdicts)
        return int(self.restored.get("measurements", 0))

    @property
    def infected_timestamps(self) -> List[float]:
        """Timestamps at which the prover's state was not a known-good one."""
        if self.verdicts or self.restored is None:
            return [verdict.measurement.timestamp
                    for verdict in self.verdicts
                    if verdict.authentic and not verdict.healthy]
        return [float(t) for t in
                self.restored.get("infected_timestamps", ())]

    @property
    def newest_timestamp(self) -> Optional[float]:
        """Newest measurement timestamp carried by this collection."""
        if self.verdicts:
            return max(verdict.measurement.timestamp
                       for verdict in self.verdicts)
        if self.restored is not None:
            value = self.restored.get("newest_timestamp")
            return None if value is None else float(value)
        return None

    def to_row(self) -> Dict[str, object]:
        """Flatten into a stable, JSON-friendly row.

        The row is the canonical persisted form: it is what
        :class:`repro.fleet.JsonlSink` writes, what every
        :class:`repro.store.StateStore` journals, and what
        :meth:`from_row` reverses.  All keys are plain JSON types.
        """
        return {
            "device_id": self.device_id,
            "collection_time": self.collection_time,
            "status": self.status.value,
            "measurements": self.measurement_count,
            "freshness": self.freshness,
            "missing_intervals": self.missing_intervals,
            "anomalies": list(self.anomalies),
            "infected_timestamps": self.infected_timestamps,
            "newest_timestamp": self.newest_timestamp,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "VerificationReport":
        """Rebuild a (verdict-free) report from its persisted row."""
        freshness = row.get("freshness")
        return cls(
            device_id=str(row["device_id"]),
            collection_time=float(row["collection_time"]),
            status=DeviceStatus(row["status"]),
            anomalies=[str(item) for item in row.get("anomalies", ())],
            freshness=None if freshness is None else float(freshness),
            missing_intervals=int(row.get("missing_intervals", 0)),
            restored=dict(row))

    def detected_infection(self) -> bool:
        """True when this collection exposed malware presence or tampering."""
        return self.status in (DeviceStatus.INFECTED, DeviceStatus.TAMPERED)

    @property
    def freshness_label(self) -> str:
        """Freshness rendered for humans (``n/a`` for empty collections)."""
        return "n/a" if self.freshness is None else f"{self.freshness:.0f}s"

    def summary(self) -> str:
        """One-line human-readable account of this collection."""
        text = (f"{self.device_id}: {self.status.value}, "
                f"{self.measurement_count} record(s), "
                f"freshness {self.freshness_label}")
        if self.missing_intervals:
            text += f", {self.missing_intervals} missing"
        if self.anomalies:
            text += f" ({'; '.join(self.anomalies)})"
        return text

    def __repr__(self) -> str:
        return (f"VerificationReport(device_id={self.device_id!r}, "
                f"status={self.status.value!r}, "
                f"records={self.measurement_count}, "
                f"anomalies={len(self.anomalies)})")


@dataclass(frozen=True)
class Enrollment:
    """The per-device facts a verification needs: key and healthy states.

    ``last_seen`` is the newest timestamp accepted in an earlier
    collection — records at or before it are treated as redundant
    re-collections rather than schedule gaps (Section 3.1).
    """

    device_id: str
    key: bytes
    healthy_digests: frozenset[bytes]
    last_seen: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("the shared key must be non-empty")

    @classmethod
    def create(cls, device_id: str, key: bytes,
               healthy_digests: Iterable[bytes],
               last_seen: Optional[float] = None) -> "Enrollment":
        """Normalize raw key material into an enrollment record."""
        return cls(device_id=device_id, key=bytes(key),
                   healthy_digests=frozenset(bytes(d)
                                             for d in healthy_digests),
                   last_seen=last_seen)

    def advanced(self, last_seen: float) -> "Enrollment":
        """Copy with an updated newest-seen timestamp."""
        return Enrollment(device_id=self.device_id, key=self.key,
                          healthy_digests=self.healthy_digests,
                          last_seen=last_seen)

    def with_digest(self, digest: bytes) -> "Enrollment":
        """Copy whitelisting one more software state (e.g. an update)."""
        return Enrollment(device_id=self.device_id, key=self.key,
                          healthy_digests=self.healthy_digests |
                          {bytes(digest)},
                          last_seen=self.last_seen)

    def to_row(self) -> Dict[str, object]:
        """Flatten into a stable, JSON-friendly row.

        Byte fields are hex-encoded and the digest set is sorted, so
        equal enrollments always serialize to identical rows — the
        property :class:`repro.store.StateStore` snapshots rely on.
        """
        return {
            "device_id": self.device_id,
            "key": self.key.hex(),
            "healthy_digests": sorted(digest.hex()
                                      for digest in self.healthy_digests),
            "last_seen": self.last_seen,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "Enrollment":
        """Rebuild an enrollment from its persisted row."""
        last_seen = row.get("last_seen")
        return cls(
            device_id=str(row["device_id"]),
            key=bytes.fromhex(str(row["key"])),
            healthy_digests=frozenset(
                bytes.fromhex(str(digest))
                for digest in row.get("healthy_digests", ())),
            last_seen=None if last_seen is None else float(last_seen))


class VerificationCore:
    """Stateless verification of ERASMUS measurement histories.

    ``allowed_missing`` is the Section 5 policy knob: how many expected
    measurements may be missing from a collection (e.g. legitimately
    aborted because of time-critical tasks) before the verifier treats
    the absence as tampering.  The default of zero is the strict policy.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0) -> None:
        if not 0 <= schedule_tolerance < 1:
            raise ValueError("schedule tolerance must be in [0, 1)")
        if allowed_missing < 0:
            raise ValueError("allowed_missing must be non-negative")
        self.config = config
        self.schedule_tolerance = schedule_tolerance
        self.allowed_missing = allowed_missing
        self.mac_algorithm = get_mac(config.mac_name)
        self.crypto_backend = resolve_backend(config.crypto_backend)

    # ------------------------------------------------------------------
    # Request authentication material
    # ------------------------------------------------------------------
    def request_tag(self, key: bytes, request_time: float) -> bytes:
        """``MAC_K(t_req)`` for an authenticated ERASMUS+OD request."""
        return self.mac_algorithm.mac(key, encode_timestamp(request_time),
                                      backend=self.crypto_backend)

    # ------------------------------------------------------------------
    # Per-measurement checks
    # ------------------------------------------------------------------
    def verdict(self, enrollment: Enrollment, measurement: Measurement,
                collection_time: float) -> MeasurementVerdict:
        """Judge one measurement: MAC, known-good digest, plausibility."""
        authentic = self.mac_algorithm.verify(
            enrollment.key, measurement.authenticated_payload(),
            measurement.tag, backend=self.crypto_backend)
        # Whitelist membership over public known-good software states;
        # authenticity is decided by the MAC check above, not by this.
        # statics: ok(constant-time)
        healthy = measurement.digest in enrollment.healthy_digests
        from_future = measurement.timestamp > collection_time + 1e-6
        return MeasurementVerdict(measurement=measurement, authentic=authentic,
                                  healthy=healthy, from_future=from_future)

    def _expected_interval(self) -> float:
        """The schedule spacing gaps are judged against (``U`` if irregular)."""
        if self.config.irregular_upper is not None:
            return self.config.irregular_upper
        return self.config.measurement_interval

    def check_schedule(self, timestamps: List[float],
                       last_seen: Optional[float]) -> tuple[int, List[str]]:
        """Check timestamp spacing against the expected schedule.

        Returns the number of missing measurement intervals and a list of
        anomaly descriptions (duplicates within one response, oversized
        gaps).  Records already seen in an earlier collection are
        ignored for gap purposes — re-collecting them is merely
        redundant (Section 3.1), not an attack.  For irregular schedules
        the upper bound ``U`` plays the role of the expected interval.
        """
        anomalies: List[str] = []
        expected = self._expected_interval()
        allowed_gap = expected * (1 + self.schedule_tolerance)
        ordered = sorted(timestamps)

        duplicates = sum(1 for first, second in zip(ordered, ordered[1:])
                         if second - first <= 1e-9)
        if duplicates:
            anomalies.append(
                f"{duplicates} duplicate timestamp(s) within one collection")

        new_only = ordered
        if last_seen is not None:
            new_only = [timestamp for timestamp in ordered
                        if timestamp > last_seen + 1e-9]
        missing = 0
        previous = last_seen
        for timestamp in new_only:
            if previous is not None:
                gap = timestamp - previous
                if gap > allowed_gap:
                    skipped = int(gap / expected) - 1
                    missing += max(1, skipped)
            previous = timestamp
        return missing, anomalies

    # ------------------------------------------------------------------
    # Whole-collection verification
    # ------------------------------------------------------------------
    def verify_measurements(self, enrollment: Enrollment,
                            measurements: List[Measurement],
                            collection_time: float,
                            expect_nonempty: bool = True
                            ) -> VerificationReport:
        """Verify one measurement history against the enrollment facts.

        This is the pure core of ``verify_collection``: no internal
        state is read or written, so callers own all bookkeeping (report
        history, newest-seen timestamps).
        """
        report = VerificationReport(device_id=enrollment.device_id,
                                    collection_time=collection_time,
                                    status=DeviceStatus.HEALTHY)
        if not measurements:
            report.status = DeviceStatus.NO_DATA if not expect_nonempty \
                else DeviceStatus.TAMPERED
            if expect_nonempty:
                report.anomalies.append("prover returned no measurements")
            return report

        for measurement in measurements:
            report.verdicts.append(
                self.verdict(enrollment, measurement, collection_time))
        return self._assess(report, enrollment, collection_time)

    def _assess(self, report: VerificationReport, enrollment: Enrollment,
                collection_time: float) -> VerificationReport:
        """Judge a report whose per-measurement verdicts are filled in.

        Shared by the reference path (:meth:`verify_measurements`) and
        the precompiled fast path (:class:`DeviceJudge`), so the two can
        only ever differ in how the verdicts were computed — which the
        equivalence tests pin to "not at all".
        """
        timestamps = [verdict.measurement.timestamp
                      for verdict in report.verdicts]
        report.missing_intervals, schedule_anomalies = self.check_schedule(
            sorted(timestamps), enrollment.last_seen)
        report.anomalies.extend(schedule_anomalies)
        report.freshness = collection_time - max(timestamps)

        # Stale tail: the newest record should not be older than one
        # (tolerated) measurement interval — otherwise the most recent
        # measurements were deleted or silently skipped.
        expected_interval = self._expected_interval()
        allowed_age = expected_interval * (1 + self.schedule_tolerance)
        if report.freshness > allowed_age:
            report.missing_intervals += max(
                1, int(report.freshness / expected_interval) - 1)

        forged = [verdict for verdict in report.verdicts
                  if not verdict.authentic]
        future = [verdict for verdict in report.verdicts if verdict.from_future]
        infected = [verdict for verdict in report.verdicts
                    if verdict.authentic and not verdict.healthy]

        if forged or future or schedule_anomalies:
            report.status = DeviceStatus.TAMPERED
            if forged:
                report.anomalies.append(
                    f"{len(forged)} measurement(s) failed MAC verification")
            if future:
                report.anomalies.append(
                    f"{len(future)} measurement(s) are timestamped in the future")
        elif infected:
            report.status = DeviceStatus.INFECTED
        elif report.missing_intervals > self.allowed_missing:
            # Gaps without other anomalies: measurements were deleted or
            # skipped beyond what the deployment policy tolerates.  The
            # paper treats unexplained absence as self-incriminating.
            report.status = DeviceStatus.TAMPERED
            report.anomalies.append(
                f"{report.missing_intervals} expected measurement(s) missing "
                f"(policy allows {self.allowed_missing})")
        return report

    def verify_ondemand(self, enrollment: Enrollment,
                        request: OnDemandRequest,
                        response: OnDemandResponse,
                        collection_time: float) -> VerificationReport:
        """Verify an ERASMUS+OD response (Figure 4, verifier side).

        In addition to the history checks, the fresh measurement ``M_0``
        must exist and must have been computed at or after the request
        time (otherwise the prover replayed an old record).
        """
        measurements = list(response.measurements)
        if response.fresh is not None:
            measurements = [response.fresh] + measurements
        report = self.verify_measurements(enrollment, measurements,
                                          collection_time,
                                          expect_nonempty=True)
        if response.fresh is None:
            report.anomalies.append("prover returned no fresh measurement")
            report.status = DeviceStatus.TAMPERED
        elif response.fresh.timestamp + 1e-6 < request.request_time:
            report.anomalies.append(
                "fresh measurement is older than the request")
            report.status = DeviceStatus.TAMPERED
        return report

    @staticmethod
    def advance_last_seen(report: VerificationReport,
                          last_seen: Optional[float]) -> Optional[float]:
        """The newest-seen timestamp after accepting ``report``."""
        newest = report.newest_timestamp
        return last_seen if newest is None else newest

    def device_judge(self, key: bytes) -> "DeviceJudge":
        """Precompile the per-device fast verification path.

        Binds the MAC construction and the device key into one closure
        through the resolved crypto backend, so a collection pipeline
        verifying thousands of measurements under the same key skips
        the per-call registry and backend dispatch that
        :meth:`verdict` pays.  The reference path stays as the ground
        truth; both produce identical reports.
        """
        return DeviceJudge(self, key)


class DeviceJudge:
    """Fast verification of one device's collections under a fixed key.

    The policy checks are the shared :meth:`VerificationCore._assess`;
    only the per-measurement verdict loop is specialized — MAC closure
    with the key pre-bound, provider-native tag comparison, and the
    digest whitelist consulted without attribute chasing.  Judges are
    cheap to build and safe to reuse across rounds as long as the
    device keeps the same key (re-enrollment must discard the judge).
    """

    __slots__ = ("core", "key", "_mac", "_compare")

    def __init__(self, core: VerificationCore, key: bytes) -> None:
        self.core = core
        self.key = key
        backend = core.crypto_backend
        algorithm = core.mac_algorithm
        try:
            self._mac = backend.mac_function(algorithm.name, key)
        except ValueError:
            # A MAC registered via register_mac() that the backend has
            # no native construction for (e.g. a custom/truncated MAC):
            # fall back to the algorithm's own dispatch, which knows
            # its reference mac_fn — slower, but every enrolled config
            # that verifies on the reference path verifies here too.
            self._mac = lambda data: algorithm.mac(key, data,
                                                   backend=backend)
        self._compare = backend.compare_digests

    def verify_measurements(self, enrollment: Enrollment,
                            measurements: List[Measurement],
                            collection_time: float,
                            expect_nonempty: bool = True
                            ) -> VerificationReport:
        """Drop-in fast equivalent of ``core.verify_measurements``."""
        report = VerificationReport(device_id=enrollment.device_id,
                                    collection_time=collection_time,
                                    status=DeviceStatus.HEALTHY)
        if not measurements:
            report.status = DeviceStatus.NO_DATA if not expect_nonempty \
                else DeviceStatus.TAMPERED
            if expect_nonempty:
                report.anomalies.append("prover returned no measurements")
            return report
        mac, compare = self._mac, self._compare
        digests = enrollment.healthy_digests
        horizon = collection_time + 1e-6
        append = report.verdicts.append
        for measurement in measurements:
            append(MeasurementVerdict(
                measurement=measurement,
                authentic=compare(mac(measurement.authenticated_payload()),
                                  measurement.tag),
                # statics: ok(constant-time) — public whitelist membership
                healthy=measurement.digest in digests,
                from_future=measurement.timestamp > horizon))
        return self.core._assess(report, enrollment, collection_time)


class BaseVerifier:
    """Shared enrollment store and bookkeeping for verifier front ends.

    Both the legacy single-device :class:`repro.core.ErasmusVerifier`
    and the fleet-scale :class:`repro.fleet.FleetVerifier` subclass
    this: they keep :class:`Enrollment` records per device, advance the
    newest-seen timestamp after every accepted report, and delegate all
    judgement to the stateless :class:`VerificationCore`.

    ``store`` is an optional :class:`repro.store.StateStore`: every
    enrollment and every last-seen advance is written through to it, so
    a store-backed verifier can be rebuilt after a restart (see
    :meth:`repro.fleet.FleetVerifier.restore`).  ``None`` keeps the
    historical dict-only behaviour.
    """

    def __init__(self, config: ErasmusConfig,
                 schedule_tolerance: float = 0.25,
                 allowed_missing: int = 0,
                 store: Optional["StateStore"] = None) -> None:
        self.config = config
        self.core = VerificationCore(config,
                                     schedule_tolerance=schedule_tolerance,
                                     allowed_missing=allowed_missing)
        self.store = store
        self._enrollments: Dict[str, Enrollment] = {}
        self._last_collection_time: Dict[str, float] = {}
        # Bumped whenever a device's key or digest whitelist changes (not
        # on last-seen advances); worker pools key their enrollment
        # mirrors on this so re-syncs only happen when material changed.
        self._enrollment_epoch = 0

    # Policy attributes kept readable for existing callers/tests.
    @property
    def schedule_tolerance(self) -> float:
        return self.core.schedule_tolerance

    @property
    def allowed_missing(self) -> int:
        return self.core.allowed_missing

    @property
    def mac_algorithm(self):
        return self.core.mac_algorithm

    @property
    def crypto_backend(self):
        return self.core.crypto_backend

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, device_id: str, key: bytes,
               healthy_digests: Iterable[bytes]) -> None:
        """Register a prover: its shared key and its known-good states.

        This is the low-level primitive: it *overwrites* any existing
        enrollment (resetting ``last_seen`` and the digest whitelist),
        including in the attached store.  Fleet deployments should use
        :meth:`repro.fleet.FleetVerifier.enroll_device`, which guards
        against accidental re-enrollment.
        """
        self._set_enrollment(Enrollment.create(device_id, key,
                                               healthy_digests))

    def _set_enrollment(self, enrollment: Enrollment) -> None:
        """Install an enrollment and write it through to the store."""
        previous = self._enrollments.get(enrollment.device_id)
        key_changed = previous is not None and not \
            self.crypto_backend.compare_digests(previous.key, enrollment.key)
        if (previous is None or key_changed
                # Whitelist *change detection* over public software-state
                # digest sets, not an authentication decision:
                # statics: ok(constant-time)
                or previous.healthy_digests != enrollment.healthy_digests):
            self._enrollment_epoch += 1
        self._enrollments[enrollment.device_id] = enrollment
        if self.store is not None:
            self.store.save_enrollment(enrollment)

    def is_enrolled(self, device_id: str) -> bool:
        """True when the device has been enrolled."""
        return device_id in self._enrollments

    def healthy_digests(self, device_id: str) -> frozenset[bytes]:
        """The whitelisted software states for one device."""
        return self._enrollment_for(device_id).healthy_digests

    def last_seen(self, device_id: str) -> Optional[float]:
        """Newest measurement timestamp accepted from one device."""
        return self._enrollment_for(device_id).last_seen

    def add_healthy_digest(self, device_id: str, digest: bytes) -> None:
        """Whitelist an additional software state (e.g. after an update)."""
        self._set_enrollment(self._enrollment_for(device_id)
                             .with_digest(digest))

    def _enrollment_for(self, device_id: str) -> Enrollment:
        try:
            return self._enrollments[device_id]
        except KeyError as exc:
            raise KeyError(f"device {device_id!r} is not enrolled") from exc

    # ------------------------------------------------------------------
    # Requests and bookkeeping
    # ------------------------------------------------------------------
    def create_collect_request(self, k: Optional[int] = None) -> CollectRequest:
        """Build a plain collection request (no authentication needed)."""
        if k is None:
            k = self.config.measurements_per_collection
        return CollectRequest(k=k)

    def verify_collection(self, device_id: str, response: CollectResponse,
                          collection_time: float) -> VerificationReport:
        """Verify a plain ERASMUS collection (Figure 2, verifier side)."""
        enrollment = self._enrollment_for(device_id)
        report = self.core.verify_measurements(
            enrollment, list(response.measurements), collection_time,
            expect_nonempty=True)
        return self._commit(report)

    def _commit(self, report: VerificationReport) -> VerificationReport:
        """Accept a finished report; subclasses add their own recording."""
        self._advance_bookkeeping(report)
        return report

    def _advance_bookkeeping(self, report: VerificationReport) -> None:
        """Record the collection time and newest-seen timestamp.

        Only collections that actually carried measurements advance the
        per-device state — an empty or unanswered round proves nothing
        about which records already reached the verifier.
        """
        if not report.measurement_count:
            return
        enrollment = self._enrollments[report.device_id]
        advanced = self.core.advance_last_seen(report, enrollment.last_seen)
        if advanced is not None:
            self._set_enrollment(enrollment.advanced(advanced))
        self._last_collection_time[report.device_id] = report.collection_time

    def last_collection_time(self, device_id: str) -> Optional[float]:
        """Time of the most recent collection that carried measurements."""
        return self._last_collection_time.get(device_id)
