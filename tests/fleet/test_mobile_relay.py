"""Tests for mobility-aware swarm relay collections.

Covers the per-round rewiring contract: the relay topology is sampled
from the mobility model before every round, speed 0 reproduces a static
geometric graph, rounds are deterministic, unreachable devices surface
as lost responses rather than errors, and stale/lost accounting stays
consistent under churn.
"""

import collections

import pytest

from repro.core import CollectRequest
from repro.fleet import DeviceProfile, Fleet, SwarmRelayTransport
from repro.fleet.transport import VERIFIER_NODE
from repro.net.mobility import RandomWaypointMobility
from repro.sim import SimulationEngine

FIRMWARE = b"mobile-relay-test-firmware"


@pytest.fixture
def profile() -> DeviceProfile:
    return DeviceProfile.smartplus(firmware=FIRMWARE, application_size=256,
                                   measurement_interval=10.0,
                                   collection_interval=60.0,
                                   buffer_slots=8)


def make_mobility(count, speed, seed=21, area_size=120.0, radio_range=45.0,
                  link_latency=0.002):
    names = [f"t-{index}" for index in range(count)]
    return RandomWaypointMobility(names, area_size=area_size,
                                  radio_range=radio_range, speed=speed,
                                  seed=seed, link_latency=link_latency)


def provision_into(transport, profile, engine, count):
    devices = []
    for index in range(count):
        device = profile.provision(f"t-{index}", master_secret=b"master")
        device.prover.attach(engine)
        transport.register(device)
        devices.append(device)
    return devices


def request_bytes(profile) -> bytes:
    return CollectRequest(k=profile.config.measurements_per_collection).encode()


def gateway_component(mobility, time):
    """Devices connected to the pinned verifier in the geometric graph."""
    adjacency = collections.defaultdict(set)
    for link in mobility.links_at(time):
        adjacency[link.node_a].add(link.node_b)
        adjacency[link.node_b].add(link.node_a)
    seen = {VERIFIER_NODE}
    frontier = [VERIFIER_NODE]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    seen.discard(VERIFIER_NODE)
    return seen


def test_gateway_is_pinned_without_mutating_the_callers_model():
    mobility = make_mobility(8, speed=0.0)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, mobility=mobility)
    # The transport samples a private fork with the gateway pinned at
    # the area center; the caller's model stays gateway-free, so e.g. a
    # cost-model comparison run over it sees no phantom static relay.
    assert transport.mobility is not mobility
    assert VERIFIER_NODE in transport.mobility.pinned_names()
    assert transport.mobility.position_of(VERIFIER_NODE) == (60.0, 60.0)
    assert mobility.pinned_names() == []
    links = {name for link in mobility.links_at(0.0)
             for name in link.endpoints()}
    assert VERIFIER_NODE not in links
    # A model that pre-pins the gateway itself is adopted as-is (and
    # cannot be moved by gateway_position).
    pinned = make_mobility(8, speed=0.0)
    pinned.pin(VERIFIER_NODE, 30.0, 30.0)
    transport = SwarmRelayTransport(SimulationEngine(), mobility=pinned)
    assert transport.mobility is pinned
    with pytest.raises(ValueError):
        SwarmRelayTransport(SimulationEngine(), mobility=pinned,
                            gateway_position=(10.0, 10.0))


def test_register_rejects_devices_outside_the_mobility_model(profile):
    mobility = make_mobility(2, speed=0.0)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, mobility=mobility)
    stranger = profile.provision("not-in-model", master_secret=b"master")
    with pytest.raises(ValueError):
        transport.register(stranger)


def test_speed_zero_matches_the_static_geometric_graph(profile):
    """At speed 0 every round covers exactly the gateway's component."""
    count = 14
    mobility = make_mobility(count, speed=0.0, radio_range=30.0)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, mobility=mobility)
    provision_into(transport, profile, engine, count)
    engine.run(until=30.0)

    expected = gateway_component(transport.mobility, engine.now)
    assert expected  # dense enough that someone is connected
    assert len(expected) < count or expected == {f"t-{i}"
                                                 for i in range(count)}

    request = request_bytes(profile)
    for _round in range(3):
        responses = transport.exchange_many(
            {f"t-{index}": request for index in range(count)})
        answered = {device_id for device_id, payload in responses.items()
                    if payload is not None}
        assert answered == expected  # same coverage, round after round
    assert transport.rewires == 3
    assert set(transport.reachable_ids()) == expected


def test_rewire_tracks_the_mobility_model_each_round(profile):
    count = 12
    mobility = make_mobility(count, speed=8.0, radio_range=35.0)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, mobility=mobility)
    provision_into(transport, profile, engine, count)
    engine.run(until=30.0)

    request = request_bytes(profile)
    edges_per_round = []
    for _round in range(3):
        transport.exchange_many(
            {f"t-{index}": request for index in range(count)})
        edges_per_round.append(
            frozenset(tuple(sorted(edge))
                      for edge in transport.network.graph.edges))
        engine.run(until=engine.now + 20.0)  # let the swarm move
    assert transport.rewires >= 3
    # A fast swarm does not keep the same topology for three rounds.
    assert len(set(edges_per_round)) > 1


def test_mobile_rounds_are_deterministic(profile):
    """Two identical setups produce identical rounds, stamp for stamp."""

    def run_rounds():
        count = 10
        mobility = make_mobility(count, speed=6.0)
        engine = SimulationEngine()
        transport = SwarmRelayTransport(engine, mobility=mobility,
                                        rewire_interval=0.05)
        provision_into(transport, profile, engine, count)
        engine.run(until=30.0)
        outcomes = []
        for _round in range(2):
            responses = transport.exchange_many(
                {f"t-{index}": request_bytes(profile)
                 for index in range(count)})
            outcomes.append({device_id: payload is not None
                             for device_id, payload in responses.items()})
            engine.run(until=engine.now + 10.0)
        return outcomes, engine.now, transport.stale_responses_rejected

    assert run_rounds() == run_rounds()


def test_unreachable_devices_surface_as_lost_not_as_errors(profile):
    """Devices outside the gateway component are lost in RoundStats."""
    count = 12
    # A tiny radio range strands most of the swarm away from the gateway.
    names = [f"dev-{index:04d}" for index in range(count)]
    mobility = RandomWaypointMobility(names, area_size=200.0,
                                      radio_range=25.0, speed=0.0, seed=5)
    fleet = Fleet.provision(
        profile, count, master_secret=b"master",
        transport=lambda engine: SwarmRelayTransport(engine,
                                                     mobility=mobility))
    with fleet:
        fleet.run_until(30.0)
        reports = fleet.collect_all(batch_size=count)
    stats = reports.stats
    assert stats.requests_sent == count
    assert stats.responses_received + stats.responses_lost == count
    assert stats.responses_lost > 0  # someone is stranded at this range
    no_data = {report.device_id for report in reports
               if report.status.name == "NO_DATA"}
    assert len(no_data) == stats.responses_lost
    assert fleet.transport.network.in_flight_packets == 0


def test_stale_and_lost_accounting_stays_consistent_under_churn(profile):
    """Fast mobility with in-round rewires: every packet is accounted."""
    count = 12
    # Mobile links are built from the mobility model, so the per-hop
    # latency that stretches the round past the rewire ticks (and the
    # timeout) is configured there, not on the transport.
    mobility = make_mobility(count, speed=10.0, radio_range=40.0,
                             area_size=100.0, link_latency=0.05)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, round_timeout=0.2,
                                    mobility=mobility,
                                    rewire_interval=0.04)
    provision_into(transport, profile, engine, count)
    engine.run(until=30.0)

    request = request_bytes(profile)
    for _round in range(4):
        responses = transport.exchange_many(
            {f"t-{index}": request for index in range(count)})
        answered = sum(1 for payload in responses.values()
                       if payload is not None)
        assert 0 <= answered <= count
        engine.run(until=engine.now + 5.0)  # drain stragglers, move on

    network = transport.network
    assert network.in_flight_packets == 0  # every admitted packet settled
    assert transport.stale_responses_rejected >= 0
    assert not transport._pending
    # In-round rewires happened on top of the per-round ones.
    assert transport.rewires > 4


def test_depth_and_reachability_are_time_dependent(profile):
    count = 10
    mobility = make_mobility(count, speed=8.0, radio_range=35.0)
    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine, mobility=mobility)
    provision_into(transport, profile, engine, count)

    transport.rewire(0.0)
    reachable_now = set(transport.reachable_ids())
    for device_id in reachable_now:
        assert transport.depth_of(device_id) >= 1
    stranded = [f"t-{index}" for index in range(count)
                if f"t-{index}" not in reachable_now]
    for device_id in stranded:
        assert not transport.is_reachable(device_id)
        with pytest.raises(KeyError):
            transport.depth_of(device_id)

    engine.run(until=40.0)
    transport.rewire()
    later = set(transport.reachable_ids())
    # The question "how deep is this device" has a different answer at a
    # different time on a fast swarm.
    assert later != reachable_now or transport.rewires == 2


def test_rewire_parameter_validation():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        SwarmRelayTransport(engine, rewire_interval=0.5)  # no mobility
    with pytest.raises(ValueError):
        SwarmRelayTransport(engine, gateway_position=(10.0, 10.0))
    mobility = make_mobility(4, speed=1.0)
    with pytest.raises(ValueError):
        SwarmRelayTransport(engine, mobility=mobility, rewire_interval=0.0)
    static = SwarmRelayTransport(engine)
    with pytest.raises(RuntimeError):
        static.rewire()


def test_abc_only_mobility_model_covering_the_gateway_works(profile):
    """A model satisfying just the ABC works if it handles the gateway."""
    from repro.net.link import Link
    from repro.net.mobility import MobilityModel

    class StarOfGateway(MobilityModel):
        def __init__(self, count):
            self._names = [f"t-{index}" for index in range(count)]

        def device_names(self):
            return [VERIFIER_NODE] + list(self._names)

        def links_at(self, time):
            del time
            return [Link(VERIFIER_NODE, name, latency=0.001)
                    for name in self._names]

    engine = SimulationEngine()
    transport = SwarmRelayTransport(engine,
                                    mobility=StarOfGateway(4))
    provision_into(transport, profile, engine, 4)
    engine.run(until=30.0)
    responses = transport.exchange_many(
        {f"t-{index}": request_bytes(profile) for index in range(4)})
    assert all(payload is not None for payload in responses.values())
    # The gateway is the model's business: the transport must not try
    # to move it.
    with pytest.raises(ValueError):
        SwarmRelayTransport(SimulationEngine(), mobility=StarOfGateway(4),
                            gateway_position=(1.0, 1.0))
