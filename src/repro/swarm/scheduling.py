"""Staggered measurement scheduling for swarms.

Last paragraph of Section 6: with on-demand swarm attestation a large
part of the network may be busy measuring at the same time, which is
unacceptable when at least part of the group must stay available.  With
ERASMUS it is "trivial to establish a schedule which ensures that only
a fraction of the swarm computes measurements at any given time" — this
module is that schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.swarm.device import SwarmDevice


@dataclass
class StaggeredSchedule:
    """Phase-offset assignment bounding concurrent measurements.

    Devices are split into groups; group ``g`` starts its measurements
    at phase offset ``g * (T_M / groups)``.  As long as the measurement
    run-time is below ``T_M / groups``, at most one group — i.e. a
    fraction ``1 / groups`` of the swarm — is busy at any instant.
    """

    measurement_interval: float
    max_busy_fraction: float

    def __post_init__(self) -> None:
        if self.measurement_interval <= 0:
            raise ValueError("T_M must be positive")
        if not 0 < self.max_busy_fraction <= 1:
            raise ValueError("the busy fraction must be in (0, 1]")

    @property
    def group_count(self) -> int:
        """Number of phase groups needed to respect the busy bound."""
        return max(1, int(math.ceil(1.0 / self.max_busy_fraction)))

    def phase_offsets(self, devices: Sequence[SwarmDevice]) -> Dict[str, float]:
        """Assign each device a measurement phase offset."""
        groups = self.group_count
        slot_length = self.measurement_interval / groups
        return {device.device_id: (index % groups) * slot_length
                for index, device in enumerate(devices)}

    def feasible(self, measurement_runtime: float) -> bool:
        """Can the bound actually be met with this measurement run-time?

        The measurement must fit inside one phase slot, otherwise
        adjacent groups overlap and the busy fraction is exceeded.
        """
        return measurement_runtime <= self.measurement_interval / \
            self.group_count

    def busy_fraction_at(self, time: float, devices: Sequence[SwarmDevice],
                         measurement_runtime: float) -> float:
        """Fraction of the swarm busy measuring at a given instant."""
        if not devices:
            return 0.0
        offsets = self.phase_offsets(devices)
        busy = 0
        for device in devices:
            phase = (time - offsets[device.device_id]) % \
                self.measurement_interval
            if 0 <= phase < measurement_runtime:
                busy += 1
        return busy / len(devices)

    def worst_case_busy_fraction(self, devices: Sequence[SwarmDevice],
                                 measurement_runtime: float,
                                 samples: int = 200) -> float:
        """Maximum busy fraction observed over one full period."""
        if samples <= 0:
            raise ValueError("at least one sample is required")
        step = self.measurement_interval / samples
        return max(self.busy_fraction_at(index * step, devices,
                                         measurement_runtime)
                   for index in range(samples))


def round_robin_collection_order(devices: Sequence[SwarmDevice],
                                 per_collection: int) -> List[List[str]]:
    """Split a swarm into collection batches visited round-robin.

    The verifier can bound its own per-round work by collecting from
    ``per_collection`` devices at a time; every device is still visited
    once per full cycle.
    """
    if per_collection <= 0:
        raise ValueError("per_collection must be positive")
    names = [device.device_id for device in devices]
    return [names[index:index + per_collection]
            for index in range(0, len(names), per_collection)]
