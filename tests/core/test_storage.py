"""Tests for the rolling measurement store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Measurement, MeasurementStore


def record(timestamp: float) -> Measurement:
    return Measurement(timestamp=timestamp, digest=b"\x01" * 32,
                       tag=b"\x02" * 32)


def test_slot_rule_matches_paper():
    store = MeasurementStore(slots=12, measurement_interval=10.0)
    assert store.slot_for_time(0.0) == 0
    assert store.slot_for_time(9.99) == 0
    assert store.slot_for_time(10.0) == 1
    assert store.slot_for_time(125.0) == 12 % 12
    assert store.slot_for_time(35.0) == 3


def test_store_and_latest_newest_first():
    store = MeasurementStore(slots=8, measurement_interval=10.0)
    for timestamp in (10.0, 20.0, 30.0, 40.0):
        store.store(record(timestamp))
    latest = store.latest(3)
    assert [measurement.timestamp for measurement in latest] == \
        [40.0, 30.0, 20.0]


def test_latest_clamps_k_to_slot_count():
    store = MeasurementStore(slots=4, measurement_interval=10.0)
    for timestamp in (10.0, 20.0, 30.0, 40.0):
        store.store(record(timestamp))
    assert len(store.latest(100)) == 4
    assert store.latest(0) == []
    assert store.latest(-5) == []


def test_wraparound_overwrites_oldest():
    store = MeasurementStore(slots=4, measurement_interval=10.0)
    for timestamp in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0):
        store.store(record(timestamp))
    assert store.overwrites == 2
    timestamps = {measurement.timestamp
                  for measurement in store.all_measurements()}
    assert timestamps == {30.0, 40.0, 50.0, 60.0}


def test_capacity_and_occupancy():
    store = MeasurementStore(slots=6, measurement_interval=5.0)
    assert store.capacity_seconds() == pytest.approx(30.0)
    assert store.occupancy() == 0
    store.store(record(5.0))
    assert store.occupancy() == len(store) == 1
    assert store.newest().timestamp == 5.0


def test_empty_store_latest_and_newest():
    store = MeasurementStore(slots=4, measurement_interval=10.0)
    assert store.latest(3) == []
    assert store.newest() is None


def test_round_robin_mode_never_collides_within_capacity():
    store = MeasurementStore(slots=8, measurement_interval=10.0,
                             stateless=False)
    # Irregular schedule: several measurements inside one nominal window.
    for timestamp in (1.0, 2.0, 3.0, 11.0, 12.0, 25.0):
        store.store(record(timestamp))
    assert store.overwrites == 0
    assert store.occupancy() == 6


def test_tampering_primitives():
    store = MeasurementStore(slots=4, measurement_interval=10.0)
    for timestamp in (10.0, 20.0, 30.0):
        store.store(record(timestamp))
    store.overwrite_slot(store.slot_for_time(30.0), None)
    assert store.occupancy() == 2
    store.swap_slots(store.slot_for_time(10.0), store.slot_for_time(20.0))
    assert store.occupancy() == 2
    store.clear_all()
    assert store.occupancy() == 0
    assert store.newest() is None


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MeasurementStore(slots=0, measurement_interval=10.0)
    with pytest.raises(ValueError):
        MeasurementStore(slots=4, measurement_interval=0.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=60, unique=True))
def test_latest_returns_newest_timestamps(indices):
    # Measurements taken every T_M (regular schedule, one per window).
    store = MeasurementStore(slots=16, measurement_interval=10.0)
    timestamps = sorted(index * 10.0 + 5.0 for index in indices)
    for timestamp in timestamps:
        store.store(record(timestamp))
    k = min(5, len(timestamps), store.slots)
    got = [measurement.timestamp for measurement in store.latest(k)]
    # The newest record is always first, nothing is returned twice, the
    # result never exceeds k, and every returned record is a survivor.
    assert got[0] == timestamps[-1]
    assert len(got) == len(set(got)) <= k
    survivors = {measurement.timestamp
                 for measurement in store.all_measurements()}
    assert set(got) <= survivors
