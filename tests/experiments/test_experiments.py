"""Tests for the experiment harnesses (one per paper table / figure)."""

import pytest

from repro.experiments import (
    availability,
    fig6_msp430_runtime,
    fig8_imx6_runtime,
    hwcost,
    irregular_intervals,
    qoa_detection,
    swarm_mobility,
    swarm_mobility_fleet,
    table1_codesize,
    table2_collection,
)


class TestTable1:
    def test_matches_paper_exactly(self):
        rows = table1_codesize.run()
        assert table1_codesize.matches_paper(rows, tolerance_kb=0.05)

    def test_erasmus_vs_ondemand_direction(self):
        rows = {row["mac"]: row for row in table1_codesize.run()}
        blake = rows["keyed-blake2s"]
        assert blake["smart+/erasmus"] < blake["smart+/on-demand"]
        assert blake["hydra/erasmus"] > blake["hydra/on-demand"]

    def test_format_table_contains_all_macs(self):
        text = table1_codesize.format_table(table1_codesize.run())
        for mac in ("hmac-sha1", "hmac-sha256", "keyed-blake2s"):
            assert mac in text


class TestTable2:
    def test_erasmus_total_matches_paper(self):
        rows = {row["operation"]: row for row in table2_collection.run()}
        assert rows["total"]["erasmus_ms"] == pytest.approx(0.015, abs=0.002)
        assert rows["total"]["erasmus+od_ms"] == pytest.approx(285.6, rel=0.02)
        assert rows["verify_request"]["erasmus_ms"] is None

    def test_ratio_exceeds_3000(self):
        assert table2_collection.collection_vs_measurement_ratio() >= 3000

    def test_format_table_renders(self):
        assert "ERASMUS+OD" in table2_collection.format_table(
            table2_collection.run())


class TestFig6:
    def test_endpoints_match_paper(self):
        rows = fig6_msp430_runtime.run(memory_sizes_kb=(10,))
        by_mac = {row["mac"]: row for row in rows}
        for mac, expected in fig6_msp430_runtime.PAPER_RUNTIME_AT_10KB_S.items():
            assert by_mac[mac]["erasmus_s"] == pytest.approx(expected,
                                                             rel=0.05)

    def test_curves_are_linear(self):
        rows = fig6_msp430_runtime.run()
        for mac in ("hmac-sha256", "keyed-blake2s"):
            for variant in ("erasmus", "on-demand"):
                points = fig6_msp430_runtime.series(rows, mac, variant)
                assert fig6_msp430_runtime.linearity_error(points) < 0.05

    def test_erasmus_and_ondemand_roughly_equivalent(self):
        rows = fig6_msp430_runtime.run(memory_sizes_kb=(10,))
        for row in rows:
            assert row["on_demand_s"] == pytest.approx(row["erasmus_s"],
                                                       rel=0.1)
            assert row["on_demand_s"] > row["erasmus_s"]


class TestFig8:
    def test_endpoints_match_paper(self):
        rows = fig8_imx6_runtime.run(memory_sizes_mb=(10,))
        by_mac = {row["mac"]: row for row in rows}
        for mac, expected in fig8_imx6_runtime.PAPER_RUNTIME_AT_10MB_S.items():
            assert by_mac[mac]["erasmus_s"] == pytest.approx(expected,
                                                             rel=0.05)

    def test_series_extraction(self):
        rows = fig8_imx6_runtime.run()
        points = fig8_imx6_runtime.series(rows, "keyed-blake2s", "erasmus")
        assert len(points) == len(fig8_imx6_runtime.DEFAULT_MEMORY_SIZES_MB)
        assert points == sorted(points)


class TestHwCost:
    def test_matches_paper(self):
        rows = {row["variant"]: row for row in hwcost.run()}
        assert rows["erasmus"]["registers"] == 655
        assert rows["erasmus"]["luts"] == 1969
        assert rows["unmodified"]["registers"] == 579
        assert rows["erasmus"]["register_overhead_pct"] == pytest.approx(
            13.1, abs=0.2)

    def test_erasmus_equals_ondemand(self):
        assert hwcost.erasmus_equals_ondemand(hwcost.run())


class TestQoADetection:
    def test_erasmus_dominates_ondemand(self):
        rows = qoa_detection.run(horizon=3 * 24 * 3600.0,
                                 dwell_fractions=(0.25, 1.0, 2.0))
        for row in rows:
            assert row["erasmus_detection_rate"] >= \
                row["ondemand_detection_rate"]
        assert qoa_detection.detection_advantage(rows) > 0.2

    def test_detection_grows_with_dwell(self):
        rows = qoa_detection.run(horizon=3 * 24 * 3600.0,
                                 dwell_fractions=(0.1, 1.0, 4.0))
        rates = [row["erasmus_detection_rate"] for row in rows]
        assert rates[0] < rates[-1]


class TestIrregularIntervals:
    def test_regular_schedule_has_cliff_at_tm(self):
        rows = irregular_intervals.run(trials=400,
                                       dwell_fractions=(0.8, 1.2))
        by_fraction = {row["dwell_over_tm"]: row for row in rows}
        assert by_fraction[0.8]["regular_evasion"] == 1.0
        assert by_fraction[1.2]["regular_evasion"] == 0.0

    def test_irregular_matches_analytic(self):
        rows = irregular_intervals.run(trials=1500,
                                       dwell_fractions=(0.7, 1.0, 1.3))
        for row in rows:
            assert row["irregular_evasion"] == pytest.approx(
                row["analytic_irregular_evasion"], abs=0.08)


class TestAvailability:
    def test_lenient_scheduling_recovers_measurements(self):
        rows = availability.run(window_factors=(1.0, 2.0),
                                horizon=12 * 3600.0)
        strict, lenient = rows[0], rows[1]
        assert strict["loss_rate"] > lenient["loss_rate"]
        assert lenient["recovered"] > 0

    def test_collisions_independent_of_window(self):
        rows = availability.run(window_factors=(1.0, 3.0),
                                horizon=6 * 3600.0)
        assert rows[0]["collisions"] == rows[1]["collisions"]


class TestSwarmMobility:
    def test_erasmus_robust_to_mobility(self):
        rows = swarm_mobility.run(device_count=20, speeds=(0.0, 6.0),
                                  repetitions=2)
        static = swarm_mobility.coverage_by_protocol(rows, 0.0)
        fast = swarm_mobility.coverage_by_protocol(rows, 6.0)
        assert static["erasmus-collection"] == pytest.approx(1.0)
        assert fast["erasmus-collection"] >= 0.9
        assert fast["lisa-alpha"] < fast["erasmus-collection"]

    def test_duration_gap(self):
        rows = swarm_mobility.run(device_count=15, speeds=(0.0,),
                                  repetitions=1)
        durations = {row["protocol"]: row["duration_s"] for row in rows}
        assert durations["erasmus-collection"] < durations["seda"] / 10


class TestSwarmMobilityFleet:
    def test_real_provers_survive_mobility_on_demand_does_not(self):
        rows = swarm_mobility_fleet.run(device_count=24, speeds=(0.0, 6.0),
                                        rounds=2)
        static = swarm_mobility_fleet.coverage_by_protocol(rows, 0.0)
        mobile = swarm_mobility_fleet.coverage_by_protocol(rows, 6.0)
        static_connected = swarm_mobility_fleet.connected_coverage_at(rows,
                                                                      0.0)
        # Speed 0: coverage is exactly the gateway's static component.
        assert static["erasmus-fleet"] == pytest.approx(static_connected)
        # Mobility: the fleet collection holds, the cost-model on-demand
        # protocols drop.
        assert mobile["erasmus-fleet"] >= static_connected - 0.1
        assert mobile["seda"] < mobile["erasmus-fleet"]
        assert mobile["lisa-alpha"] < static["lisa-alpha"]

    def test_fleet_round_finishes_in_network_time(self):
        rows = swarm_mobility_fleet.run(device_count=16, speeds=(6.0,),
                                        rounds=1)
        durations = {row["protocol"]: row["duration_s"] for row in rows}
        assert durations["erasmus-fleet"] < durations["seda"] / 10

    def test_cost_model_rows_are_optional(self):
        rows = swarm_mobility_fleet.run(device_count=10, speeds=(0.0,),
                                        rounds=1, include_cost_model=False)
        assert [row["protocol"] for row in rows] == ["erasmus-fleet"]


def test_all_format_tables_render():
    assert "Figure 6" in fig6_msp430_runtime.format_table(
        fig6_msp430_runtime.run(memory_sizes_kb=(1, 2)))
    assert "Figure 8" in fig8_imx6_runtime.format_table(
        fig8_imx6_runtime.run(memory_sizes_mb=(1,)))
    assert "Hardware" in hwcost.format_table(hwcost.run())
    assert "evasion" in irregular_intervals.format_table(
        irregular_intervals.run(trials=50, dwell_fractions=(0.5,)))
    assert "lenient" in availability.format_table(
        availability.run(window_factors=(1.0,), horizon=3600.0))
    assert "swarm" in swarm_mobility.format_table(
        swarm_mobility.run(device_count=8, speeds=(0.0,), repetitions=1))
    assert "real provers" in swarm_mobility_fleet.format_table(
        swarm_mobility_fleet.run(device_count=8, speeds=(0.0,), rounds=1))
    assert "ERASMUS" in qoa_detection.format_table(
        qoa_detection.run(horizon=24 * 3600.0, dwell_fractions=(1.0,)))
