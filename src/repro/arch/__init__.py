"""Common interface for the hybrid RA security architectures.

ERASMUS is architecture-agnostic: it only needs a substrate that can
(1) compute a measurement ``<t, H(mem_t), MAC_K(t, H(mem_t))>`` with
exclusive access to ``K``, atomically and non-malleably, and (2) expose
a reliable read-only clock.  The paper demonstrates it on SMART+
(:mod:`repro.smartplus`) and HYDRA (:mod:`repro.hydra`); both implement
the :class:`SecurityArchitecture` interface defined here, so the core
protocol code in :mod:`repro.core` works unchanged on either.
"""

from repro.arch.base import (
    ArchitectureError,
    MeasurementAborted,
    MeasurementOutput,
    SecurityArchitecture,
    hash_for_mac,
)

__all__ = [
    "ArchitectureError",
    "MeasurementAborted",
    "MeasurementOutput",
    "SecurityArchitecture",
    "hash_for_mac",
]
