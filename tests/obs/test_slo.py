"""SLO rules and the streaming health sink."""

import pytest

from repro.core.verification import DeviceStatus, VerificationReport
from repro.fleet.sinks import FleetHealth
from repro.obs import (
    AttestationWindowRule,
    CoverageRule,
    FreshnessRule,
    LostBudgetRule,
    StreamingHealthSink,
)


def report(status=DeviceStatus.HEALTHY, device="dev", freshness=None):
    return VerificationReport(device_id=device, collection_time=0.0,
                              status=status, freshness=freshness)


def lost():
    return report(status=DeviceStatus.NO_DATA)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def test_lost_budget_fires_on_the_report_that_breaks_the_budget():
    rule = LostBudgetRule(max_lost=2)
    rule.reset()
    assert rule.observe(lost()) is None
    assert rule.observe(report()) is None
    assert rule.observe(lost()) is None
    verdict = rule.observe(lost())  # third silent device: budget is 2
    assert verdict is not None and verdict[0] == 3.0
    assert rule.observe(lost()) is None  # fires once, streaming-side
    health = FleetHealth()
    for r in (lost(), lost(), lost(), report()):
        health.record(r)
    assert rule.violated_by(health)
    health2 = FleetHealth()
    health2.record(lost())
    assert not rule.violated_by(health2)


def test_coverage_fires_the_moment_the_target_is_unreachable():
    rule = CoverageRule(0.9, expected_devices=10)
    rule.reset()
    # One silent device leaves 9/10 achievable: no event.
    assert rule.observe(lost()) is None
    # The second makes 90% unreachable no matter what follows.
    verdict = rule.observe(lost())
    assert verdict is not None
    assert verdict[0] == pytest.approx(0.8)


def test_coverage_without_expectation_settles_at_end_of_round():
    rule = CoverageRule(0.9)
    rule.reset()
    for _ in range(8):
        assert rule.observe(report()) is None
    assert rule.observe(lost()) is None  # 8/9 — cannot fire mid-round
    assert rule.end_of_round() is not None
    health = FleetHealth()
    for _ in range(8):
        health.record(report())
    health.record(lost())
    assert rule.violated_by(health)


def test_coverage_exact_boundary_is_not_a_violation():
    rule = CoverageRule(0.9, expected_devices=10)
    rule.reset()
    for _ in range(9):
        rule.observe(report())
    rule.observe(lost())  # exactly 9/10 == 0.9: meets the target
    assert rule.end_of_round() is None
    health = FleetHealth()
    for _ in range(9):
        health.record(report())
    health.record(lost())
    assert not rule.violated_by(health)


def test_freshness_rule_settles_at_end_of_round():
    rule = FreshnessRule(10.0)
    rule.reset()
    assert rule.observe(report(freshness=25.0)) is None  # could recover
    assert rule.observe(report(freshness=1.0)) is None
    verdict = rule.end_of_round()
    assert verdict is not None and verdict[0] == pytest.approx(13.0)
    health = FleetHealth()
    health.record(report(freshness=25.0))
    health.record(report(freshness=1.0))
    assert rule.violated_by(health)


def test_attestation_window_fires_when_the_window_closes_short():
    clock = _Clock()
    rule = AttestationWindowRule(0.75, window=5.0, expected_devices=4,
                                 clock=clock)
    rule.reset()
    assert rule.observe(report(device="a")) is None  # t=0, in window
    clock.now = 3.0
    assert rule.observe(report(device="b")) is None
    clock.now = 9.0  # window closed with 2/4 < 75%
    verdict = rule.observe(report(device="c"))
    assert verdict is not None
    assert verdict[0] == pytest.approx(0.5)
    # Post-hoc replays the streamed verdict (timing is gone).
    assert rule.violated_by(FleetHealth())


def test_attestation_window_exact_boundary_is_not_a_violation():
    # 0.07 * 100 is 7.000000000000001 as floats: with a float target,
    # exactly 7 attested devices would falsely violate.  The rule
    # compares exact rationals, so the boundary is met, not missed.
    clock = _Clock()
    rule = AttestationWindowRule(0.07, window=5.0, expected_devices=100,
                                 clock=clock)
    rule.reset()
    for index in range(7):
        assert rule.observe(report(device=f"d{index}")) is None
    clock.now = 9.0  # window closed with exactly 7/100 == 7%
    assert rule.observe(lost()) is None
    assert rule.end_of_round() is None
    assert not rule.violated_by(FleetHealth())


def test_attestation_window_one_short_of_boundary_violates():
    clock = _Clock()
    rule = AttestationWindowRule(0.07, window=5.0, expected_devices=100,
                                 clock=clock)
    rule.reset()
    for index in range(6):
        assert rule.observe(report(device=f"d{index}")) is None
    clock.now = 9.0
    verdict = rule.observe(lost())
    assert verdict is not None
    assert verdict[0] == pytest.approx(0.06)


def test_freshness_threshold_uses_decimal_not_binary_float():
    # The threshold the user wrote is the decimal 0.1; the binary float
    # 0.1 is a hair *above* it.  With the old Fraction(float) threshold
    # a measured mean of float-0.1 compared equal and slipped through;
    # against the exact decimal it (correctly) violates ...
    import math
    rule = FreshnessRule(0.1)
    rule.reset()
    assert rule.observe(report(freshness=0.1)) is None
    assert rule.end_of_round() is not None
    # ... while a mean genuinely below the decimal does not.
    rule.reset()
    assert rule.observe(
        report(freshness=math.nextafter(0.1, 0.0))) is None
    assert rule.end_of_round() is None


def test_rule_constructor_validation():
    with pytest.raises(ValueError):
        LostBudgetRule(-1)
    with pytest.raises(ValueError):
        CoverageRule(0.0)
    with pytest.raises(ValueError):
        CoverageRule(0.5, expected_devices=0)
    with pytest.raises(ValueError):
        FreshnessRule(0.0)
    with pytest.raises(ValueError):
        AttestationWindowRule(0.5, window=0.0, expected_devices=1)


# ----------------------------------------------------------------------
# The sink
# ----------------------------------------------------------------------
def test_sink_fires_mid_round_once_per_rule():
    events = []
    sink = StreamingHealthSink([LostBudgetRule(0)],
                               on_violation=[events.append])
    sink.emit(report())
    assert events == []
    sink.emit(lost())
    sink.emit(lost())
    assert len(events) == 1  # deduplicated within the round
    violation = events[0]
    assert violation.rule == "lost_budget"
    assert violation.streamed
    assert violation.round_index == 1
    assert violation.reports_seen == 2  # fired on the second report
    sink.flush()
    # A fresh round re-arms the rule.
    sink.emit(lost())
    assert len(events) == 2
    assert events[1].round_index == 2
    assert sink.violations_for_round(1) == [violation]


def test_sink_end_of_round_sweep_marks_unstreamed_violations():
    sink = StreamingHealthSink([CoverageRule(0.9)])
    for _ in range(8):
        sink.emit(report())
    sink.emit(lost())
    assert sink.violations == []  # not decidable mid-round
    sink.flush()
    (violation,) = sink.violations
    assert not violation.streamed
    assert violation.round_index == 1


def test_idle_flush_is_not_a_round_boundary():
    sink = StreamingHealthSink([LostBudgetRule(0)])
    sink.flush()
    sink.flush()
    assert sink.round_index == 1
    sink.emit(lost())
    sink.flush()
    assert sink.round_index == 2


def test_violation_rows_are_json_friendly():
    sink = StreamingHealthSink([LostBudgetRule(0)])
    sink.emit(lost())
    (row,) = sink.violation_rows()
    assert row["rule"] == "lost_budget"
    assert row["round"] == 1
    assert row["streamed"] is True
    assert row["reports_seen"] == 1
    assert isinstance(row["message"], str)


def test_sink_clock_stamps_events_and_reaches_rules():
    clock = _Clock()
    window_rule = AttestationWindowRule(1.0, window=5.0,
                                        expected_devices=2)
    sink = StreamingHealthSink([LostBudgetRule(0), window_rule])
    sink.bind_clock(clock)
    clock.now = 4.5
    sink.emit(lost())
    assert sink.violations[0].time == 4.5
    assert window_rule._clock is clock  # bind_clock fanned out
