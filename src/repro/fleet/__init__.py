"""Fleet-scale attestation service: the canonical public API.

The paper's headline property — collections cheap enough to run
continuously — only matters at scale, so this package treats
attestation as a many-device service rather than a pairwise exchange:

* :mod:`repro.fleet.profiles` — :class:`DeviceProfile`: one-call
  provisioning of SMART+ / HYDRA devices (key, firmware, schedule,
  MAC, crypto backend);
* :mod:`repro.fleet.transport` — :class:`Transport` implementations
  (in-process, simulated packet network, swarm relay tree) that all
  speak the canonical wire encoding;
* :mod:`repro.fleet.service` — :class:`FleetVerifier` (batched,
  sharded ``collect_all`` over the stateless verification core) and the
  :class:`Fleet` facade;
* :mod:`repro.fleet.sinks` — pluggable report sinks (in-memory, JSONL,
  :class:`FleetHealth` aggregation).

Verifier state can be made durable by passing a
:class:`repro.store.StateStore` backend (``store=``) to
:meth:`Fleet.provision` / :class:`FleetVerifier`; a crashed verifier is
then resumed with :meth:`FleetVerifier.restore` — see
:mod:`repro.store`.

Quickstart::

    from repro.fleet import DeviceProfile, Fleet

    profile = DeviceProfile.smartplus(firmware=b"pump-fw-v1",
                                      measurement_interval=60.0,
                                      collection_interval=600.0)
    fleet = Fleet.provision(profile, 1000, master_secret=b"factory-secret")
    fleet.run_until(600.0)
    reports = fleet.collect_all()
    print(fleet.health.summary())

The legacy single-device entry points
(:class:`repro.core.ErasmusProver` / :class:`repro.core.ErasmusVerifier`)
keep working as thin shims over the same verification core.
"""

from repro.fleet.profiles import (
    HYDRA,
    SMARTPLUS,
    DeviceProfile,
    ProvisionedDevice,
    derive_device_key,
)
from repro.fleet.service import (
    DEFAULT_BATCH_SIZE,
    TRANSPORT_FACTORIES,
    Fleet,
    FleetVerifier,
)
from repro.core.verification import DuplicateEnrollmentError
from repro.fleet.sinks import (
    FleetHealth,
    FleetHealthSink,
    JsonlSink,
    MemorySink,
    ReportSink,
    SinkFanout,
    report_to_row,
)
from repro.fleet.transport import (
    InProcessTransport,
    SimulatedNetworkTransport,
    SwarmRelayTransport,
    Transport,
    serve_request,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DeviceProfile",
    "DuplicateEnrollmentError",
    "Fleet",
    "FleetHealth",
    "FleetHealthSink",
    "FleetVerifier",
    "HYDRA",
    "InProcessTransport",
    "JsonlSink",
    "MemorySink",
    "ProvisionedDevice",
    "ReportSink",
    "SMARTPLUS",
    "SimulatedNetworkTransport",
    "SinkFanout",
    "SwarmRelayTransport",
    "TRANSPORT_FACTORIES",
    "Transport",
    "derive_device_key",
    "report_to_row",
    "serve_request",
]
