"""Shared configuration for the benchmark suite.

Every benchmark wraps one experiment harness from
:mod:`repro.experiments` (one per paper table / figure) with
pytest-benchmark and asserts that the regenerated result keeps the
paper's shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""
