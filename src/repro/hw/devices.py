"""Device cost models for the paper's two prototype targets.

The paper measures ERASMUS on:

* an MSP430-class low-end MCU at 8 MHz (openMSP430 on FPGA, SMART+),
  Figure 6;
* an i.MX6 Sabre Lite application processor at 1 GHz (HYDRA on seL4),
  Figure 8 and Table 2.

We obviously cannot run either here, so the models below translate
cryptographic work (compression-function invocations, obtained from the
real MAC implementations in :mod:`repro.crypto`) into device cycles and
seconds.  The per-block cycle constants are *calibrated* so that the
model's curves pass through the end-points the paper reports:

* MSP430, 10 KB, HMAC-SHA256  ->  ~7 s (the "7 seconds on an 8-MHz
  device with 10 KB RAM" quoted in Section 5);
* MSP430, 10 KB, keyed BLAKE2s -> ~5 s (the faster curve in Figure 6);
* i.MX6, 10 MB, keyed BLAKE2s  -> 285.6 ms (Table 2's "Compute
  Measurement" row and the Figure 8 curve);
* i.MX6 collection-phase constants of Table 2 (construct UDP packet
  0.003 ms, send 0.012 ms, verify request 0.005 ms).

Run-time is linear in memory size with a small fixed offset, exactly the
shape both figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.crypto.mac import get_mac


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Run-time of one attestation operation, split into its parts.

    All values are in seconds.  ``request_auth`` is zero for plain
    ERASMUS self-measurements (no verifier request to authenticate) and
    non-zero for on-demand attestation and ERASMUS+OD.
    """

    request_auth: float
    measurement: float
    fixed_overhead: float

    @property
    def total(self) -> float:
        """Total run-time in seconds."""
        return self.request_auth + self.measurement + self.fixed_overhead


class DeviceCostModel:
    """Base cycle-cost model shared by both prototype targets.

    Parameters
    ----------
    name:
        Human-readable device name.
    clock_hz:
        Core clock frequency.
    cycles_per_block:
        Calibrated cycles spent per 64-byte compression block, keyed by
        MAC algorithm name (see :mod:`repro.crypto.mac`).
    fixed_overhead_cycles:
        Per-invocation overhead (entering the ROM routine / PrAtt
        process, setting up DMA-free memory reads, storing the result).
    request_auth_bytes:
        Size of the verifier request that must be MAC-verified for
        on-demand attestation (SMART+ / ERASMUS+OD).
    """

    def __init__(self, name: str, clock_hz: float,
                 cycles_per_block: Dict[str, float],
                 fixed_overhead_cycles: float,
                 request_auth_bytes: int = 16) -> None:
        if clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        if fixed_overhead_cycles < 0:
            raise ValueError("fixed overhead must be non-negative")
        self.name = name
        self.clock_hz = clock_hz
        self.cycles_per_block = dict(cycles_per_block)
        self.fixed_overhead_cycles = fixed_overhead_cycles
        self.request_auth_bytes = request_auth_bytes

    def supported_macs(self) -> list[str]:
        """MAC algorithm names this model has calibration data for."""
        return sorted(self.cycles_per_block)

    def _cycles_per_block(self, mac_name: str) -> float:
        try:
            return self.cycles_per_block[mac_name.lower()]
        except KeyError as exc:
            known = ", ".join(self.supported_macs())
            raise ValueError(
                f"{self.name} has no calibration for MAC {mac_name!r}; "
                f"known: {known}") from exc

    def measurement_cycles(self, memory_bytes: int, mac_name: str) -> float:
        """Cycles needed to hash+MAC ``memory_bytes`` of prover memory."""
        if memory_bytes < 0:
            raise ValueError("memory size must be non-negative")
        algorithm = get_mac(mac_name)
        blocks = algorithm.compression_count(memory_bytes)
        return blocks * self._cycles_per_block(mac_name) + \
            self.fixed_overhead_cycles

    def measurement_runtime(self, memory_bytes: int, mac_name: str) -> float:
        """Seconds needed for one ERASMUS self-measurement."""
        return self.measurement_cycles(memory_bytes, mac_name) / self.clock_hz

    def request_auth_cycles(self, mac_name: str) -> float:
        """Cycles needed to authenticate one verifier request (anti-DoS)."""
        algorithm = get_mac(mac_name)
        blocks = algorithm.compression_count(self.request_auth_bytes)
        return blocks * self._cycles_per_block(mac_name)

    def request_auth_runtime(self, mac_name: str) -> float:
        """Seconds needed to authenticate one verifier request."""
        return self.request_auth_cycles(mac_name) / self.clock_hz

    def runtime_breakdown(self, memory_bytes: int, mac_name: str,
                          on_demand: bool) -> RuntimeBreakdown:
        """Full run-time breakdown for one attestation operation.

        ``on_demand=True`` covers SMART+-style on-demand attestation and
        the ERASMUS+OD collection, both of which must authenticate the
        verifier's request before measuring.
        """
        request = self.request_auth_runtime(mac_name) if on_demand else 0.0
        blocks = get_mac(mac_name).compression_count(memory_bytes)
        measurement = blocks * self._cycles_per_block(mac_name) / self.clock_hz
        overhead = self.fixed_overhead_cycles / self.clock_hz
        return RuntimeBreakdown(request_auth=request, measurement=measurement,
                                fixed_overhead=overhead)

    def attestation_runtime(self, memory_bytes: int, mac_name: str,
                            on_demand: bool) -> float:
        """Total seconds for one attestation operation."""
        return self.runtime_breakdown(memory_bytes, mac_name, on_demand).total

    #: Generic packet-handling costs (cycles) used by the base
    #: collection-runtime model; the i.MX6 model overrides the whole
    #: method with the measured Table 2 constants instead.
    PACKET_CONSTRUCT_CYCLES = 1_000.0
    PACKET_SEND_CYCLES = 2_000.0

    def collection_runtime(self, memory_bytes: int, mac_name: str,
                           on_demand: bool) -> Dict[str, float]:
        """Collection-phase run-time breakdown (prover side).

        A plain ERASMUS collection only reads stored records and hands
        them to the transport — no cryptography.  An on-demand (or
        ERASMUS+OD) request additionally pays for request verification
        and a full measurement.
        """
        verify_request = self.request_auth_runtime(mac_name) if on_demand \
            else 0.0
        compute = self.measurement_runtime(memory_bytes, mac_name) \
            if on_demand else 0.0
        construct = self.PACKET_CONSTRUCT_CYCLES / self.clock_hz
        send = self.PACKET_SEND_CYCLES / self.clock_hz
        return {
            "verify_request": verify_request,
            "compute_measurement": compute,
            "construct_packet": construct,
            "send_packet": send,
            "total": verify_request + compute + construct + send,
        }

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"clock_hz={self.clock_hz:g})")


class MCUModel(DeviceCostModel):
    """MSP430-class low-end MCU (the paper's SMART+ target, Figure 6).

    The default constants are calibrated so that a 10 KB measurement
    takes ~7 s with HMAC-SHA256 and ~5 s with keyed BLAKE2s at 8 MHz.
    """

    DEFAULT_CYCLES_PER_BLOCK: Dict[str, float] = {
        "hmac-sha1": 320_000.0,
        "hmac-sha256": 343_500.0,
        "keyed-blake2s": 248_400.0,
    }

    def __init__(self, clock_hz: float = 8_000_000.0,
                 cycles_per_block: Dict[str, float] | None = None,
                 fixed_overhead_cycles: float = 12_000.0) -> None:
        super().__init__(
            name="MSP430 (openMSP430, SMART+)",
            clock_hz=clock_hz,
            cycles_per_block=cycles_per_block or dict(
                self.DEFAULT_CYCLES_PER_BLOCK),
            fixed_overhead_cycles=fixed_overhead_cycles,
        )


class ApplicationCPUModel(DeviceCostModel):
    """i.MX6 Sabre Lite class processor (the paper's HYDRA target).

    Besides the measurement cost model (Figure 8), this model carries
    the collection-phase constants of Table 2:

    * ``request_verify_seconds`` — verifying the verifier's request MAC
      (ERASMUS+OD only), 0.005 ms;
    * ``packet_construct_seconds`` — building the UDP response, 0.003 ms;
    * ``packet_send_seconds`` — handing it to the Ethernet driver, 0.012 ms.
    """

    DEFAULT_CYCLES_PER_BLOCK: Dict[str, float] = {
        "hmac-sha1": 2_900.0,
        "hmac-sha256": 3_357.0,
        "keyed-blake2s": 1_743.0,
    }

    def __init__(self, clock_hz: float = 1_000_000_000.0,
                 cycles_per_block: Dict[str, float] | None = None,
                 fixed_overhead_cycles: float = 50_000.0,
                 request_verify_seconds: float = 5e-6,
                 packet_construct_seconds: float = 3e-6,
                 packet_send_seconds: float = 12e-6) -> None:
        super().__init__(
            name="i.MX6 Sabre Lite (seL4, HYDRA)",
            clock_hz=clock_hz,
            cycles_per_block=cycles_per_block or dict(
                self.DEFAULT_CYCLES_PER_BLOCK),
            fixed_overhead_cycles=fixed_overhead_cycles,
        )
        self.request_verify_seconds = request_verify_seconds
        self.packet_construct_seconds = packet_construct_seconds
        self.packet_send_seconds = packet_send_seconds

    def collection_runtime(self, memory_bytes: int, mac_name: str,
                           on_demand: bool) -> Dict[str, float]:
        """Collection-phase run-time breakdown, reproducing Table 2.

        Returns a mapping with the same rows as the paper's table:
        ``verify_request``, ``compute_measurement``, ``construct_packet``,
        ``send_packet`` and ``total``.  For plain ERASMUS the first two
        are zero — the prover only reads and transmits stored records.
        """
        verify_request = self.request_verify_seconds if on_demand else 0.0
        compute = self.measurement_runtime(memory_bytes, mac_name) \
            if on_demand else 0.0
        total = (verify_request + compute + self.packet_construct_seconds +
                 self.packet_send_seconds)
        return {
            "verify_request": verify_request,
            "compute_measurement": compute,
            "construct_packet": self.packet_construct_seconds,
            "send_packet": self.packet_send_seconds,
            "total": total,
        }
