"""``repro.obs`` — live observability for fleet attestation.

The ROADMAP item "make fleet health a service, not a return value",
delivered as three cooperating pieces:

* :mod:`repro.obs.metrics` — a dependency-free metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with labels
  and fixed buckets) rendered in the Prometheus text format and served
  over a stdlib HTTP endpoint (:mod:`repro.obs.server`);
* :mod:`repro.obs.tracing` — span traces of every collection round
  (``round`` → ``shard`` → ``device_verify``) with ids *derived* from
  their coordinates, so identically-seeded runs export byte-identical
  JSONL;
* :mod:`repro.obs.slo` — :class:`StreamingHealthSink` evaluates SLO
  rules as reports stream through the ordinary sink fanout, firing
  violation events mid-round instead of post-hoc.

One :class:`Observability` object threads through
``Fleet.provision(obs=...)`` and lights up the whole stack; the
:data:`NULL_OBSERVABILITY` default keeps every instrumented path at
historical cost (pinned by ``benchmarks/test_obs_overhead.py``).
See ``MONITORING.md`` for the metric catalog and scrape examples.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_ROUND_BUCKETS,
    MetricError,
    MetricsRegistry,
)
from repro.obs.server import MetricsServer
from repro.obs.service import (
    NULL_OBSERVABILITY,
    NullObservability,
    Observability,
    ObservedStore,
)
from repro.obs.slo import (
    AttestationWindowRule,
    CoverageRule,
    FreshnessRule,
    LostBudgetRule,
    SloRule,
    SloViolation,
    StreamingHealthSink,
)
from repro.obs.tracing import Span, SpanTracer, derive_span_id

__all__ = [
    "AttestationWindowRule",
    "CoverageRule",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_ROUND_BUCKETS",
    "FreshnessRule",
    "LostBudgetRule",
    "MetricError",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_OBSERVABILITY",
    "NullObservability",
    "Observability",
    "ObservedStore",
    "SloRule",
    "SloViolation",
    "Span",
    "SpanTracer",
    "StreamingHealthSink",
    "derive_span_id",
]
