"""Swarm attestation protocols run against a mobility model.

All protocols share the same skeleton:

1. the verifier injects a request at a gateway device; the request
   floods the swarm along a BFS tree of the topology *at start time*;
2. each device spends its service time (a full measurement for
   on-demand protocols, a negligible buffer read for ERASMUS);
3. evidence travels back towards the gateway hop by hop; every hop is
   only possible if the corresponding link still exists *at the moment
   the report traverses it*.

Because the topology is re-sampled from the mobility model as time
passes, long-running protocols (whose duration is dominated by the
per-device measurement) lose devices when links move, while the
near-instant ERASMUS collection is barely affected — the Section 6
claim this module exists to demonstrate.

The protocols differ in how evidence travels back:

* :class:`SedaProtocol` — SEDA-style aggregation: a parent waits for its
  children's reports and sends a single aggregate upward; a broken link
  loses the evidence of the entire subtree below it.
* :class:`LisaAlphaProtocol` — LISA-α: no aggregation, devices simply
  relay individual reports towards the gateway as soon as they are done.
* :class:`LisaSelfProtocol` — LISA-s: like LISA-α with per-hop
  sequencing overhead, trading latency for ordered reporting.
* :class:`ErasmusSwarmCollection` — ERASMUS + LISA-α-style relaying of
  *stored* measurements: no computation anywhere on the path.
"""

from __future__ import annotations

import abc
import collections
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.mobility import MobilityModel
from repro.swarm.device import SwarmDevice
from repro.swarm.metrics import QoSALevel, SwarmAttestationResult


class _TopologySampler:
    """Caches topology snapshots so link liveness can be queried freely.

    Mobility models only move forward in time; protocol evaluation,
    however, needs link-liveness queries in arbitrary order.  The
    sampler quantizes time to a fixed resolution, advances the mobility
    model monotonically and caches each snapshot.
    """

    def __init__(self, mobility: MobilityModel, start_time: float,
                 resolution: float = 0.1) -> None:
        if resolution <= 0:
            raise ValueError("sampling resolution must be positive")
        self._mobility = mobility
        self._resolution = resolution
        self._start = start_time
        self._snapshots: Dict[int, FrozenSet[Tuple[str, str]]] = {}
        self._last_step = -1

    def _step_for(self, time: float) -> int:
        if time < self._start:
            raise ValueError(
                f"topology queried at {time} before protocol start "
                f"{self._start}; pre-start times have no snapshot")
        return int(math.floor((time - self._start) / self._resolution))

    def _ensure(self, step: int) -> None:
        while self._last_step < step:
            self._last_step += 1
            snapshot_time = self._start + self._last_step * self._resolution
            links = self._mobility.links_at(snapshot_time)
            edges = frozenset(tuple(sorted(link.endpoints()))
                              for link in links)
            self._snapshots[self._last_step] = edges

    def edges_at(self, time: float) -> FrozenSet[Tuple[str, str]]:
        """The set of (sorted) edges present at the snapshot covering ``time``."""
        step = self._step_for(time)
        self._ensure(step)
        return self._snapshots[step]

    def link_alive(self, first: str, second: str, time: float) -> bool:
        """True when the link between the two nodes exists at ``time``."""
        return tuple(sorted((first, second))) in self.edges_at(time)


@dataclass
class _TreeNode:
    """BFS tree bookkeeping for one device."""

    parent: Optional[str]
    depth: int
    children: List[str]


class SwarmRAProtocol(abc.ABC):
    """Base class implementing the flood / serve / report-back skeleton."""

    #: Human-readable protocol name (overridden by subclasses).
    name = "base"
    #: QoSA level the protocol provides.
    qosa_level = QoSALevel.LIST

    def __init__(self, hop_delay: float = 0.01,
                 topology_resolution: float = 0.1) -> None:
        if hop_delay <= 0:
            raise ValueError("hop delay must be positive")
        self.hop_delay = hop_delay
        self.topology_resolution = topology_resolution

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def _bfs_tree(self, sampler: _TopologySampler, gateway: str,
                  time: float) -> Dict[str, _TreeNode]:
        adjacency: Dict[str, set[str]] = collections.defaultdict(set)
        for first, second in sampler.edges_at(time):
            adjacency[first].add(second)
            adjacency[second].add(first)
        tree: Dict[str, _TreeNode] = {
            gateway: _TreeNode(parent=None, depth=0, children=[])}
        frontier = collections.deque([gateway])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(adjacency.get(current, ())):
                if neighbor not in tree:
                    tree[neighbor] = _TreeNode(parent=current,
                                               depth=tree[current].depth + 1,
                                               children=[])
                    tree[current].children.append(neighbor)
                    frontier.append(neighbor)
        return tree

    # ------------------------------------------------------------------
    # Protocol skeleton
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _service_time(self, device: SwarmDevice) -> float:
        """Time a device spends producing its evidence."""

    @abc.abstractmethod
    def _aggregate(self) -> bool:
        """True when parents aggregate their subtree before reporting."""

    def run(self, devices: List[SwarmDevice], mobility: MobilityModel,
            gateway: str, start_time: float = 0.0) -> SwarmAttestationResult:
        """Run one protocol instance and return the attestation result."""
        device_map = {device.device_id: device for device in devices}
        if gateway not in device_map:
            raise KeyError(f"gateway {gateway!r} is not a swarm device")
        sampler = _TopologySampler(mobility, start_time,
                                   self.topology_resolution)
        tree = self._bfs_tree(sampler, gateway, start_time)

        # Devices never reached by the request flood cannot be attested.
        reachable = [name for name in tree if name in device_map]
        unreachable = [device.device_id for device in devices
                       if device.device_id not in tree]

        # Phases 1+2: request arrival and evidence-ready times.
        ready_time: Dict[str, float] = {}
        for name in reachable:
            node = tree[name]
            arrival = start_time + node.depth * self.hop_delay
            ready_time[name] = arrival + self._service_time(device_map[name])

        if self._aggregate():
            attested, failed, finish_time = self._run_aggregated(
                sampler, tree, reachable, ready_time, gateway, start_time)
        else:
            attested, failed, finish_time = self._run_individual(
                sampler, tree, reachable, ready_time, gateway, start_time)
        failed.extend(unreachable)

        return SwarmAttestationResult(
            protocol=self.name,
            devices_total=len(devices),
            devices_attested=len(attested),
            duration=finish_time - start_time,
            qosa_level=self.qosa_level,
            attested_ids=sorted(attested),
            failed_ids=sorted(failed),
        )

    def _run_individual(self, sampler: _TopologySampler,
                        tree: Dict[str, _TreeNode], reachable: List[str],
                        ready_time: Dict[str, float], gateway: str,
                        start_time: float
                        ) -> tuple[List[str], List[str], float]:
        """Each report travels hop by hop; a dead link loses that report only."""
        attested: List[str] = []
        failed: List[str] = []
        finish_time = start_time
        for name in sorted(reachable, key=lambda n: tree[n].depth):
            time = ready_time[name]
            current = name
            delivered = True
            while current != gateway:
                parent = tree[current].parent
                assert parent is not None
                if not sampler.link_alive(current, parent, time):
                    delivered = False
                    break
                time += self.hop_delay
                current = parent
            if delivered:
                attested.append(name)
                finish_time = max(finish_time, time)
            else:
                failed.append(name)
        return attested, failed, finish_time

    def _run_aggregated(self, sampler: _TopologySampler,
                        tree: Dict[str, _TreeNode], reachable: List[str],
                        ready_time: Dict[str, float], gateway: str,
                        start_time: float
                        ) -> tuple[List[str], List[str], float]:
        """Parents wait for their whole subtree before sending one aggregate.

        The aggregate containing a device's evidence is transmitted by
        every ancestor in turn; if any of those transmissions happens
        over a link that has meanwhile disappeared, that device's
        evidence never reaches the verifier.
        """
        # Bottom-up completion time of each subtree's aggregate.
        send_time: Dict[str, float] = {}
        subtree_done: Dict[str, float] = {}
        for name in sorted(reachable, key=lambda n: -tree[n].depth):
            node = tree[name]
            done = ready_time[name]
            for child in node.children:
                if child in subtree_done:
                    done = max(done, subtree_done[child])
            send_time[name] = done
            subtree_done[name] = done if node.parent is None \
                else done + self.hop_delay

        attested: List[str] = []
        failed: List[str] = []
        for name in reachable:
            current = name
            delivered = True
            while current != gateway:
                parent = tree[current].parent
                assert parent is not None
                if not sampler.link_alive(current, parent, send_time[current]):
                    delivered = False
                    break
                current = parent
            if delivered:
                attested.append(name)
            else:
                failed.append(name)
        finish_time = subtree_done.get(gateway, start_time)
        return attested, failed, finish_time


class SedaProtocol(SwarmRAProtocol):
    """SEDA-style on-demand swarm attestation with in-network aggregation."""

    name = "seda"
    qosa_level = QoSALevel.BINARY

    def _service_time(self, device: SwarmDevice) -> float:
        return device.attestation_service_time(on_demand=True)

    def _aggregate(self) -> bool:
        return True


class LisaAlphaProtocol(SwarmRAProtocol):
    """LISA-α: on-demand measurements, individual reports relayed upstream."""

    name = "lisa-alpha"
    qosa_level = QoSALevel.LIST

    def _service_time(self, device: SwarmDevice) -> float:
        return device.attestation_service_time(on_demand=True)

    def _aggregate(self) -> bool:
        return False


class LisaSelfProtocol(LisaAlphaProtocol):
    """LISA-s: like LISA-α, with per-hop sequencing overhead."""

    name = "lisa-s"
    qosa_level = QoSALevel.FULL

    def __init__(self, hop_delay: float = 0.01,
                 topology_resolution: float = 0.1,
                 sequencing_overhead: float = 0.005) -> None:
        super().__init__(hop_delay=hop_delay,
                         topology_resolution=topology_resolution)
        if sequencing_overhead < 0:
            raise ValueError("sequencing overhead must be non-negative")
        self.sequencing_overhead = sequencing_overhead

    def _service_time(self, device: SwarmDevice) -> float:
        return super()._service_time(device) + self.sequencing_overhead


class ErasmusSwarmCollection(SwarmRAProtocol):
    """ERASMUS-based swarm collection: relay stored measurements only.

    Devices self-measure on their own schedules; the collection merely
    reads and relays the stored records (LISA-α-style), so the whole
    instance completes in network round-trip time and survives mobility
    that would break the on-demand protocols.
    """

    name = "erasmus-collection"
    qosa_level = QoSALevel.LIST

    def _service_time(self, device: SwarmDevice) -> float:
        return device.attestation_service_time(on_demand=False)

    def _aggregate(self) -> bool:
        return False
