"""Rule ``codec``: every opcode has both arms; decode never mutates.

The worker-pipe frame codec (:mod:`repro.fleet.workers`) dispatches on
module-level ``OP_*`` opcode constants.  A constant with a decode arm
but no encode site is dead protocol (or a sender someone forgot);
encode without decode is a frame the peer will reject as unknown.
This rule requires each ``OP_*`` constant defined in a module to
appear both as a call argument somewhere (the encode/submit side) and
in a comparison (the decode dispatch).

Second invariant: decode paths hand out zero-copy views into the
received frame, so a decoder that *writes* through a
``memoryview``-derived name corrupts the very buffer other views
alias.  Inside ``decode*`` functions, subscript stores into a
parameter or into any name derived from ``memoryview(...)`` are
flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from repro.statics.engine import Checker, FileContext, Finding, terminal_name

_OPCODE_RE = re.compile(r"^OP_[A-Z0-9_]+$")


def _module_opcodes(tree: ast.Module) -> Dict[str, int]:
    opcodes: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _OPCODE_RE.match(node.targets[0].id) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            opcodes[node.targets[0].id] = node.value.lineno
    return opcodes


def _buffer_names(func: ast.AST) -> Set[str]:
    """Parameters plus names assigned from memoryview-ish expressions."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            names.add(arg.arg)
    # Fixpoint over assignments: view = memoryview(frame),
    # sub = view[a:b], ro = view.toreadonly() all taint the target.
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            tainted = False
            if isinstance(value, ast.Call) \
                    and terminal_name(value.func) in ("memoryview",
                                                      "toreadonly"):
                tainted = True
            elif isinstance(value, (ast.Subscript, ast.Name,
                                    ast.Attribute)):
                base = terminal_name(value)
                root = value
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in names:
                    tainted = True
                elif base in names:
                    tainted = True
            if tainted:
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in names:
                        names.add(target.id)
                        changed = True
    return names


class CodecExhaustivenessChecker(Checker):
    rule = "codec"
    description = ("every OP_* opcode needs an encode and a decode arm; "
                   "decode paths must not write through memoryviews")
    invariant = ("the worker frame codec round-trips: opcodes encode and "
                 "decode symmetrically, and zero-copy decode views never "
                 "mutate the shared receive buffer")
    applies_to_tests = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(ctx.tree, ast.Module):
            return
        opcodes = _module_opcodes(ctx.tree)
        if len(opcodes) >= 2:
            encoded: Set[str] = set()
            decoded: Set[str] = set()
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) \
                                and arg.id in opcodes:
                            encoded.add(arg.id)
                elif isinstance(node, ast.Compare):
                    for operand in [node.left] + list(node.comparators):
                        # `opcode in (OP_A, OP_B)` dispatches too.
                        elements = operand.elts if isinstance(
                            operand, (ast.Tuple, ast.List, ast.Set)) \
                            else [operand]
                        for element in elements:
                            if isinstance(element, ast.Name) \
                                    and element.id in opcodes:
                                decoded.add(element.id)
            for name, lineno in sorted(opcodes.items(),
                                       key=lambda item: item[1]):
                anchor = ast.Constant(value=0)
                anchor.lineno, anchor.col_offset = lineno, 0
                if name not in encoded:
                    yield ctx.finding(
                        self.rule, anchor,
                        f"opcode {name} is decoded but never encoded — "
                        f"dead protocol arm or missing sender")
                if name not in decoded:
                    yield ctx.finding(
                        self.rule, anchor,
                        f"opcode {name} is encoded but never decoded — "
                        f"the peer will reject it as unknown")
        # Mutation through decode-path views.
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not func.name.startswith("decode") \
                    and "_decode" not in func.name:
                continue
            buffers = _buffer_names(func)
            for node in ast.walk(func):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign,)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        root = target.value
                        while isinstance(root, (ast.Subscript,
                                                ast.Attribute)):
                            root = root.value
                        if isinstance(root, ast.Name) \
                                and root.id in buffers:
                            yield ctx.finding(
                                self.rule, node,
                                f"decode path {func.name}() writes "
                                f"through buffer {root.id!r}; decode "
                                f"views are zero-copy and must stay "
                                f"read-only")
