"""Abstract base class shared by the SMART+ and HYDRA architecture models."""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.backend import BackendSpec, resolve_backend
from repro.crypto.mac import get_mac
from repro.hw.devices import DeviceCostModel
from repro.hw.memory import AccessContext, DeviceMemory

_HASH_FOR_MAC: Dict[str, str] = {
    "hmac-sha1": "sha1",
    "hmac-sha256": "sha256",
    "keyed-blake2s": "blake2s",
}


def hash_for_mac(mac_name: str,
                 backend: BackendSpec = None) -> Callable[[bytes], bytes]:
    """Return the hash function ``H`` paired with a MAC choice.

    The measurement is ``MAC_K(t, H(mem_t))``; the paper pairs HMAC-SHA1
    with SHA-1, HMAC-SHA256 with SHA-256 and keyed BLAKE2s with
    (unkeyed) BLAKE2s.  The returned callable computes the digest on the
    selected crypto backend (identical values on every backend).
    """
    try:
        hash_name = _HASH_FOR_MAC[mac_name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_HASH_FOR_MAC))
        raise ValueError(
            f"no hash paired with MAC {mac_name!r}; known: {known}") from exc
    provider = resolve_backend(backend)
    return lambda data: provider.hash_digest(hash_name, data)


class ArchitectureError(Exception):
    """Generic architecture-level failure (misconfiguration, bad state)."""


class MeasurementAborted(Exception):
    """A measurement was aborted before completion (Section 5 variant)."""


@dataclass(frozen=True)
class MeasurementOutput:
    """Raw output of one self-measurement performed by the architecture.

    ``timestamp`` comes from the RROC, ``digest`` is ``H(mem_t)``,
    ``tag`` is ``MAC_K(t, H(mem_t))`` and ``duration`` is the modelled
    run-time of the measurement on the target device.
    """

    timestamp: float
    digest: bytes
    tag: bytes
    duration: float
    memory_bytes: int


def encode_timestamp(timestamp: float) -> bytes:
    """Canonical byte encoding of a timestamp for MAC computation.

    Timestamps are RROC cycle-derived seconds; we encode them as a
    fixed-point 64-bit integer of microseconds so that prover and
    verifier always MAC exactly the same bytes.
    """
    return struct.pack(">Q", int(round(timestamp * 1_000_000)))


class SecurityArchitecture(abc.ABC):
    """Interface ERASMUS requires from the underlying hybrid architecture.

    Concrete subclasses (SMART+, HYDRA) own the device memory, the key,
    the RROC and the cost model; the core protocol layer only calls the
    methods defined here.
    """

    def __init__(self, memory: DeviceMemory, cost_model: DeviceCostModel,
                 mac_name: str, measured_regions: tuple[str, ...],
                 crypto_backend: BackendSpec = None) -> None:
        self.memory = memory
        self.cost_model = cost_model
        self.mac_name = mac_name.lower()
        self.mac_algorithm = get_mac(self.mac_name)
        self.use_crypto_backend(crypto_backend)
        self.measured_regions = tuple(measured_regions)
        self.measurements_performed = 0
        self.aborted_measurements = 0
        self._last_request_time: float | None = None

    def use_crypto_backend(self, backend: BackendSpec) -> None:
        """Select the crypto backend for measurements and request auth.

        Deployments that model reference cycle costs pick ``reference``;
        everything else uses the resolved default (normally the stdlib
        ``accelerated`` provider).  Digests and tags are identical
        either way.
        """
        self.crypto_backend = resolve_backend(backend)
        self.hash_function = hash_for_mac(self.mac_name, self.crypto_backend)

    # ------------------------------------------------------------------
    # Clock and key access (architecture-specific)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def read_clock(self) -> float:
        """Read the reliable read-only clock (seconds since boot)."""

    @abc.abstractmethod
    def advance_clock(self, time_seconds: float) -> None:
        """Advance the device clock to an absolute simulation time."""

    @abc.abstractmethod
    def _read_key(self) -> bytes:
        """Read ``K`` from within the attestation context.

        Only the architecture's own protected code paths call this;
        anything else reading the key region raises an access violation.
        """

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measured_memory_bytes(self) -> int:
        """Total size of the memory covered by a measurement."""
        return sum(self.memory.region(name).size
                   for name in self.measured_regions)

    def read_measured_memory(self) -> bytes:
        """Read the measured regions from the attestation context."""
        chunks = [self.memory.read_region(name, AccessContext.ATTESTATION)
                  for name in self.measured_regions]
        return b"".join(chunks)

    def perform_measurement(self, abort: bool = False) -> MeasurementOutput:
        """Compute one self-measurement ``<t, H(mem_t), MAC_K(t, H(mem_t))>``.

        The computation happens inside the architecture's protected
        context (modelled by :meth:`_protected_execution`).  ``abort=True``
        models the Section 5 situation where a time-critical task
        pre-empts the measurement: the architecture cleans up and raises
        :class:`MeasurementAborted` without producing a record.
        """
        with self._protected_execution():
            if abort:
                self.aborted_measurements += 1
                raise MeasurementAborted(
                    "measurement aborted by a time-critical task")
            timestamp = self.read_clock()
            memory_image = self.read_measured_memory()
            digest = self.hash_function(memory_image)
            key = self._read_key()
            tag = self.mac_algorithm.mac(
                key, encode_timestamp(timestamp) + digest,
                backend=self.crypto_backend)
            duration = self.cost_model.measurement_runtime(
                len(memory_image), self.mac_name)
            self.measurements_performed += 1
            return MeasurementOutput(timestamp=timestamp, digest=digest,
                                     tag=tag, duration=duration,
                                     memory_bytes=len(memory_image))

    # ------------------------------------------------------------------
    # Verifier-request authentication (on-demand / ERASMUS+OD only)
    # ------------------------------------------------------------------
    def authenticate_request(self, payload: bytes, tag: bytes,
                             request_time: float,
                             freshness_window: float = 60.0) -> bool:
        """Authenticate a verifier request as SMART+ prescribes.

        Checks (1) the request timestamp is strictly newer than the last
        accepted one (anti-replay), (2) it is within ``freshness_window``
        seconds of the RROC (anti-delay), and (3) the MAC over the
        payload verifies under ``K``.
        """
        now = self.read_clock()
        if self._last_request_time is not None and \
                request_time <= self._last_request_time:
            return False
        if abs(now - request_time) > freshness_window:
            return False
        with self._protected_execution():
            key = self._read_key()
            valid = self.mac_algorithm.verify(
                key, encode_timestamp(request_time) + payload, tag,
                backend=self.crypto_backend)
        if valid:
            self._last_request_time = request_time
        return valid

    def request_auth_runtime(self) -> float:
        """Modelled run-time of authenticating one verifier request."""
        return self.cost_model.request_auth_runtime(self.mac_name)

    # ------------------------------------------------------------------
    # Protected execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _protected_execution(self):
        """Context manager for the architecture's protected execution mode.

        SMART+ models ROM execution with interrupts disabled; HYDRA
        models the PrAtt process running at the highest priority with
        exclusive capabilities.
        """

    # ------------------------------------------------------------------
    # Introspection used by the application / adversary layers
    # ------------------------------------------------------------------
    def application_write(self, region: str, offset: int,
                          payload: bytes) -> None:
        """Write to device memory from the (untrusted) normal world."""
        self.memory.write_region(region, payload,
                                 context=AccessContext.NORMAL, offset=offset)

    def application_read(self, region: str) -> bytes:
        """Read device memory from the (untrusted) normal world."""
        return self.memory.read_region(region, context=AccessContext.NORMAL)
