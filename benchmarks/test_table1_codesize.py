"""Benchmark: regenerate Table 1 (attestation executable size)."""

from repro.experiments import table1_codesize


def test_table1_regeneration(benchmark):
    rows = benchmark(table1_codesize.run)
    assert table1_codesize.matches_paper(rows)
    by_mac = {row["mac"]: row for row in rows}
    # ERASMUS needs slightly less ROM on SMART+, slightly more on HYDRA.
    for mac in ("hmac-sha1", "hmac-sha256", "keyed-blake2s"):
        assert by_mac[mac]["smart+/erasmus"] < by_mac[mac]["smart+/on-demand"]
    for mac in ("hmac-sha256", "keyed-blake2s"):
        assert by_mac[mac]["hydra/erasmus"] > by_mac[mac]["hydra/on-demand"]
