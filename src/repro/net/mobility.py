"""Mobility models: topologies that change over time.

Section 6 argues that existing swarm RA protocols (SEDA, SANA, LISA)
need the topology to stay essentially static for the whole attestation
instance — whose duration is dominated by *computation* on every device
— whereas ERASMUS's collection phase is so short that high mobility is
harmless.  To exercise that claim we need topologies that actually
move; this module provides a random-waypoint model over a 2-D area with
a fixed radio range, producing a geometric connectivity graph that is
re-sampled as the devices move.
"""

from __future__ import annotations

import abc
import copy
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.link import Link


@dataclass
class DevicePosition:
    """Position and current waypoint of one mobile device."""

    x: float
    y: float
    target_x: float
    target_y: float
    speed: float


class MobilityModel(abc.ABC):
    """Produces the set of links that exist at a given time."""

    @abc.abstractmethod
    def links_at(self, time: float) -> List[Link]:
        """Return the links present at simulation time ``time``."""

    @abc.abstractmethod
    def device_names(self) -> List[str]:
        """Names of the devices this model moves."""


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint mobility over a square area with unit-disc links.

    Each device picks a random waypoint and moves towards it at its
    speed; on arrival it picks a new waypoint.  Two devices share a link
    whenever their distance is at most ``radio_range``.  ``speed = 0``
    degenerates to a static random geometric graph.
    """

    def __init__(self, device_names: List[str], area_size: float = 100.0,
                 radio_range: float = 30.0, speed: float = 1.0,
                 seed: int = 0, link_latency: float = 0.002,
                 link_bandwidth_bps: float = 1_000_000.0) -> None:
        if not device_names:
            raise ValueError("at least one device is required")
        if area_size <= 0 or radio_range <= 0:
            raise ValueError("area size and radio range must be positive")
        if speed < 0:
            raise ValueError("speed must be non-negative")
        self.area_size = area_size
        self.radio_range = radio_range
        self.speed = speed
        self.link_latency = link_latency
        self.link_bandwidth_bps = link_bandwidth_bps
        self._names = list(device_names)
        self._random = random.Random(seed)
        self._positions: Dict[str, DevicePosition] = {
            name: self._spawn_position() for name in self._names}
        #: Static anchors (e.g. the collection gateway) that take part in
        #: the geometric graph but never move; see :meth:`pin`.
        self._pinned: Dict[str, DevicePosition] = {}
        self._last_update = 0.0

    def _spawn_position(self) -> DevicePosition:
        return DevicePosition(
            x=self._random.uniform(0, self.area_size),
            y=self._random.uniform(0, self.area_size),
            target_x=self._random.uniform(0, self.area_size),
            target_y=self._random.uniform(0, self.area_size),
            speed=self.speed,
        )

    def device_names(self) -> List[str]:
        """Names of the mobile devices (pinned anchors excluded)."""
        return list(self._names)

    def pin(self, name: str, x: float, y: float) -> None:
        """Anchor a static node (e.g. a gateway) into the geometric graph.

        The pinned node never moves but participates in link formation
        exactly like a device, so a collection gateway placed inside the
        area is reachable from whichever devices currently roam within
        radio range of it.  Pinned nodes are not returned by
        :meth:`device_names` — they are infrastructure, not swarm
        members.
        """
        if name in self._positions or name in self._pinned:
            raise ValueError(f"{name!r} is already part of this model")
        if not (0.0 <= x <= self.area_size and 0.0 <= y <= self.area_size):
            raise ValueError(f"pinned position {(x, y)} is outside the "
                             f"{self.area_size} x {self.area_size} area")
        self._pinned[name] = DevicePosition(x=x, y=y, target_x=x, target_y=y,
                                            speed=0.0)

    def pinned_names(self) -> List[str]:
        """Names of the static anchors added via :meth:`pin`."""
        return list(self._pinned)

    def position_of(self, name: str) -> tuple[float, float]:
        """Current (x, y) of one device or pinned anchor."""
        position = self._positions.get(name) or self._pinned[name]
        return (position.x, position.y)

    def _advance(self, elapsed: float) -> None:
        for position in self._positions.values():
            remaining = elapsed
            while remaining > 0:
                distance_x = position.target_x - position.x
                distance_y = position.target_y - position.y
                distance = math.hypot(distance_x, distance_y)
                travel = position.speed * remaining
                if position.speed == 0:
                    break
                if travel >= distance:
                    position.x = position.target_x
                    position.y = position.target_y
                    remaining -= distance / position.speed if position.speed \
                        else remaining
                    position.target_x = self._random.uniform(0, self.area_size)
                    position.target_y = self._random.uniform(0, self.area_size)
                else:
                    fraction = travel / distance
                    position.x += distance_x * fraction
                    position.y += distance_y * fraction
                    remaining = 0.0

    def links_at(self, time: float) -> List[Link]:
        """Advance positions to ``time`` and return the current links.

        Candidate pairs come from a uniform grid of ``radio_range``-sized
        cells (a pair can only be in range if their cells are adjacent),
        so densely populated swarms avoid the all-pairs distance scan;
        the returned links are ordered exactly as the all-pairs scan
        would order them.
        """
        elapsed = time - self._last_update
        if elapsed < 0:
            raise ValueError("mobility time cannot move backwards")
        if elapsed > 0:
            self._advance(elapsed)
            self._last_update = time
        names = self._names + list(self._pinned)
        positions = [self._positions.get(name) or self._pinned[name]
                     for name in names]
        cell = self.radio_range
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, position in enumerate(positions):
            key = (int(position.x // cell), int(position.y // cell))
            buckets.setdefault(key, []).append(index)
        links: List[Link] = []
        for index, first_position in enumerate(positions):
            cell_x = int(first_position.x // cell)
            cell_y = int(first_position.y // cell)
            candidates: List[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    candidates.extend(
                        buckets.get((cell_x + dx, cell_y + dy), ()))
            for other in sorted(candidates):
                if other <= index:
                    continue
                second_position = positions[other]
                distance = math.hypot(first_position.x - second_position.x,
                                      first_position.y - second_position.y)
                if distance <= self.radio_range:
                    links.append(Link(names[index], names[other],
                                      latency=self.link_latency,
                                      bandwidth_bps=self.link_bandwidth_bps))
        return links

    def fork(self) -> "RandomWaypointMobility":
        """An independent copy: same positions, waypoints and RNG state.

        Advancing the fork never perturbs this model, so diagnostics
        (e.g. :meth:`churn_rate`) can look ahead — and a transport can
        pin a gateway into its private copy — without changing what a
        protocol run on the original model will see.  A deep copy, so
        subclasses (custom dynamics, extra state) fork faithfully.
        """
        return copy.deepcopy(self)

    def churn_rate(self, horizon: float, step: float = 1.0) -> float:
        """Fraction of links that change per step over a time horizon."""
        return _churn_rate(self, horizon, step)


class PartitionMergeMobility(MobilityModel):
    """A swarm that periodically splits into groups and heals again.

    Section 6's hard case for collect-then-verify swarm protocols is
    not smooth motion but *partitions*: a sub-swarm wanders out of
    range mid-instance and everything computed so far is wasted.  This
    model produces exactly that, deterministically: the devices are
    divided round-robin into ``groups`` sub-swarms; within each cycle
    of ``period`` seconds the swarm spends the first
    ``1 - merged_fraction`` of the cycle partitioned (links only inside
    each group) and the rest merged (bridge links join the groups).
    Pinned anchors — the collection gateway — attach to group 0, so
    during a partition only group 0's devices are reachable and a
    collection round shows the split as lost responses, healing on its
    own once the cycle merges.

    Group members are chained (member *i* links to member *i+1*), so
    reaching deep members takes multiple relay hops exactly like a
    marching column; ``merged_fraction=1`` degenerates to a permanently
    connected swarm.
    """

    def __init__(self, device_names: List[str], groups: int = 2,
                 period: float = 600.0, merged_fraction: float = 0.5,
                 area_size: float = 100.0, link_latency: float = 0.002,
                 link_bandwidth_bps: float = 1_000_000.0) -> None:
        if not device_names:
            raise ValueError("at least one device is required")
        if groups < 1:
            raise ValueError("at least one group is required")
        if period <= 0:
            raise ValueError("the partition/merge period must be positive")
        if not 0.0 <= merged_fraction <= 1.0:
            raise ValueError("merged_fraction must be within [0, 1]")
        if area_size <= 0:
            raise ValueError("area size must be positive")
        self.period = period
        self.merged_fraction = merged_fraction
        self.area_size = area_size
        self.link_latency = link_latency
        self.link_bandwidth_bps = link_bandwidth_bps
        self._names = list(device_names)
        self.groups: List[List[str]] = [[] for _ in range(groups)]
        for index, name in enumerate(self._names):
            self.groups[index % groups].append(name)
        self.groups = [group for group in self.groups if group]
        self._pinned: List[str] = []

    def device_names(self) -> List[str]:
        """Names of the swarm devices (pinned anchors excluded)."""
        return list(self._names)

    def pin(self, name: str, x: float, y: float) -> None:
        """Anchor a static node (the gateway) onto group 0's head.

        The coordinates are accepted for interface compatibility with
        :class:`RandomWaypointMobility` (the swarm transport pins the
        gateway at the area center); connectivity here is group
        membership, not geometry.
        """
        if name in self._names or name in self._pinned:
            raise ValueError(f"{name!r} is already part of this model")
        if not (0.0 <= x <= self.area_size and 0.0 <= y <= self.area_size):
            raise ValueError(f"pinned position {(x, y)} is outside the "
                             f"{self.area_size} x {self.area_size} area")
        self._pinned.append(name)

    def pinned_names(self) -> List[str]:
        """Names of the static anchors added via :meth:`pin`."""
        return list(self._pinned)

    def merged_at(self, time: float) -> bool:
        """True when the groups are merged at ``time``.

        Each cycle starts partitioned and merges for its final
        ``merged_fraction``; a single group is always "merged".
        """
        if len(self.groups) <= 1 or self.merged_fraction >= 1.0:
            return True
        if self.merged_fraction <= 0.0:
            return False
        phase = (time % self.period) / self.period
        return phase >= 1.0 - self.merged_fraction

    def _link(self, node_a: str, node_b: str) -> Link:
        return Link(node_a, node_b, latency=self.link_latency,
                    bandwidth_bps=self.link_bandwidth_bps)

    def links_at(self, time: float) -> List[Link]:
        if time < 0:
            raise ValueError("mobility time cannot be negative")
        links: List[Link] = []
        for anchor in self._pinned:
            links.append(self._link(anchor, self.groups[0][0]))
        for group in self.groups:
            for first, second in zip(group, group[1:]):
                links.append(self._link(first, second))
        if self.merged_at(time):
            for left, right in zip(self.groups, self.groups[1:]):
                links.append(self._link(left[0], right[0]))
        return links

    def group_of(self, name: str) -> int:
        """Index of the group one device belongs to."""
        for index, group in enumerate(self.groups):
            if name in group:
                return index
        raise KeyError(f"{name!r} is not part of this model")

    def fork(self) -> "PartitionMergeMobility":
        """An independent copy (links are pure functions of time)."""
        return copy.deepcopy(self)

    def churn_rate(self, horizon: float, step: float = 1.0) -> float:
        """Fraction of links that change per step over a time horizon."""
        return _churn_rate(self, horizon, step)


def _churn_rate(model: MobilityModel, horizon: float,
                step: float = 1.0) -> float:
    """Link-set churn of any forkable mobility model.

    Used by the swarm experiments to characterize "how mobile" a
    deployment is independently of the protocol under test.  The
    measurement runs on a fork, so looking ahead never perturbs the
    model it was called on.
    """
    if horizon <= 0 or step <= 0:
        raise ValueError("horizon and step must be positive")
    probe = model.fork()
    start = getattr(probe, "_last_update", 0.0)
    previous = {(link.node_a, link.node_b)
                for link in probe.links_at(start)}
    changes = 0.0
    samples = 0
    time = start
    while time < start + horizon:
        time += step
        current = {(link.node_a, link.node_b)
                   for link in probe.links_at(time)}
        union = previous | current
        if union:
            changes += len(previous ^ current) / len(union)
        samples += 1
        previous = current
    return changes / samples if samples else 0.0
