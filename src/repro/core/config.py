"""Configuration objects for ERASMUS deployments."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class ScheduleKind(enum.Enum):
    """Measurement scheduling disciplines described in the paper."""

    REGULAR = "regular"          # fixed T_M (Section 3.1)
    IRREGULAR = "irregular"      # CSPRNG-driven intervals (Section 3.5)
    LENIENT = "lenient"          # window of w * T_M (Section 5)


@dataclass
class ErasmusConfig:
    """Deployment parameters of one ERASMUS prover.

    Attributes
    ----------
    measurement_interval:
        ``T_M`` — seconds between two successive self-measurements.
    collection_interval:
        ``T_C`` — seconds between two successive verifier collections.
        Only used for QoA computations and to derive defaults; the
        verifier is free to collect whenever it wants.
    buffer_slots:
        ``n`` — number of slots in the rolling measurement buffer.  The
        paper requires ``T_C <= n * T_M`` so no measurement is
        overwritten before it is collected.
    schedule:
        Which scheduling discipline the prover uses.
    irregular_lower / irregular_upper:
        Bounds ``L`` and ``U`` on the CSPRNG-drawn interval for
        :data:`ScheduleKind.IRREGULAR`.
    lenient_window_factor:
        ``w`` — an aborted measurement may be rescheduled anywhere in the
        current ``w * T_M`` window (:data:`ScheduleKind.LENIENT`).
    mac_name:
        MAC algorithm used for measurements.
    request_freshness_window:
        Acceptance window (seconds) for authenticated verifier requests
        in ERASMUS+OD / on-demand attestation.
    crypto_backend:
        Crypto backend name for this deployment's prover, verifier and
        scheduler (``"reference"`` or ``"accelerated"``), or ``None``
        to follow the process-wide default (the
        ``ERASMUS_CRYPTO_BACKEND`` environment variable, falling back
        to ``accelerated``).  Both backends produce identical bytes;
        ``reference`` additionally models compression-function work.
    """

    measurement_interval: float = 60.0
    collection_interval: float = 600.0
    buffer_slots: int = 16
    schedule: ScheduleKind = ScheduleKind.REGULAR
    irregular_lower: float | None = None
    irregular_upper: float | None = None
    lenient_window_factor: float = 1.0
    mac_name: str = "keyed-blake2s"
    request_freshness_window: float = 60.0
    crypto_backend: str | None = None

    def __post_init__(self) -> None:
        if self.measurement_interval <= 0:
            raise ValueError("T_M must be positive")
        if self.collection_interval <= 0:
            raise ValueError("T_C must be positive")
        if self.buffer_slots <= 0:
            raise ValueError("the buffer needs at least one slot")
        if self.lenient_window_factor < 1.0:
            raise ValueError("the lenient window factor w must be >= 1")
        if self.crypto_backend is not None:
            # Fail fast on typos; resolution itself happens at use time.
            from repro.crypto.backend import get_backend
            get_backend(self.crypto_backend)
        if self.schedule is ScheduleKind.IRREGULAR:
            if self.irregular_lower is None:
                self.irregular_lower = self.measurement_interval / 2
            if self.irregular_upper is None:
                self.irregular_upper = self.measurement_interval * 3 / 2
            if not 0 < self.irregular_lower <= self.irregular_upper:
                raise ValueError(
                    "irregular bounds must satisfy 0 < L <= U")

    @property
    def measurements_per_collection(self) -> int:
        """``k = ceil(T_C / T_M)`` — measurements fetched per collection.

        This is the paper's "typical setting" where each measurement is
        collected exactly once.
        """
        return int(math.ceil(self.collection_interval /
                             self.measurement_interval))

    @property
    def buffer_capacity_seconds(self) -> float:
        """How much history the buffer holds before overwriting: ``n * T_M``."""
        return self.buffer_slots * self.measurement_interval

    def validate_no_overwrite(self) -> bool:
        """Check the paper's buffer-sizing rule ``T_C <= n * T_M``."""
        return self.collection_interval <= self.buffer_capacity_seconds
