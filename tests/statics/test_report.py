"""Report rendering — including the pinned-bytes JSON regression.

``expected_report.json`` in ``fixtures/`` is the byte-exact report for
the fixture tree below.  If it ever changes without a deliberate
report-format bump, the JSON output is no longer stable across runs —
which breaks CI report diffing.
"""

from pathlib import Path

from repro.statics.baseline import Baseline
from repro.statics.checkers import all_checkers
from repro.statics.engine import scan_paths
from repro.statics.report import render_json, render_text

from tests.statics.helpers import write_tree

FIXTURES = Path(__file__).parent / "fixtures"

#: A tiny tree with one deterministic finding per interesting shape:
#: a wall-clock call, a secret comparison, a float threshold, a
#: codec gap, plus one pragma suppression and one baselined finding.
FIXTURE_TREE = {
    "pkg/clock.py": ("import time\n"
                     "stamp = time.time()\n"),
    "pkg/compare.py": ("def check(expected_mac, got):\n"
                       "    return expected_mac == got\n"),
    "pkg/threshold.py": ("from fractions import Fraction\n"
                         "limit = Fraction(max_mean_seconds)\n"),
    "pkg/frames.py": ("OP_PING = 1\n"
                      "OP_LOST = 2\n"
                      "def send(conn, rid):\n"
                      "    conn.send(pack(OP_PING, rid))\n"
                      "    conn.send(pack(OP_LOST, rid))\n"
                      "def dispatch(opcode):\n"
                      "    return opcode == OP_PING\n"),
    "pkg/tolerated.py": ("import time\n"
                         "t = time.time()  # statics: ok(determinism)\n"),
    "pkg/grandfathered.py": ("def legacy(session_token, expected):\n"
                             "    return session_token == expected\n"),
}

BASELINE_JUSTIFICATION = "fixture: grandfathered for the report test"


def scan_fixture_tree(root: Path):
    write_tree(root, FIXTURE_TREE)
    grandfathered = scan_paths([root / "pkg/grandfathered.py"],
                               all_checkers(), relative_to=root)
    baseline = Baseline.from_findings(grandfathered.findings,
                                      BASELINE_JUSTIFICATION)
    return scan_paths([root], all_checkers(), baseline=baseline,
                      relative_to=root)


def test_json_report_bytes_are_pinned(tmp_path):
    result = scan_fixture_tree(tmp_path)
    expected = (FIXTURES / "expected_report.json").read_bytes()
    assert render_json(result) == expected


def test_json_report_is_identical_across_runs(tmp_path):
    first = render_json(scan_fixture_tree(tmp_path / "a"))
    second = render_json(scan_fixture_tree(tmp_path / "b"))
    assert first == second


def test_text_report_lines_and_summary(tmp_path):
    result = scan_fixture_tree(tmp_path)
    text = render_text(result)
    lines = text.splitlines()
    assert lines[:-1] == [finding.render()
                          for finding in result.findings]
    assert "1 baselined" in lines[-1]
    assert "1 pragma-suppressed" in lines[-1]
    assert f"{len(result.findings)} finding(s)" in lines[-1]
