"""Figure 6 — measurement run-time on the MSP430-class device @ 8 MHz.

The paper sweeps the measured memory size from 0 to 10 KB and plots the
run-time of one measurement for four configurations: {on-demand,
ERASMUS} x {HMAC-SHA256, keyed BLAKE2s}.  Findings to preserve:

* run-time is linear in memory size;
* ERASMUS and on-demand attestation are roughly equivalent (ERASMUS is
  marginally cheaper because it never authenticates a request);
* at 10 KB the slower configuration takes about 7 s (quoted again in
  Section 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hw.devices import MCUModel

#: Anchor points from the paper (seconds at 10 KB, 8 MHz).
PAPER_RUNTIME_AT_10KB_S: Dict[str, float] = {
    "hmac-sha256": 7.0,
    "keyed-blake2s": 5.0,
}

DEFAULT_MEMORY_SIZES_KB: Sequence[float] = (0.5, 1, 2, 4, 6, 8, 10)
DEFAULT_MACS: Sequence[str] = ("hmac-sha256", "keyed-blake2s")


def run(memory_sizes_kb: Sequence[float] = DEFAULT_MEMORY_SIZES_KB,
        mac_names: Sequence[str] = DEFAULT_MACS,
        model: MCUModel | None = None) -> List[Dict[str, object]]:
    """Regenerate the Figure 6 series.

    Returns one row per (memory size, MAC) with both the ERASMUS and the
    on-demand run-time in seconds.
    """
    model = model if model is not None else MCUModel()
    rows: List[Dict[str, object]] = []
    for size_kb in memory_sizes_kb:
        memory_bytes = int(size_kb * 1024)
        for mac_name in mac_names:
            erasmus = model.attestation_runtime(memory_bytes, mac_name,
                                                on_demand=False)
            on_demand = model.attestation_runtime(memory_bytes, mac_name,
                                                  on_demand=True)
            rows.append({
                "memory_kb": size_kb,
                "mac": mac_name,
                "erasmus_s": erasmus,
                "on_demand_s": on_demand,
            })
    return rows


def series(rows: List[Dict[str, object]], mac_name: str,
           variant: str) -> List[tuple[float, float]]:
    """Extract one curve: (memory_kb, runtime_s) points for a configuration."""
    key = "erasmus_s" if variant == "erasmus" else "on_demand_s"
    return [(float(row["memory_kb"]), float(row[key]))
            for row in rows if row["mac"] == mac_name]


def linearity_error(points: Sequence[tuple[float, float]]) -> float:
    """Maximum relative deviation of the points from the best straight line.

    Figure 6 shows straight lines; a small value here confirms the model
    preserves that shape.
    """
    if len(points) < 3:
        return 0.0
    (x0, y0), (x1, y1) = points[0], points[-1]
    slope = (y1 - y0) / (x1 - x0)
    worst = 0.0
    for x, y in points[1:-1]:
        predicted = y0 + slope * (x - x0)
        if y > 0:
            worst = max(worst, abs(predicted - y) / y)
    return worst


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the Figure 6 series as a text table."""
    lines = ["Figure 6: Measurement run-time on MSP430 @ 8 MHz (seconds)"]
    lines.append(f"{'memory (KB)':>12}{'MAC':>16}{'ERASMUS':>12}"
                 f"{'on-demand':>12}")
    for row in rows:
        lines.append(f"{row['memory_kb']:>12}{row['mac']:>16}"
                     f"{row['erasmus_s']:>12.3f}{row['on_demand_s']:>12.3f}")
    return "\n".join(lines)


def main() -> None:
    """Print the reproduced Figure 6 series."""
    print(format_table(run()))


if __name__ == "__main__":
    main()
