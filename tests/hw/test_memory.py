"""Tests for memory regions and hardware access control."""

import pytest

from repro.hw.memory import (
    AccessContext,
    AccessPolicy,
    AccessViolation,
    DeviceMemory,
    MemoryRegion,
    RegionKind,
)


def build_memory() -> DeviceMemory:
    memory = DeviceMemory()
    memory.add_region(MemoryRegion("rom", 0, 64, RegionKind.ROM,
                                   AccessPolicy.rom_code(),
                                   bytearray(b"\xAA" * 64)))
    memory.add_region(MemoryRegion("key", 64, 16, RegionKind.ROM,
                                   AccessPolicy.secret_key(),
                                   bytearray(b"\x11" * 16)))
    memory.add_region(MemoryRegion("ram", 80, 128, RegionKind.RAM))
    return memory


def test_region_lookup_and_sizes():
    memory = build_memory()
    assert memory.region("rom").size == 64
    assert memory.total_size() == 64 + 16 + 128
    assert [region.name for region in memory.regions()] == ["rom", "key", "ram"]


def test_unknown_region_raises():
    with pytest.raises(KeyError):
        build_memory().region("flash")


def test_duplicate_region_name_rejected():
    memory = build_memory()
    with pytest.raises(ValueError, match="duplicate"):
        memory.add_region(MemoryRegion("ram", 500, 8, RegionKind.RAM))


def test_overlapping_regions_rejected():
    memory = build_memory()
    with pytest.raises(ValueError, match="overlaps"):
        memory.add_region(MemoryRegion("overlap", 70, 32, RegionKind.RAM))


def test_zero_sized_region_rejected():
    with pytest.raises(ValueError):
        MemoryRegion("empty", 0, 0, RegionKind.RAM)


def test_initial_data_length_must_match():
    with pytest.raises(ValueError):
        MemoryRegion("bad", 0, 8, RegionKind.RAM, data=bytearray(b"\x00" * 4))


def test_normal_read_write_on_open_region():
    memory = build_memory()
    memory.write(80, b"hello", AccessContext.NORMAL)
    assert memory.read(80, 5, AccessContext.NORMAL) == b"hello"


def test_rom_is_not_writable_by_anyone():
    memory = build_memory()
    for context in AccessContext:
        with pytest.raises(AccessViolation):
            memory.write(0, b"\x00", context)


def test_key_readable_only_from_attestation_context():
    memory = build_memory()
    assert memory.read(64, 16, AccessContext.ATTESTATION) == b"\x11" * 16
    with pytest.raises(AccessViolation):
        memory.read(64, 16, AccessContext.NORMAL)
    with pytest.raises(AccessViolation):
        memory.read(64, 16, AccessContext.DMA)


def test_violations_are_recorded():
    memory = build_memory()
    with pytest.raises(AccessViolation):
        memory.read(64, 16, AccessContext.NORMAL)
    assert ("key", AccessContext.NORMAL, "read") in memory.violations


def test_unmapped_access_raises():
    memory = build_memory()
    with pytest.raises(AccessViolation, match="unmapped"):
        memory.read(10_000, 1)


def test_cross_region_access_raises():
    # A read spanning the rom/key boundary is not contained in either region.
    memory = build_memory()
    with pytest.raises(AccessViolation):
        memory.read(60, 8, AccessContext.ATTESTATION)


def test_read_write_region_by_name():
    memory = build_memory()
    memory.write_region("ram", b"abc", offset=10)
    assert memory.read_region("ram")[10:13] == b"abc"


def test_write_region_bounds_checked():
    memory = build_memory()
    with pytest.raises(ValueError):
        memory.write_region("ram", b"x" * 64, offset=100)


def test_policy_factories():
    open_policy = AccessPolicy.open()
    assert AccessContext.NORMAL in open_policy.readable
    assert AccessContext.NORMAL in open_policy.writable
    secret = AccessPolicy.secret_key()
    assert secret.readable == frozenset({AccessContext.ATTESTATION})
    assert not secret.writable
    rroc = AccessPolicy.read_only_peripheral()
    assert not rroc.writable and AccessContext.DMA in rroc.readable
