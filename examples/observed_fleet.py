#!/usr/bin/env python3
"""Live observability: one ``obs=`` object lights up a 1,000-device fleet.

Fleet health used to exist only *after* a round returned
(``FleetHealth`` / ``RoundStats`` handed back as values).  This example
threads one :class:`repro.obs.Observability` through
``Fleet.provision(obs=...)`` and shows the three faces of the
subsystem on a 1,000-device, 4-shard fleet:

1. **metrics over HTTP** — a Prometheus-style exposition scraped from
   the stdlib endpoint *while the round is still running*, per-shard
   verify-latency histograms included;
2. **streaming SLOs** — a partition window cuts ~30% of the fleet
   during the second round, and the coverage / lost-budget rules fire
   violation events mid-round, before ``collect_all`` returns;
3. **deterministic span traces** — the round → shard → device-verify
   span tree is exported as JSONL, byte-identical across two runs of
   the same seeded scenario;
4. **analysis reports** — the trace + final exposition feed
   :class:`repro.obs.ObsReport`, which writes the self-contained HTML
   flame/timeline view and the byte-stable JSON summary (per-round
   critical paths, shard skew, verify breakdowns).

Run with:  python examples/observed_fleet.py
The span trace lands in ``obs-trace.jsonl``, the report in
``obs-report.html`` / ``obs-summary.json`` (override with
``OBS_TRACE_PATH`` / ``OBS_REPORT_HTML`` / ``OBS_SUMMARY_JSON``).
"""

import json
import os
import urllib.request

from repro.campaign.faults import PartitionInjector
from repro.fleet import DeviceProfile, Fleet
from repro.fleet.sinks import ReportSink
from repro.fleet.transport import InProcessTransport
from repro.obs import CoverageRule, LostBudgetRule, Observability

FLEET_SIZE = 1000
SHARDS = 4
FIRMWARE = b"substation-firmware-v3" + bytes(200)
MASTER_SECRET = b"observed-fleet-master-secret"
TRACE_PATH = os.environ.get("OBS_TRACE_PATH", "obs-trace.jsonl")
REPORT_HTML = os.environ.get("OBS_REPORT_HTML", "obs-report.html")
SUMMARY_JSON = os.environ.get("OBS_SUMMARY_JSON", "obs-summary.json")

# The partition opens after the first (clean) round and cuts ~30% of
# the fleet for the second one.
PARTITION_WINDOW = (650.0, 1e9)
PARTITION_FRACTION = 0.3


class ScrapeMidRound(ReportSink):
    """Scrape the metrics endpoint from inside the round's sink fanout."""

    def __init__(self, url, at_report):
        self.url = url
        self.at_report = at_report
        self.seen = 0
        self.body = None

    def emit(self, report):
        self.seen += 1
        if self.seen == self.at_report:
            with urllib.request.urlopen(self.url, timeout=10) as response:
                self.body = response.read().decode("utf-8")


def run_scenario(serve=False):
    """The seeded two-round scenario; returns (obs, scraper, reports)."""
    violations = []
    obs = Observability(
        seed=17,
        slo_rules=[CoverageRule(0.95, expected_devices=FLEET_SIZE),
                   LostBudgetRule(50)],
        on_violation=[violations.append])
    profile = DeviceProfile.smartplus(firmware=FIRMWARE,
                                      application_size=512,
                                      measurement_interval=60.0,
                                      collection_interval=600.0,
                                      buffer_slots=16)

    def build_transport(engine):
        return PartitionInjector(InProcessTransport(engine),
                                 [PARTITION_WINDOW],
                                 fraction=PARTITION_FRACTION, seed=4)

    fleet = Fleet.provision(profile, FLEET_SIZE,
                            master_secret=MASTER_SECRET, shards=SHARDS,
                            transport=build_transport, obs=obs)
    scraper = None
    try:
        if serve:
            server = obs.serve()
            scraper = ScrapeMidRound(server.metrics_url, at_report=250)
            fleet.verifier.add_sink(scraper)

        # Round 1: clean.  The scrape happens mid-round, at report #250.
        fleet.run_until(600.0)
        fleet.collect_all(batch_size=125)

        # Round 2: partitioned.  SLO violations stream out mid-round.
        fleet.run_until(1200.0)
        reports = fleet.collect_all(batch_size=125)
    finally:
        obs.close()
        fleet.close()
    return obs, scraper, reports, violations


def main() -> None:
    print(f"provisioning {FLEET_SIZE} devices across {SHARDS} shards...")
    obs, scraper, reports, violations = run_scenario(serve=True)

    assert scraper is not None and scraper.body, \
        "the mid-round scrape never happened"
    exposition = scraper.body
    histogram_lines = [line for line in exposition.splitlines()
                       if line.startswith("repro_device_verify_seconds_count")]
    print(f"\nmid-round scrape: {len(exposition)} bytes of exposition, "
          f"per-shard verify histograms:")
    for line in histogram_lines:
        print(f"  {line}")
    assert "# TYPE repro_device_verify_seconds histogram" in exposition

    lost = sum(1 for report in reports if report.status.value == "no_data")
    print(f"\npartitioned round: {lost}/{FLEET_SIZE} devices unreachable")
    print(f"streaming SLO violations (fired before the round returned):")
    for violation in violations:
        print(f"  [{violation.rule}] after {violation.reports_seen} "
              f"reports: {violation.message}")
    assert violations, "the partition never tripped an SLO rule"
    assert all(v.streamed and v.reports_seen < FLEET_SIZE
               for v in violations)

    rows = obs.write_trace(TRACE_PATH)
    print(f"\nspan trace: {rows} spans written to {TRACE_PATH}")

    # Reproducibility: the same seeded scenario yields the same trace,
    # byte for byte (span ids, virtual-clock timestamps, statuses).
    print("re-running the scenario to check trace reproducibility...")
    twin, _scraper, _reports, _violations = run_scenario(serve=False)
    identical = twin.tracer.export_jsonl() == obs.tracer.export_jsonl()
    print(f"span traces byte-identical across runs: {identical}")
    if not identical:
        raise SystemExit("observed fleet trace diverged between runs")

    with open(TRACE_PATH, "r", encoding="utf-8") as stream:
        first = json.loads(stream.readline())
    print(f"first span: {first['path']} ({first['span_id']})")

    # Analysis report: flame/timeline HTML + byte-stable JSON summary.
    report = obs.report(title="observed-fleet")
    report.write(html_path=REPORT_HTML, json_path=SUMMARY_JSON)
    totals = report.summary["totals"]
    print(f"\nreport: {totals['rounds']} rounds, "
          f"{totals['device_verifies']} device verifies analyzed")
    for round_row in report.summary["rounds"]:
        chain = " -> ".join(link["path"]
                            for link in round_row["critical_path"])
        print(f"  round {round_row['round']}: "
              f"{round_row['duration']:.1f}s virtual, shard skew "
              f"{round_row['shard_skew']:.3f}s, critical path {chain}")
    print(f"flame report written to {REPORT_HTML}, summary to "
          f"{SUMMARY_JSON}")
    # The trace-derived summary is as reproducible as the trace itself
    # (the scraped-metrics section is wall-clock and excluded).
    from repro.obs.report import build_summary, summary_json
    ours = summary_json(build_summary(obs.tracer.export_rows(),
                                      title="observed-fleet"))
    theirs = summary_json(build_summary(twin.tracer.export_rows(),
                                        title="observed-fleet"))
    assert ours == theirs, \
        "trace summaries diverged between identical runs"
    print("trace-derived JSON summaries byte-identical across runs: True")


if __name__ == "__main__":
    main()
