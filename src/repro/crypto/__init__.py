"""Cryptographic primitives implemented from scratch.

ERASMUS measurements are MACs over the prover's memory:
``M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>``.  The paper evaluates three
MAC constructions -- HMAC-SHA1, HMAC-SHA256 and keyed BLAKE2s -- on top
of two security architectures.  This package provides pure-Python,
dependency-free implementations of all of them, plus the HMAC-DRBG
CSPRNG used for irregular measurement scheduling (paper Section 3.5).

The implementations are bit-exact against the standard test vectors
(see ``tests/crypto``) and additionally report *work counts* (number of
compression-function invocations) so that the hardware cost models in
:mod:`repro.hw` can convert cryptographic work into device cycles.

Since the pluggable backend registry (:mod:`repro.crypto.backend`),
the from-scratch code is the ``reference`` provider; an ``accelerated``
provider backed by the stdlib computes identical values much faster
and is the default for simulations and sweeps.
"""

from repro.crypto.backend import (
    AcceleratedBackend,
    CryptoBackend,
    ReferenceBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.crypto.blake2s import Blake2s, blake2s_digest, keyed_blake2s
from repro.crypto.constant_time import constant_time_compare
from repro.crypto.csprng import HmacDrbg
from repro.crypto.hmac import Hmac, hmac_digest
from repro.crypto.mac import (
    MacAlgorithm,
    MacDescriptor,
    available_macs,
    get_mac,
    register_mac,
)
from repro.crypto.sha1 import Sha1, sha1_digest
from repro.crypto.sha256 import Sha256, sha256_digest

__all__ = [
    "AcceleratedBackend",
    "Blake2s",
    "CryptoBackend",
    "Hmac",
    "HmacDrbg",
    "MacAlgorithm",
    "MacDescriptor",
    "ReferenceBackend",
    "Sha1",
    "Sha256",
    "available_backends",
    "available_macs",
    "blake2s_digest",
    "constant_time_compare",
    "default_backend_name",
    "get_backend",
    "get_mac",
    "hmac_digest",
    "keyed_blake2s",
    "register_backend",
    "register_mac",
    "resolve_backend",
    "set_default_backend",
    "sha1_digest",
    "sha256_digest",
    "use_backend",
]
