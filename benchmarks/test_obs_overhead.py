"""Benchmark: observability overhead (devices/second per obs mode).

Runs one in-process 1k-device fleet round per observability mode —
``baseline`` (plain provision), ``null`` (an explicit
:data:`repro.obs.NULL_OBSERVABILITY` threaded through the same seams),
``observed`` (a fully enabled :class:`repro.obs.Observability` with
metrics, span tracing, and store wrapping) — and records each mode's
devices/second in ``extra_info``.  CI exports the pytest-benchmark JSON
as ``BENCH_obs.json``, so instrumentation cost is tracked against the
fleet-collection yardstick as the obs subsystem evolves.

Each row is the best of three attempts with a fresh observability
object, so run-to-run jitter does not masquerade as instrumentation
cost.
"""

from repro.experiments import fleet_collection

FLEET_SIZE = 1000
REPEATS = 3


def test_obs_mode_overhead(benchmark):
    rows = benchmark.pedantic(
        fleet_collection.run_obs_comparison,
        args=(FLEET_SIZE,),
        kwargs={"repeats": REPEATS},
        rounds=1, iterations=1)
    by_mode = {row["obs"]: row for row in rows}
    assert set(by_mode) == set(fleet_collection.OBS_MODES)
    for mode, row in by_mode.items():
        assert row["reports"] == FLEET_SIZE
        assert row["healthy"] == FLEET_SIZE
        benchmark.extra_info[f"{mode}_devices_per_second"] = \
            row["devices_per_second"]

    # ``obs=None`` resolves to the null object, so the baseline and
    # null rows time the identical code path: the disabled
    # instrumentation branches (one ``obs.enabled`` test per shard and
    # per report) are structurally free.  The timed ratio therefore
    # only measures run-to-run jitter; it is recorded in extra_info
    # (expected within 5%) and hard-gated at 10% so shared-CI noise
    # cannot fail the workflow while a real hot-path regression —
    # say, instrumentation leaking out of its ``obs.enabled`` guard —
    # still would.
    baseline = by_mode["baseline"]["devices_per_second"]
    null = by_mode["null"]["devices_per_second"]
    benchmark.extra_info["null_vs_baseline"] = null / baseline
    assert null >= 0.90 * baseline, (
        f"null-obs round ran at {null:.0f} dev/s vs baseline "
        f"{baseline:.0f} dev/s — disabled instrumentation is not free")

    # Enabled observability pays real work per device (two clock reads,
    # a histogram observation, a trace row, timed store writes).  On
    # the benchmark's headline devices/second that stays within 5%
    # (expected ~0%: the round is dominated by provisioning and
    # measurement); the hard gate is 10%, mirroring the store bench.
    observed = by_mode["observed"]["devices_per_second"]
    benchmark.extra_info["observed_vs_baseline"] = observed / baseline
    assert observed >= 0.90 * baseline, (
        f"observed round ran at {observed:.0f} dev/s vs baseline "
        f"{baseline:.0f} dev/s")

    # The isolated collect phase concentrates the per-device cost;
    # record the ratio and keep it from ever becoming pathological.
    collect_ratio = (by_mode["observed"]["collect_s"]
                     / by_mode["baseline"]["collect_s"])
    benchmark.extra_info["observed_collect_vs_baseline"] = collect_ratio
    assert collect_ratio < 1.5, (
        f"enabled-obs collect phase is pathological: "
        f"{collect_ratio:.2f}x the baseline collect phase")
