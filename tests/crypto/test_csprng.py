"""Tests for the HMAC-DRBG CSPRNG used by irregular scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.csprng import HmacDrbg


def test_deterministic_for_same_seed():
    first = HmacDrbg(b"seed material")
    second = HmacDrbg(b"seed material")
    assert first.generate(64) == second.generate(64)


def test_different_seeds_differ():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_personalization_changes_output():
    plain = HmacDrbg(b"seed")
    personalized = HmacDrbg(b"seed", personalization=b"device-7")
    assert plain.generate(32) != personalized.generate(32)


def test_successive_outputs_differ():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate(32) != drbg.generate(32)


def test_generate_length():
    drbg = HmacDrbg(b"seed")
    for length in (0, 1, 31, 32, 33, 100):
        assert len(drbg.generate(length)) == length


def test_generate_negative_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"")


def test_reseed_changes_stream():
    baseline = HmacDrbg(b"seed")
    baseline.generate(16)
    continued = baseline.generate(16)

    reseeded = HmacDrbg(b"seed")
    reseeded.generate(16)
    reseeded.reseed(b"fresh entropy")
    assert reseeded.generate(16) != continued


def test_reseed_requires_entropy():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").reseed(b"")


def test_random_uint_bits():
    drbg = HmacDrbg(b"seed")
    value = drbg.random_uint(16)
    assert 0 <= value < 2 ** 16
    with pytest.raises(ValueError):
        drbg.random_uint(12)


def test_uniform_bounds_and_mean():
    drbg = HmacDrbg(b"seed")
    samples = [drbg.uniform(30.0, 90.0) for _ in range(400)]
    assert all(30.0 <= sample < 90.0 for sample in samples)
    mean = sum(samples) / len(samples)
    assert 55.0 < mean < 65.0


def test_uniform_invalid_bounds():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").uniform(10.0, 5.0)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1,
                                                       max_value=200))
def test_reproducible_streams(seed, length):
    assert HmacDrbg(seed).generate(length) == HmacDrbg(seed).generate(length)


def test_uniform_draws_are_53_bit_fractions():
    # Every draw must sit exactly on the 53-bit grid the docstring
    # promises: fraction * 2**53 is an integer below 2**53.
    drbg = HmacDrbg(b"seed")
    for _ in range(100):
        fraction = drbg.uniform(0.0, 1.0)
        scaled = fraction * 2.0 ** 53
        assert scaled == int(scaled)
        assert 0.0 <= fraction < 1.0


def test_uniform_schedule_stream_regression():
    """Pin the exact schedule stream prover and verifier regenerate.

    These constants are the uniform draws of the DRBG as seeded by
    ``IrregularScheduler`` for key 0x42*16 / nonce ``dev-7`` after the
    53-bit-fraction fix.  If they move, deployed verifiers would start
    expecting different measurement times — any change here is a
    protocol break, not a refactor.
    """
    drbg = HmacDrbg(b"\x42" * 16,
                    personalization=b"erasmus-schedule" + b"dev-7")
    expected = [
        50.44615033735346,
        59.034824202635804,
        74.22835803468126,
        76.21275627570297,
        81.91784933555495,
        31.5480485251797,
    ]
    assert [drbg.uniform(30.0, 90.0) for _ in range(6)] == expected


def test_generate_regression():
    drbg = HmacDrbg(b"regression-seed")
    assert drbg.generate(16).hex() == "b7d54a52e0f28290111145f560b5c7da"
    assert drbg.uniform(0.0, 1.0) == 0.4251644663597115


def test_generate_batch_matches_sequential_generates():
    batched = HmacDrbg(b"seed").generate_batch(24, 7)
    sequential_drbg = HmacDrbg(b"seed")
    sequential = [sequential_drbg.generate(24) for _ in range(7)]
    assert batched == sequential


def test_generate_batch_advances_state_like_sequential():
    batched = HmacDrbg(b"seed")
    batched.generate_batch(16, 5)
    sequential = HmacDrbg(b"seed")
    for _ in range(5):
        sequential.generate(16)
    assert batched.generate(16) == sequential.generate(16)
    assert batched.reseed_counter == sequential.reseed_counter


def test_generate_batch_validates_arguments():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate_batch(16, 0) == []
    with pytest.raises(ValueError):
        drbg.generate_batch(-1, 3)
    with pytest.raises(ValueError):
        drbg.generate_batch(16, -1)


def test_uniform_batch_matches_sequential_uniforms():
    batched = HmacDrbg(b"seed").uniform_batch(30.0, 90.0, 50)
    sequential_drbg = HmacDrbg(b"seed")
    sequential = [sequential_drbg.uniform(30.0, 90.0) for _ in range(50)]
    assert batched == sequential
    assert all(30.0 <= value < 90.0 for value in batched)


def test_uniform_batch_invalid_bounds():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").uniform_batch(10.0, 5.0, 3)
