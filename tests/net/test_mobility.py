"""Tests for the random-waypoint mobility model."""

import pytest

from repro.net.mobility import RandomWaypointMobility


NAMES = [f"dev{i}" for i in range(12)]


def test_static_swarm_topology_is_stable():
    mobility = RandomWaypointMobility(NAMES, area_size=50.0, radio_range=30.0,
                                      speed=0.0, seed=1)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(100.0)}
    assert first == later
    assert first  # dense deployment: some links must exist


def test_mobile_swarm_topology_changes():
    mobility = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=25.0,
                                      speed=5.0, seed=2)
    first = {(l.node_a, l.node_b) for l in mobility.links_at(0.0)}
    later = {(l.node_a, l.node_b) for l in mobility.links_at(60.0)}
    assert first != later


def test_positions_stay_in_area():
    mobility = RandomWaypointMobility(NAMES, area_size=40.0, radio_range=10.0,
                                      speed=3.0, seed=3)
    for time in (0.0, 10.0, 50.0, 200.0):
        mobility.links_at(time)
        for name in NAMES:
            x, y = mobility.position_of(name)
            assert 0.0 <= x <= 40.0
            assert 0.0 <= y <= 40.0


def test_links_are_symmetric_unit_disc():
    mobility = RandomWaypointMobility(NAMES, area_size=60.0, radio_range=20.0,
                                      speed=0.0, seed=4)
    links = mobility.links_at(0.0)
    for link in links:
        ax, ay = mobility.position_of(link.node_a)
        bx, by = mobility.position_of(link.node_b)
        assert ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5 <= 20.0 + 1e-9


def test_time_cannot_move_backwards():
    mobility = RandomWaypointMobility(NAMES, speed=1.0, seed=5)
    mobility.links_at(10.0)
    with pytest.raises(ValueError):
        mobility.links_at(5.0)


def test_churn_rate_grows_with_speed():
    slow = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=0.5, seed=6)
    fast = RandomWaypointMobility(NAMES, area_size=100.0, radio_range=30.0,
                                  speed=8.0, seed=6)
    assert fast.churn_rate(horizon=30.0, step=1.0) > \
        slow.churn_rate(horizon=30.0, step=1.0)


def test_zero_speed_churn_is_zero():
    mobility = RandomWaypointMobility(NAMES, speed=0.0, seed=7)
    assert mobility.churn_rate(horizon=10.0, step=1.0) == 0.0


def links_set(mobility, time):
    return {(l.node_a, l.node_b) for l in mobility.links_at(time)}


def test_churn_rate_does_not_perturb_the_model():
    """Diagnosing mobility must not advance the model it measures."""
    probed = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                    speed=4.0, seed=11)
    control = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                     speed=4.0, seed=11)
    rate = probed.churn_rate(horizon=30.0, step=1.0)
    assert rate > 0.0
    # links_at after the probe returns exactly what it would have
    # returned without it, at every subsequent sample.
    for time in (0.0, 5.0, 20.0, 60.0):
        assert links_set(probed, time) == links_set(control, time)
        for name in NAMES:
            assert probed.position_of(name) == control.position_of(name)


def test_churn_rate_is_repeatable():
    mobility = RandomWaypointMobility(NAMES, area_size=80.0, radio_range=25.0,
                                      speed=4.0, seed=12)
    first = mobility.churn_rate(horizon=20.0, step=1.0)
    second = mobility.churn_rate(horizon=20.0, step=1.0)
    assert first == second


def test_fork_is_independent():
    mobility = RandomWaypointMobility(NAMES, speed=3.0, seed=13)
    mobility.links_at(10.0)
    fork = mobility.fork()
    assert links_set(fork, 10.0) == links_set(mobility, 10.0)
    fork.links_at(50.0)  # advancing the fork must not advance the
    mobility.links_at(11.0)  # original past its own clock (would raise)


def test_fork_preserves_subclass_dynamics():
    """fork() must clone the subclass, not flatten it to the base model."""

    class FrozenSwarm(RandomWaypointMobility):
        def _advance(self, elapsed):
            pass  # custom dynamics: nobody ever moves

    mobility = FrozenSwarm(NAMES, area_size=80.0, radio_range=25.0,
                           speed=5.0, seed=17)
    fork = mobility.fork()
    assert type(fork) is FrozenSwarm
    assert links_set(fork, 100.0) == links_set(mobility, 100.0)
    # churn_rate probes through fork(): frozen dynamics mean zero churn,
    # which a base-class clone at speed 5 would not report.
    assert mobility.churn_rate(horizon=10.0, step=1.0) == 0.0


def test_pinned_anchor_joins_the_geometric_graph():
    mobility = RandomWaypointMobility(["roamer"], area_size=50.0,
                                      radio_range=80.0, speed=0.0, seed=14)
    mobility.pin("gateway", 25.0, 25.0)
    assert mobility.pinned_names() == ["gateway"]
    assert "gateway" not in mobility.device_names()
    assert mobility.position_of("gateway") == (25.0, 25.0)
    # Radio range covers the whole area: the link must exist.
    assert {"gateway"} <= {name for link in mobility.links_at(0.0)
                           for name in link.endpoints()}


def test_pin_rejects_duplicates_and_out_of_area_positions():
    mobility = RandomWaypointMobility(NAMES, area_size=50.0, seed=15)
    mobility.pin("gw", 10.0, 10.0)
    with pytest.raises(ValueError):
        mobility.pin("gw", 20.0, 20.0)
    with pytest.raises(ValueError):
        mobility.pin(NAMES[0], 20.0, 20.0)
    with pytest.raises(ValueError):
        mobility.pin("outside", 60.0, 10.0)


def test_grid_candidate_search_matches_all_pairs_scan():
    """The bucketed links_at must equal the brute-force O(n^2) scan."""
    import math

    mobility = RandomWaypointMobility([f"n{i}" for i in range(40)],
                                      area_size=90.0, radio_range=17.0,
                                      speed=2.5, seed=16)
    mobility.pin("anchor", 45.0, 45.0)
    for time in (0.0, 7.0, 31.0):
        links = [(l.node_a, l.node_b) for l in mobility.links_at(time)]
        names = mobility.device_names() + mobility.pinned_names()
        expected = []
        for index, first in enumerate(names):
            for second in names[index + 1:]:
                ax, ay = mobility.position_of(first)
                bx, by = mobility.position_of(second)
                if math.hypot(ax - bx, ay - by) <= 17.0:
                    expected.append((first, second))
        assert links == expected


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RandomWaypointMobility([], speed=1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, area_size=0.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES, speed=-1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(NAMES).churn_rate(horizon=0.0)
