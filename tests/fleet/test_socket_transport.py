"""Tests for SocketTransport: real loopback datagrams, TCP fallback."""

import asyncio

import pytest

from repro.core import CollectRequest, CollectResponse, decode_response
from repro.fleet import Fleet, SocketTransport, as_async_transport
from repro.sim import SimulationEngine
from tests.fleet.helpers import health_bytes
from tests.fleet.helpers import small_profile as _small_profile

FIRMWARE = b"socket-test-firmware"


def small_profile():
    return _small_profile(FIRMWARE)


@pytest.fixture
def transport():
    built = SocketTransport()
    yield built
    built.close()


def provision_into(transport, profile, engine, count):
    devices = []
    for index in range(count):
        device = profile.provision(f"s-{index}", master_secret=b"master")
        device.prover.attach(engine)
        transport.register(device)
        devices.append(device)
    return devices


def collect_request(profile) -> bytes:
    return CollectRequest(
        k=profile.config.measurements_per_collection).encode()


def test_loopback_exchange_round_trips(transport):
    profile = small_profile()
    engine = SimulationEngine()
    provision_into(transport, profile, engine, 5)
    engine.run(until=60.0)
    request = collect_request(profile)
    responses = transport.exchange_many(
        {f"s-{index}": request for index in range(5)})
    assert set(responses) == {f"s-{index}" for index in range(5)}
    for payload in responses.values():
        response = decode_response(payload)
        assert isinstance(response, CollectResponse)
        assert len(response.measurements) == \
            profile.config.measurements_per_collection


def test_oversized_response_takes_tcp_fallback():
    profile = small_profile()
    engine = SimulationEngine()
    # A datagram budget smaller than one measurement record forces
    # every data-bearing response through the TCP fetch path.
    transport = SocketTransport(max_datagram=64)
    try:
        provision_into(transport, profile, engine, 3)
        engine.run(until=60.0)
        request = collect_request(profile)
        responses = transport.exchange_many(
            {f"s-{index}": request for index in range(3)})
        assert transport.tcp_fallbacks == 3
        for payload in responses.values():
            assert len(payload) > 64
            assert len(decode_response(payload).measurements) > 0
    finally:
        transport.close()


def test_exchange_many_async_overlaps_on_callers_loop(transport):
    profile = small_profile()
    engine = SimulationEngine()
    provision_into(transport, profile, engine, 6)
    engine.run(until=60.0)
    request = collect_request(profile)
    # The collection pipeline's seam binds to the native awaitable
    # exchange, so shard coroutines overlap rounds on one socket pair.
    seam = as_async_transport(transport)
    assert seam.inner is transport
    assert seam.concurrent_collections

    async def run():
        shards = [{f"s-{index}": request for index in range(start, start + 2)}
                  for start in (0, 2, 4)]
        results = await asyncio.gather(
            *[transport.exchange_many_async(shard) for shard in shards])
        return results

    results = asyncio.run(run())
    assert sum(len(r) for r in results) == 6
    assert all(payload is not None
               for result in results for payload in result.values())


def test_empty_exchange_resolves_immediately(transport):
    assert transport.exchange_many({}) == {}
    assert asyncio.run(transport.exchange_many_async({})) == {}


def test_unregistered_device_raises(transport):
    with pytest.raises(KeyError):
        transport.exchange_many({"ghost": b"\x01"})


def test_duplicate_registration_rejected(transport):
    profile = small_profile()
    engine = SimulationEngine()
    device, = provision_into(transport, profile, engine, 1)
    with pytest.raises(ValueError):
        transport.register(device)


def test_garbage_request_resolves_none_without_timeout(transport):
    profile = small_profile()
    engine = SimulationEngine()
    provision_into(transport, profile, engine, 1)
    # The prover keeps silence on garbage; the server signals that
    # explicitly so the client resolves None instead of waiting out
    # the round timeout.
    assert transport.exchange("s-0", b"\xffgarbage") is None


def test_close_is_idempotent_and_final(transport):
    transport.close()
    transport.close()
    with pytest.raises(RuntimeError):
        transport.exchange_many({})


def test_validation_rejects_bad_construction():
    with pytest.raises(ValueError):
        SocketTransport(max_datagram=4)
    with pytest.raises(ValueError):
        SocketTransport(round_timeout=0.0)


def test_fleet_round_over_sockets_matches_in_process():
    rows = {}
    for name in ("in-process", "socket"):
        fleet = Fleet.provision(small_profile(), 12, master_secret=b"master",
                                transport=name, shards=2)
        try:
            fleet.run_until(60.0)
            reports = fleet.collect_all()
            assert len(reports) == 12
            assert reports.stats.responses_lost == 0
            rows[name] = health_bytes(fleet.verifier)
        finally:
            fleet.close()
    assert rows["in-process"] == rows["socket"]
