"""Tests for the HYDRA architecture model and the PrAtt process."""

import pytest

from repro.arch.base import ArchitectureError
from repro.hw.memory import AccessContext, AccessViolation
from repro.hydra import build_hydra_architecture
from repro.hydra.architecture import KEY_REGION
from repro.hydra.pratt import KEY_OBJECT
from repro.hydra.sel4 import Capability, CapabilityError, Right


def test_secure_boot_ran_at_construction(hydra_arch):
    assert hydra_arch.secure_boot.booted


def test_pratt_is_initial_highest_priority_process(hydra_arch):
    assert hydra_arch.pratt.is_highest_priority()
    assert hydra_arch.kernel.process("pratt").parent is None


def test_pratt_has_exclusive_key_access(hydra_arch):
    assert hydra_arch.pratt.has_exclusive_key_access()
    assert hydra_arch.pratt.can_read_key()


def test_spawned_applications_run_below_pratt(hydra_arch):
    hydra_arch.spawn_application("sensor-loop")
    hydra_arch.spawn_application("network-daemon", priority=10)
    assert hydra_arch.pratt.is_highest_priority()
    assert hydra_arch.kernel.process("sensor-loop").priority < 255


def test_application_cannot_get_key_capability(hydra_arch):
    hydra_arch.spawn_application("app")
    assert not hydra_arch.kernel.check_access("app", KEY_OBJECT, Right.READ)


def test_spawn_at_pratt_priority_rejected(hydra_arch):
    with pytest.raises(CapabilityError):
        hydra_arch.pratt.spawn_user_process("rogue", priority=255)


def test_key_region_unreadable_from_normal_world(hydra_arch):
    with pytest.raises(AccessViolation):
        hydra_arch.memory.read_region(KEY_REGION, AccessContext.NORMAL)


def test_key_unreadable_outside_pratt_context(hydra_arch):
    with pytest.raises(ArchitectureError):
        hydra_arch._read_key()


def test_measurement_fails_if_key_capability_leaks(key, firmware):
    architecture = build_hydra_architecture(key, application_size=2048)
    architecture.load_application(firmware)
    # Simulate a capability leak: another process obtains READ on K.
    architecture.kernel.register_object("unrelated")
    architecture.kernel._add_process(
        "evil", 10, [Capability(KEY_OBJECT, Right.READ)], parent="pratt")
    with pytest.raises(ArchitectureError, match="exclusive"):
        architecture.perform_measurement()


def test_measurement_fails_if_pratt_not_highest_priority(key, firmware):
    architecture = build_hydra_architecture(key, application_size=2048)
    architecture.load_application(firmware)
    architecture.kernel._add_process("rogue", 255, [], parent=None)
    # schedule() now returns a max-priority process that may not be pratt;
    # force determinism by killing pratt.
    architecture.kernel.kill("pratt")
    with pytest.raises(ArchitectureError):
        architecture.perform_measurement()


def test_software_clock_survives_gpt_wraps(hydra_arch):
    hydra_arch.advance_clock(10.0)
    hydra_arch.advance_clock(200.0)   # several GPT wrap-arounds at 66 MHz
    assert hydra_arch.read_clock() == pytest.approx(200.0, rel=1e-6)


def test_measurement_runtime_uses_imx6_model(hydra_arch):
    hydra_arch.advance_clock(1.0)
    output = hydra_arch.perform_measurement()
    # 4 KB at ~1743 cycles/block on a 1 GHz core: well under a millisecond.
    assert output.duration < 1e-3
    assert output.memory_bytes == 4096


def test_load_application_rejects_oversized_image(hydra_arch):
    with pytest.raises(ValueError):
        hydra_arch.load_application(bytes(10 * 1024 * 1024))


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        build_hydra_architecture(b"", application_size=1024)
