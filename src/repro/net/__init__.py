"""Simulated network substrate.

The paper's collection phase runs over UDP/Ethernet (Table 2) and its
swarm discussion (Section 6) concerns multi-hop networks of devices
whose topology may change quickly.  This package provides:

* :mod:`repro.net.packet` — datagrams with realistic sizes;
* :mod:`repro.net.link` — point-to-point links with latency and loss;
* :mod:`repro.net.node` — protocol endpoints attached to the simulator;
* :mod:`repro.net.network` — a topology of nodes and links built on
  :mod:`networkx` graphs, with delivery through the event engine;
* :mod:`repro.net.mobility` — mobility models that rewire the topology
  over time (the "highly mobile swarm" setting).
"""

from repro.net.link import Link
from repro.net.mobility import (
    MobilityModel,
    PartitionMergeMobility,
    RandomWaypointMobility,
)
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.packet import Packet

__all__ = [
    "Link",
    "MobilityModel",
    "Network",
    "NetworkNode",
    "Packet",
    "PartitionMergeMobility",
    "RandomWaypointMobility",
]
