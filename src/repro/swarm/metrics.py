"""Swarm attestation metrics: QoSA levels and result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class QoSALevel(enum.Enum):
    """Quality of Swarm Attestation levels (from the LISA paper).

    QoSA captures *what* the verifier learns about the swarm; it is
    orthogonal to QoA, which captures *when* each device's state is
    known.  The two can be combined (Section 6).
    """

    BINARY = "binary"        # "is the whole swarm healthy?"
    LIST = "list"            # which devices are healthy
    FULL = "full"            # per-device state plus topology


@dataclass
class SwarmAttestationResult:
    """Outcome of one swarm attestation / collection instance."""

    protocol: str
    devices_total: int
    devices_attested: int
    duration: float
    qosa_level: QoSALevel
    attested_ids: List[str] = field(default_factory=list)
    failed_ids: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of the swarm whose evidence reached the verifier."""
        if self.devices_total == 0:
            return 1.0
        return self.devices_attested / self.devices_total

    @property
    def complete(self) -> bool:
        """True when every device was attested."""
        return self.devices_attested == self.devices_total
