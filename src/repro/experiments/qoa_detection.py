"""Figure 1 / Section 3.1 — QoA and mobile-malware detection.

The paper has no quantitative evaluation of detection (Figure 1 is an
illustration), so this harness provides the quantitative counterpart:
matched mobile-malware campaigns are run against ERASMUS (measure every
``T_M``, collect every ``T_C``) and against classic on-demand RA
(measure only when the verifier asks, i.e. every ``T_C``), sweeping the
malware dwell time.  The expected shape:

* ERASMUS detection rate ≈ min(1, dwell / T_M), rising to 1 once the
  dwell time exceeds ``T_M``;
* on-demand detection rate ≈ min(1, dwell / T_C), which stays near zero
  for any malware that leaves before the next attestation request —
  Figure 1's "infection 1";
* ERASMUS detection latency ≈ T_M/2 + T_C/2 versus the on-demand
  latency of ≈ T_C/2 *for the few infections it catches at all*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.qoa_analysis import compare_erasmus_vs_ondemand
from repro.analysis.sweep import ParameterSweep
from repro.core.qoa import detection_probability

DEFAULT_DWELL_FRACTIONS: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def run(measurement_interval: float = 60.0,
        collection_interval: float = 600.0,
        dwell_fractions: Sequence[float] = DEFAULT_DWELL_FRACTIONS,
        horizon: float = 7 * 24 * 3600.0,
        seed: int = 7,
        max_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """Sweep malware dwell time (as a fraction of ``T_M``).

    Returns one row per dwell value with simulated and analytic detection
    rates for ERASMUS and the on-demand baseline.  Dwell values are
    independent campaigns, so ``max_workers`` can fan the sweep out on a
    thread pool without changing any row.
    """
    def evaluate(fraction: float) -> Dict[str, object]:
        dwell = fraction * measurement_interval
        comparison = compare_erasmus_vs_ondemand(
            measurement_interval, collection_interval, mean_dwell=dwell,
            horizon=horizon, seed=seed)
        return {
            "dwell_over_tm": fraction,
            "mean_dwell_s": dwell,
            "erasmus_detection_rate": comparison.erasmus_detection_rate,
            "ondemand_detection_rate": comparison.on_demand_detection_rate,
            "analytic_erasmus": detection_probability(dwell,
                                                      measurement_interval),
            "analytic_ondemand": detection_probability(dwell,
                                                       collection_interval),
            "erasmus_mean_latency_s": comparison.erasmus_mean_latency,
            "ondemand_mean_latency_s": comparison.on_demand_mean_latency,
        }

    sweep = ParameterSweep({"fraction": list(dwell_fractions)})
    sweep.run(evaluate, max_workers=max_workers)
    return list(sweep.outcomes())


def detection_advantage(rows: List[Dict[str, object]]) -> float:
    """Mean detection-rate gain of ERASMUS over on-demand across the sweep."""
    gains = [float(row["erasmus_detection_rate"]) -
             float(row["ondemand_detection_rate"]) for row in rows]
    return sum(gains) / len(gains) if gains else 0.0


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render the detection sweep as a text table."""
    lines = ["QoA: mobile-malware detection, ERASMUS vs on-demand RA"]
    lines.append(f"{'dwell/T_M':>10}{'ERASMUS':>10}{'on-dem.':>10}"
                 f"{'analytic E':>12}{'analytic OD':>12}"
                 f"{'lat E (s)':>12}{'lat OD (s)':>12}")
    for row in rows:
        erasmus_latency = row["erasmus_mean_latency_s"]
        ondemand_latency = row["ondemand_mean_latency_s"]
        lines.append(
            f"{row['dwell_over_tm']:>10.2f}"
            f"{row['erasmus_detection_rate']:>10.2f}"
            f"{row['ondemand_detection_rate']:>10.2f}"
            f"{row['analytic_erasmus']:>12.2f}"
            f"{row['analytic_ondemand']:>12.2f}"
            f"{(erasmus_latency if erasmus_latency is not None else float('nan')):>12.1f}"
            f"{(ondemand_latency if ondemand_latency is not None else float('nan')):>12.1f}")
    return "\n".join(lines)


def main() -> None:
    """Print the detection sweep."""
    rows = run()
    print(format_table(rows))
    print(f"Mean detection advantage of ERASMUS: "
          f"{detection_advantage(rows):.2f}")


if __name__ == "__main__":
    main()
