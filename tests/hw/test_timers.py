"""Tests for the periodic timer peripheral."""

import pytest

from repro.hw.timers import PeriodicTimer, TimerReadProtected
from repro.sim import SimulationEngine


def test_timer_fires_and_reports_count():
    engine = SimulationEngine()
    fired = []
    timer = PeriodicTimer(engine, lambda expiration: fired.append(expiration))
    timer.arm(5.0)
    engine.run(until=10.0)
    assert len(fired) == 1
    assert fired[0].time == pytest.approx(5.0)
    assert fired[0].count == 1


def test_timer_can_be_rearmed_from_callback():
    engine = SimulationEngine()
    times = []

    def on_fire(expiration):
        times.append(expiration.time)
        if expiration.count < 3:
            timer.arm(2.0)

    timer = PeriodicTimer(engine, on_fire)
    timer.arm(2.0)
    engine.run(until=20.0)
    assert times == [pytest.approx(2.0), pytest.approx(4.0), pytest.approx(6.0)]


def test_cancel_prevents_firing():
    engine = SimulationEngine()
    fired = []
    timer = PeriodicTimer(engine, lambda expiration: fired.append(expiration))
    timer.arm(3.0)
    timer.cancel()
    engine.run(until=10.0)
    assert not fired
    assert not timer.is_armed()


def test_rearm_replaces_pending_deadline():
    engine = SimulationEngine()
    fired = []
    timer = PeriodicTimer(engine, lambda expiration: fired.append(
        expiration.time))
    timer.arm(3.0)
    timer.arm(7.0)
    engine.run(until=10.0)
    assert fired == [pytest.approx(7.0)]


def test_negative_delay_rejected():
    timer = PeriodicTimer(SimulationEngine(), lambda expiration: None)
    with pytest.raises(ValueError):
        timer.arm(-1.0)


def test_secret_deadline_is_read_protected():
    engine = SimulationEngine()
    timer = PeriodicTimer(engine, lambda expiration: None,
                          deadline_secret=True, name="measurement-timer")
    timer.arm(30.0)
    with pytest.raises(TimerReadProtected):
        timer.read_deadline(trusted=False)
    assert timer.read_deadline(trusted=True) == pytest.approx(30.0)


def test_public_deadline_is_readable():
    engine = SimulationEngine()
    timer = PeriodicTimer(engine, lambda expiration: None)
    timer.arm(4.0)
    assert timer.read_deadline() == pytest.approx(4.0)
