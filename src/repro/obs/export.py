"""Push-based remote write: metrics for deployments nobody scrapes.

The pull endpoint (:mod:`repro.obs.server`) assumes a scraper can
reach the process; fleet verifiers behind NAT, in batch jobs, or in CI
have no such luxury.  :class:`RemoteWriteExporter` inverts the flow:
attached to an :class:`~repro.obs.Observability`, it snapshots the
exposition and current SLO violations at every **round edge** and
POSTs them (JSON) to a configurable endpoint from its own worker
thread.

The design center is *the exporter must never hurt the round*:

* the round-edge hook only renders a snapshot and appends it to a
  **bounded** buffer — no I/O, no blocking, and ``RoundStats`` is read,
  never touched;
* the worker thread drains the buffer with per-snapshot retries and
  exponential backoff; when the endpoint is down the buffer fills to
  ``max_buffer`` and then drops the *oldest* snapshots (newest health
  wins), each drop counted;
* the exporter meters itself into the same registry
  (``repro_remote_write_pushes_total{outcome=...}``, retries, drops,
  buffered gauge), so the monitoring pipeline reports on its own
  delivery health.

Tests inject ``post=`` (any callable taking the payload dict) and call
:meth:`RemoteWriteExporter.flush` for deterministic draining; the
default transport is a stdlib ``urllib`` POST with a request timeout.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: Snapshots a silent endpoint can strand in memory before drops start.
DEFAULT_MAX_BUFFER = 64


class RemoteWriteExporter:
    """POST exposition + SLO snapshots to one endpoint, round by round.

    Parameters:

    * ``endpoint`` — URL receiving the JSON payloads;
    * ``registry`` — where the exporter's self-metrics register
      (defaults to a private registry, so standalone use still meters);
    * ``max_buffer`` — bound on queued snapshots; beyond it the oldest
      is dropped and counted;
    * ``max_retries`` / ``backoff`` / ``backoff_cap`` — per-snapshot
      retry schedule (``backoff`` doubles per attempt up to the cap);
    * ``timeout`` — per-request transport timeout (seconds);
    * ``post`` — injectable transport: a callable taking the payload
      dict, raising on failure.  Tests use this; the default POSTs
      JSON with ``urllib``.

    Attach to a live stack with :meth:`attach` (or let
    :meth:`Observability.remote_write <repro.obs.Observability.
    remote_write>` do both steps).
    """

    def __init__(self, endpoint: str,
                 registry: Optional[MetricsRegistry] = None,
                 max_buffer: int = DEFAULT_MAX_BUFFER,
                 max_retries: int = 3,
                 backoff: float = 0.25,
                 backoff_cap: float = 4.0,
                 timeout: float = 2.0,
                 post: Optional[Callable[[Dict[str, object]], None]]
                 = None,
                 _sleep: Callable[[float], None] = time.sleep) -> None:
        if max_buffer < 1:
            raise ValueError("max_buffer must be at least 1")
        self.endpoint = endpoint
        self.max_buffer = max_buffer
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self._post = post if post is not None else self._http_post
        self._sleep = _sleep
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        pushes = registry.counter(
            "repro_remote_write_pushes_total",
            "Remote-write snapshot pushes, by outcome.",
            labels=("outcome",))
        self._push_ok = pushes.labels("ok")
        self._push_error = pushes.labels("error")
        self.pushes_total = pushes
        self.retries_total = registry.counter(
            "repro_remote_write_retries_total",
            "Remote-write push attempts retried after a failure.")
        self.dropped_total = registry.counter(
            "repro_remote_write_dropped_total",
            "Remote-write snapshots dropped because the buffer was full.")
        self.buffered = registry.gauge(
            "repro_remote_write_buffered",
            "Remote-write snapshots currently waiting in the buffer.")
        self._cond = threading.Condition()
        self._buffer: Deque[Dict[str, object]] = deque()
        self._inflight = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="remote-write", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (round edge — must stay cheap and non-blocking)
    # ------------------------------------------------------------------
    def enqueue(self, payload: Dict[str, object]) -> bool:
        """Queue one snapshot; returns False if it (or an older one
        making room for it) was dropped against the buffer bound."""
        with self._cond:
            if self._closed:
                self.dropped_total.inc()
                return False
            dropped = False
            while len(self._buffer) >= self.max_buffer:
                self._buffer.popleft()
                self.dropped_total.inc()
                dropped = True
            self._buffer.append(payload)
            self.buffered.set(len(self._buffer))
            self._cond.notify_all()
            return not dropped

    def attach(self, obs) -> "RemoteWriteExporter":
        """Hook this exporter to an ``Observability``'s round edge.

        Every finished round enqueues ``{"round", "stats", "metrics",
        "slo"}`` — exposition text plus the SLO violation rows so far.
        The listener reads the stats, renders, and appends; it performs
        no I/O on the round's thread.
        """

        def _on_round(stats) -> None:
            sink = obs.health_sink()
            self.enqueue({
                "round": int(obs.rounds_total.value()),
                "stats": {
                    "requests_sent": stats.requests_sent,
                    "responses_lost": stats.responses_lost,
                    "wall_seconds": stats.wall_seconds,
                },
                "metrics": obs.render_metrics(),
                "slo": sink.violation_rows() if sink is not None else [],
            })

        obs.add_round_listener(_on_round)
        return self

    # ------------------------------------------------------------------
    # Consumer side (worker thread)
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._buffer and not self._closed:
                    self._cond.wait()
                if not self._buffer:
                    return  # closed and drained
                payload = self._buffer.popleft()
                self.buffered.set(len(self._buffer))
                self._inflight += 1
            try:
                self._push(payload)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _push(self, payload: Dict[str, object]) -> None:
        delay = self.backoff
        for attempt in range(self.max_retries + 1):
            try:
                self._post(payload)
            except Exception:
                if attempt == self.max_retries:
                    self._push_error.inc()
                    return
                self.retries_total.inc()
                self._sleep(min(delay, self.backoff_cap))
                delay *= 2
            else:
                self._push_ok.inc()
                return

    def _http_post(self, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        request = urllib.request.Request(
            self.endpoint, data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as response:
            if response.status >= 400:
                raise urllib.error.HTTPError(
                    self.endpoint, response.status, "remote write refused",
                    response.headers, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self, timeout: float = 5.0) -> bool:
        """Wait for the buffer (and any in-flight push) to drain.

        Returns True once everything queued has been attempted (sent
        or given up on), False if ``timeout`` expired first.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._buffer or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    @property
    def pending(self) -> int:
        """Snapshots queued or in flight right now."""
        with self._cond:
            return len(self._buffer) + self._inflight

    def close(self, timeout: float = 5.0, drain: bool = True) -> None:
        """Stop the worker (idempotent).

        With ``drain`` (the default) queued snapshots are attempted
        before the worker exits; without it the buffer is discarded
        (each discard counted as a drop).
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            else:
                self._closed = True
                if not drain:
                    while self._buffer:
                        self._buffer.popleft()
                        self.dropped_total.inc()
                    self.buffered.set(0)
                self._cond.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RemoteWriteExporter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
