"""Report sinks: where a fleet collection streams its verification output.

A 1,000-device round produces 1,000 :class:`VerificationReport`s;
rather than returning a list and letting every experiment hand-format
it, the :class:`repro.fleet.FleetVerifier` streams each finished report
to any number of sinks:

* :class:`MemorySink` — keep reports in a list (tests, small fleets);
* :class:`JsonlSink` — append one JSON object per report to a file, the
  shape log-pipeline ingestion expects;
* :class:`FleetHealthSink` — fold reports into a running
  :class:`FleetHealth` aggregate without retaining them.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Set, Union

from repro.core.verification import DeviceStatus, VerificationReport


class ReportSink(abc.ABC):
    """Consumer of per-device verification reports."""

    @abc.abstractmethod
    def emit(self, report: VerificationReport) -> None:
        """Accept one finished report."""

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""

    def __enter__(self) -> "ReportSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class MemorySink(ReportSink):
    """Retain every report in order of arrival."""

    def __init__(self) -> None:
        self.reports: List[VerificationReport] = []

    def emit(self, report: VerificationReport) -> None:
        self.reports.append(report)

    def for_device(self, device_id: str) -> List[VerificationReport]:
        """All retained reports for one device."""
        return [report for report in self.reports
                if report.device_id == device_id]


def report_to_row(report: VerificationReport) -> Dict[str, object]:
    """Flatten a report into the JSON-friendly row the JSONL sink writes."""
    return {
        "device_id": report.device_id,
        "collection_time": report.collection_time,
        "status": report.status.value,
        "measurements": report.measurement_count,
        "freshness": report.freshness,
        "missing_intervals": report.missing_intervals,
        "anomalies": list(report.anomalies),
        "infected_timestamps": report.infected_timestamps,
    }


class JsonlSink(ReportSink):
    """Append one JSON line per report to a file or file-like object."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.lines_written = 0

    def emit(self, report: VerificationReport) -> None:
        json.dump(report_to_row(report), self._stream, sort_keys=True)
        self._stream.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


@dataclass
class FleetHealth:
    """Aggregate health of a fleet across one or more collection rounds."""

    reports_total: int = 0
    measurements_verified: int = 0
    status_counts: Dict[str, int] = field(
        default_factory=lambda: {status.value: 0 for status in DeviceStatus})
    devices_seen: Set[str] = field(default_factory=set)
    flagged_devices: Set[str] = field(default_factory=set)
    missing_intervals_total: int = 0
    _freshness_sum: float = 0.0
    _freshness_count: int = 0

    def record(self, report: VerificationReport) -> None:
        """Fold one report into the aggregate."""
        self.reports_total += 1
        self.measurements_verified += report.measurement_count
        self.status_counts[report.status.value] += 1
        self.devices_seen.add(report.device_id)
        if report.detected_infection():
            self.flagged_devices.add(report.device_id)
        self.missing_intervals_total += report.missing_intervals
        if report.freshness is not None:
            self._freshness_sum += report.freshness
            self._freshness_count += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def devices_total(self) -> int:
        """Number of distinct devices that produced at least one report."""
        return len(self.devices_seen)

    @property
    def healthy_fraction(self) -> float:
        """Fraction of reports that verified fully healthy."""
        if not self.reports_total:
            return 0.0
        return self.status_counts[DeviceStatus.HEALTHY.value] / \
            self.reports_total

    @property
    def mean_freshness(self) -> Optional[float]:
        """Mean freshness over reports that carried measurements."""
        if not self._freshness_count:
            return None
        return self._freshness_sum / self._freshness_count

    def count(self, status: DeviceStatus) -> int:
        """Number of reports with the given status."""
        return self.status_counts[status.value]

    def summary(self) -> str:
        """Multi-line, human-readable fleet-health digest."""
        freshness = "n/a" if self.mean_freshness is None \
            else f"{self.mean_freshness:.1f}s"
        lines = [
            f"fleet health: {self.devices_total} device(s), "
            f"{self.reports_total} report(s), "
            f"{self.measurements_verified} measurement(s) verified",
            "  status: " + ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.status_counts.items())
                if count),
            f"  healthy fraction: {self.healthy_fraction:.1%}, "
            f"mean freshness: {freshness}, "
            f"missing intervals: {self.missing_intervals_total}",
        ]
        if self.flagged_devices:
            flagged = ", ".join(sorted(self.flagged_devices)[:8])
            if len(self.flagged_devices) > 8:
                flagged += ", ..."
            lines.append(f"  flagged devices: {flagged}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"FleetHealth(devices={self.devices_total}, "
                f"reports={self.reports_total}, "
                f"healthy_fraction={self.healthy_fraction:.3f}, "
                f"flagged={len(self.flagged_devices)})")


class FleetHealthSink(ReportSink):
    """Fold reports into a :class:`FleetHealth` without retaining them."""

    def __init__(self, health: Optional[FleetHealth] = None) -> None:
        self.health = health if health is not None else FleetHealth()

    def emit(self, report: VerificationReport) -> None:
        self.health.record(report)
