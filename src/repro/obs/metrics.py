"""A dependency-free metrics registry with Prometheus text exposition.

Three instrument kinds, modelled on the Prometheus client data model
but implemented on nothing beyond the standard library:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at registration time, rendered as the cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series scrapers expect.

Every instrument supports labels: ``registry.counter("x", labels=
("status",))`` returns a parent whose :meth:`Metric.labels` call
resolves (and caches) one child per label-value combination.  Children
are plain Python objects mutated with ``+=`` under the GIL, which is
what makes reads *lock-free*: :meth:`MetricsRegistry.render` (and the
HTTP scrape endpoint built on it) never takes a lock — it snapshots
each child's numbers with atomic reads/copies, so a scrape can never
block or be blocked by the collection hot path.  The price is that a
scrape landing mid-update may see a histogram whose ``_sum`` is one
observation ahead of its buckets; for monitoring that skew is
harmless, and the next scrape heals it.

Text rendering is deterministic: metrics sort by name, children by
label values, so two registries holding the same numbers render
byte-identical expositions (the obs test-suite pins this).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): tuned for the per-device verify
#: path, which sits in the tens-of-microseconds to milliseconds range.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Coarser buckets (seconds) for whole-round / whole-cell durations.
DEFAULT_ROUND_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


class MetricError(ValueError):
    """A metric was registered or used inconsistently."""


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    """Render one sample's ``{name="value",...}`` block (may be empty)."""
    if not names:
        return ""
    pairs = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                     for name, value in zip(names, values))
    return "{" + pairs + "}"


class _CounterChild:
    """One labelled counter series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge instead")
        self.value += amount


class _GaugeChild:
    """One labelled gauge series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One labelled histogram series: fixed buckets, running sum/count.

    ``counts[i]`` is the number of observations that fell into bucket
    ``i`` (non-cumulative; rendering accumulates).  ``observe`` is the
    hot-path call: one bisect plus three in-place adds.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: Tuple[float, ...]) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # last slot: +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1


_CHILD_FACTORIES = {
    "counter": lambda metric: _CounterChild(),
    "gauge": lambda metric: _GaugeChild(),
    "histogram": lambda metric: _HistogramChild(metric.buckets),
}


class Metric:
    """One registered metric family: a parent plus labelled children.

    Unlabelled metrics expose the child API (``inc`` / ``set`` /
    ``observe``) directly on the parent through a default child; the
    hot path for labelled metrics is ``metric.labels(value)`` which
    caches the child, so repeated lookups cost one dict hit.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Tuple[float, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self.buckets = buckets
        # Children mutate under the GIL; the creation lock only guards
        # the insert of a *new* child (reads never take it).
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._default = self.labels()

    def labels(self, *values: object, **kwvalues: object):
        """The child series for one label-value combination (cached)."""
        if kwvalues:
            if values:
                raise MetricError(
                    "pass label values either positionally or by name, "
                    "not both")
            try:
                values = tuple(kwvalues[name] for name in self.label_names)
            except KeyError as exc:
                raise MetricError(
                    f"metric {self.name!r} has labels "
                    f"{list(self.label_names)}, got {sorted(kwvalues)}"
                    ) from exc
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s) ({list(self.label_names)}), got "
                f"{len(key)}")
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, _CHILD_FACTORIES[self.kind](self))
        return child

    # -- unlabelled convenience (delegate to the default child) --------
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    # -- reads ----------------------------------------------------------
    def child_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Children sorted by label values (a lock-free snapshot)."""
        return sorted(self._children.items())

    def value(self, *label_values: object) -> float:
        """Current value of one counter/gauge series (0 if unseen)."""
        key = tuple(str(value) for value in label_values)
        child = self._children.get(key)
        return 0.0 if child is None else child.value

    def render(self) -> List[str]:
        """This family's exposition lines (``# HELP``/``# TYPE`` first)."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, child in self.child_items():
            if self.kind == "histogram":
                lines.extend(self._render_histogram(key, child))
            else:
                lines.append(
                    f"{self.name}{_label_pairs(self.label_names, key)} "
                    f"{_format_value(child.value)}")
        return lines

    def _render_histogram(self, key: Tuple[str, ...],
                          child: _HistogramChild) -> List[str]:
        # Copy the per-bucket counts in one atomic list() so the
        # cumulative series is internally consistent even if an
        # observation lands mid-render.
        counts = list(child.counts)
        lines = []
        cumulative = 0
        names = self.label_names + ("le",)
        for boundary, count in zip(child.boundaries, counts):
            cumulative += count
            labels = _label_pairs(names, key + (_format_value(boundary),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        cumulative += counts[-1]
        labels = _label_pairs(names, key + ("+Inf",))
        lines.append(f"{self.name}_bucket{labels} {cumulative}")
        plain = _label_pairs(self.label_names, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


class MetricsRegistry:
    """All of one deployment's metrics, renderable as a text exposition.

    Registration is idempotent when the signature matches (same kind,
    labels and buckets) so independently-constructed components can
    share instrument definitions; a mismatched re-registration raises
    :class:`MetricError` rather than silently splitting a series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str],
                  buckets: Tuple[float, ...] = ()) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or \
                        existing.label_names != tuple(labels) or \
                        existing.buckets != buckets:
                    raise MetricError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{list(existing.label_names)}")
                return existing
            metric = Metric(name, kind, help=help, label_names=labels,
                            buckets=buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Metric:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Metric:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Metric:
        """Register (or fetch) a histogram family with fixed buckets."""
        boundaries = tuple(sorted(set(float(b) for b in buckets)))
        if not boundaries:
            raise MetricError("a histogram needs at least one bucket "
                              "boundary")
        return self._register(name, "histogram", help, labels,
                              buckets=boundaries)

    def get(self, name: str) -> Optional[Metric]:
        """Look up a registered family by name (``None`` if absent)."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered family names, sorted."""
        return sorted(self._metrics)

    def render(self) -> str:
        """The full Prometheus text exposition (sorted, deterministic)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")
