"""``repro.obs`` — live observability for fleet attestation.

The ROADMAP item "make fleet health a service, not a return value",
delivered as cooperating pieces:

* :mod:`repro.obs.metrics` — a dependency-free metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with labels
  and fixed buckets, plus sliding-window counters and exponential-
  decay gauges for "recent" health, and bucket-derived quantile
  estimation) rendered in the Prometheus text format and served over a
  stdlib HTTP endpoint (:mod:`repro.obs.server`);
* :mod:`repro.obs.tracing` — span traces of every collection round
  (``round`` → ``shard`` → ``device_verify``) with ids *derived* from
  their coordinates, so identically-seeded runs export byte-identical
  JSONL;
* :mod:`repro.obs.slo` — :class:`StreamingHealthSink` evaluates SLO
  rules as reports stream through the ordinary sink fanout, firing
  violation events mid-round instead of post-hoc;
* :mod:`repro.obs.report` — the analysis layer: rebuilds the span tree
  into per-round critical paths, shard skew and verify breakdowns,
  rendered as a self-contained HTML flame/timeline plus a
  byte-stable JSON summary (:class:`ObsReport`);
* :mod:`repro.obs.export` — :class:`RemoteWriteExporter` pushes
  exposition + SLO snapshots to an HTTP endpoint at round edges, for
  deployments nobody can scrape.

One :class:`Observability` object threads through
``Fleet.provision(obs=...)`` and lights up the whole stack —
:meth:`Observability.for_cell` forks per-campaign-cell children whose
metrics aggregate back under a ``cell`` label; the
:data:`NULL_OBSERVABILITY` default keeps every instrumented path at
historical cost (pinned by ``benchmarks/test_obs_overhead.py``).
See ``MONITORING.md`` for the metric catalog and scrape examples.
"""

from repro.obs.export import RemoteWriteExporter
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_ROUND_BUCKETS,
    MetricError,
    MetricsRegistry,
)
from repro.obs.report import (
    MetricFamily,
    ObsReport,
    build_summary,
    histogram_quantiles,
    load_trace,
    parse_exposition,
    render_html,
    render_rollup_html,
    rollup_summaries,
)
from repro.obs.server import MetricsServer
from repro.obs.service import (
    DEFAULT_RECENT_WINDOW,
    DEFAULT_SUMMARY_QUANTILES,
    NULL_OBSERVABILITY,
    NullObservability,
    Observability,
    ObservedStore,
)
from repro.obs.slo import (
    AttestationWindowRule,
    CoverageRule,
    FreshnessRule,
    LostBudgetRule,
    SloRule,
    SloViolation,
    StreamingHealthSink,
)
from repro.obs.tracing import (
    Span,
    SpanTracer,
    derive_child_seed,
    derive_span_id,
)

__all__ = [
    "AttestationWindowRule",
    "CoverageRule",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RECENT_WINDOW",
    "DEFAULT_ROUND_BUCKETS",
    "DEFAULT_SUMMARY_QUANTILES",
    "FreshnessRule",
    "LostBudgetRule",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_OBSERVABILITY",
    "NullObservability",
    "ObsReport",
    "Observability",
    "ObservedStore",
    "RemoteWriteExporter",
    "SloRule",
    "SloViolation",
    "Span",
    "SpanTracer",
    "StreamingHealthSink",
    "build_summary",
    "derive_child_seed",
    "derive_span_id",
    "histogram_quantiles",
    "load_trace",
    "parse_exposition",
    "render_html",
    "render_rollup_html",
    "rollup_summaries",
]
