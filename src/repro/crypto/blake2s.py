"""BLAKE2s implemented from scratch (RFC 7693).

Keyed BLAKE2s is the third MAC option evaluated in the paper (Table 1,
Figures 6 and 8).  It is the slowest-per-ROM-byte but fastest-per-cycle
option on the MSP430-class devices the paper targets.  This module
implements the sequential (non-parallel) BLAKE2s variant with optional
keying, as used for MACs.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

# Initialization vector (identical to the SHA-256 IV, RFC 7693 2.6).
_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

# Message schedule permutations for the 10 rounds (RFC 7693 2.7).
_SIGMA = (
    (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
    (14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3),
    (11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4),
    (7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8),
    (9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13),
    (2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9),
    (12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11),
    (13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10),
    (6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5),
    (10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0),
)


def _rotr(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by ``amount`` bits."""
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


class Blake2s:
    """Streaming BLAKE2s hash object with optional keying.

    Parameters
    ----------
    data:
        Initial message bytes to absorb.
    key:
        Optional key (at most 32 bytes).  When present the hash acts as
        a MAC: the key is padded to a full 64-byte block and processed
        before the message, exactly as RFC 7693 prescribes.
    digest_size:
        Output length in bytes, between 1 and 32 (default 32).
    """

    block_size = 64
    name = "blake2s"

    def __init__(self, data: bytes = b"", key: bytes = b"",
                 digest_size: int = 32) -> None:
        if not 1 <= digest_size <= 32:
            raise ValueError("BLAKE2s digest size must be in [1, 32]")
        if len(key) > 32:
            raise ValueError("BLAKE2s key must be at most 32 bytes")
        self.digest_size = digest_size
        self._key_length = len(key)
        self._state = list(_IV)
        self._state[0] ^= 0x01010000 ^ (self._key_length << 8) ^ digest_size
        self._counter = 0
        self._buffer = b""
        self._finalized_digest: bytes | None = None
        self.compressions = 0
        if key:
            self.update(bytes(key) + b"\x00" * (64 - len(key)))
        if data:
            self.update(data)

    def copy(self) -> "Blake2s":
        """Return an independent copy of the current hash state."""
        clone = Blake2s(digest_size=self.digest_size)
        clone._key_length = self._key_length
        clone._state = list(self._state)
        clone._counter = self._counter
        clone._buffer = self._buffer
        clone._finalized_digest = self._finalized_digest
        clone.compressions = self.compressions
        return clone

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if self._finalized_digest is not None:
            raise ValueError("cannot update a finalized BLAKE2s object")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("BLAKE2s input must be bytes-like")
        self._buffer += bytes(data)
        # Keep at least one byte buffered so the final block (which needs
        # the "last block" flag) is never compressed prematurely.
        while len(self._buffer) > 64:
            block = self._buffer[:64]
            self._buffer = self._buffer[64:]
            self._counter += 64
            self._compress(block, last=False)

    def digest(self) -> bytes:
        """Return the digest of all data absorbed so far."""
        if self._finalized_digest is None:
            clone = self.copy()
            clone._counter += len(clone._buffer)
            block = clone._buffer + b"\x00" * (64 - len(clone._buffer))
            clone._compress(block, last=True)
            packed = struct.pack("<8I", *clone._state)
            self._finalized_digest = packed[: self.digest_size]
            self.compressions = clone.compressions
        return self._finalized_digest

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def _compress(self, block: bytes, last: bool) -> None:
        self.compressions += 1
        m = struct.unpack("<16I", block)
        v = list(self._state) + list(_IV)
        v[12] ^= self._counter & _MASK32
        v[13] ^= (self._counter >> 32) & _MASK32
        if last:
            v[14] ^= _MASK32

        def mix(a: int, b: int, c: int, d: int, x: int, y: int) -> None:
            v[a] = (v[a] + v[b] + x) & _MASK32
            v[d] = _rotr(v[d] ^ v[a], 16)
            v[c] = (v[c] + v[d]) & _MASK32
            v[b] = _rotr(v[b] ^ v[c], 12)
            v[a] = (v[a] + v[b] + y) & _MASK32
            v[d] = _rotr(v[d] ^ v[a], 8)
            v[c] = (v[c] + v[d]) & _MASK32
            v[b] = _rotr(v[b] ^ v[c], 7)

        for round_index in range(10):
            s = _SIGMA[round_index]
            mix(0, 4, 8, 12, m[s[0]], m[s[1]])
            mix(1, 5, 9, 13, m[s[2]], m[s[3]])
            mix(2, 6, 10, 14, m[s[4]], m[s[5]])
            mix(3, 7, 11, 15, m[s[6]], m[s[7]])
            mix(0, 5, 10, 15, m[s[8]], m[s[9]])
            mix(1, 6, 11, 12, m[s[10]], m[s[11]])
            mix(2, 7, 8, 13, m[s[12]], m[s[13]])
            mix(3, 4, 9, 14, m[s[14]], m[s[15]])

        for i in range(8):
            self._state[i] ^= v[i] ^ v[i + 8]


def blake2s_digest(data: bytes, digest_size: int = 32) -> bytes:
    """One-shot unkeyed BLAKE2s of ``data``."""
    return Blake2s(data, digest_size=digest_size).digest()


def keyed_blake2s(key: bytes, data: bytes, digest_size: int = 32) -> bytes:
    """One-shot keyed BLAKE2s MAC of ``data`` under ``key``."""
    return Blake2s(data, key=key, digest_size=digest_size).digest()
