"""FPGA synthesis cost model reproducing the Section 4.1 hardware numbers.

The paper synthesizes its openMSP430 modifications with Xilinx ISE and
reports that ERASMUS needs the *same* amount of hardware as on-demand
attestation: roughly 13 % more registers (655 vs 579) and 14 % more
look-up tables (1969 vs 1731) than the unmodified core.

The model expresses the modification as a list of hardware features,
each with a register and LUT cost, calibrated to those totals:

* memory-backbone access control (atomic ROM execution + exclusive
  access to K): 8 registers, 120 LUTs;
* 64-bit RROC register: 64 registers, 100 LUTs;
* RROC bus interface / control (with the write-enable wire removed):
  4 registers, 18 LUTs.

Both variants need exactly the same features — the only difference
between ERASMUS and on-demand attestation is software — which is the
paper's headline hardware-cost finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

_BASELINE_REGISTERS = 579
_BASELINE_LUTS = 1731

_FEATURE_COSTS: Dict[str, Tuple[int, int]] = {
    "memory_backbone_access_control": (8, 120),
    "rroc_64bit_register": (64, 100),
    "rroc_bus_interface": (4, 18),
}

_VARIANT_FEATURES: Dict[str, Tuple[str, ...]] = {
    "unmodified": (),
    "on-demand": tuple(_FEATURE_COSTS),
    "erasmus": tuple(_FEATURE_COSTS),
}


@dataclass(frozen=True)
class SynthesisReport:
    """Register / LUT totals for one synthesized variant."""

    variant: str
    registers: int
    luts: int
    baseline_registers: int = _BASELINE_REGISTERS
    baseline_luts: int = _BASELINE_LUTS

    @property
    def register_overhead(self) -> float:
        """Fractional register overhead versus the unmodified core."""
        return (self.registers - self.baseline_registers) / \
            self.baseline_registers

    @property
    def lut_overhead(self) -> float:
        """Fractional LUT overhead versus the unmodified core."""
        return (self.luts - self.baseline_luts) / self.baseline_luts


class SynthesisModel:
    """Per-feature register/LUT cost model of the openMSP430 modifications."""

    def variants(self) -> list[str]:
        """Variant names the model can synthesize."""
        return list(_VARIANT_FEATURES)

    def features(self, variant: str) -> Tuple[str, ...]:
        """Hardware features a variant requires."""
        try:
            return _VARIANT_FEATURES[variant.lower()]
        except KeyError as exc:
            raise ValueError(f"unknown variant {variant!r}") from exc

    def feature_cost(self, feature: str) -> Tuple[int, int]:
        """(registers, LUTs) cost of a single feature."""
        try:
            return _FEATURE_COSTS[feature]
        except KeyError as exc:
            raise ValueError(f"unknown feature {feature!r}") from exc

    def synthesize(self, variant: str) -> SynthesisReport:
        """Return the register/LUT totals for a variant."""
        registers = _BASELINE_REGISTERS
        luts = _BASELINE_LUTS
        for feature in self.features(variant):
            feature_registers, feature_luts = self.feature_cost(feature)
            registers += feature_registers
            luts += feature_luts
        return SynthesisReport(variant=variant.lower(), registers=registers,
                               luts=luts)

    def comparison(self) -> Dict[str, SynthesisReport]:
        """Reports for all variants, keyed by variant name."""
        return {variant: self.synthesize(variant)
                for variant in self.variants()}
